"""Schema-versioned serving run records and the diffable run store.

Every serving sweep — a CLI ``serve-sim``, a benchmark section, a
cluster run — can persist its outcome as one JSON record appended to a
JSONL file under ``benchmarks/runs/`` (one file per label, one line
per run).  A record is self-describing::

    {"schema": "obsrun-v1", "run_id": "slo#3", "label": "slo",
     "created_unix": ..., "git_commit": "abc1234",
     "config":   {...how the run was launched...},
     "metrics":  {...flat numeric metrics, diffable...},
     "sections": {"window_stats": {...}, "tenant_stats": {...}}}

``metrics`` keys are flat and dotted (``tenant.interactive.p99_ttft_s``)
so two records diff key-by-key; :func:`diff_records` compares them and
flags regressions beyond a threshold using a direction registry
(throughput-like metrics must not drop, latency-like metrics must not
rise).  ``repro obs list|show|diff`` is the CLI over this module.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time
import warnings
from dataclasses import dataclass, field

from ..errors import ReproError, SimulationError

SCHEMA = "obsrun-v1"

#: Default store root, relative to the working directory.
DEFAULT_ROOT = "benchmarks/runs"

#: Substrings classifying a metric's good direction.  First match wins;
#: metrics matching neither list are reported but never flagged.
HIGHER_IS_BETTER = ("tokens_per_s", "goodput", "throughput", "speedup")
LOWER_IS_BETTER = ("ttft", "lat", "e2e", "wall", "rss", "heap",
                   "preempt", "rejected", "lost", "failed", "killed",
                   "mttr", "downtime", "shed", "recompute")


def metric_direction(key: str) -> int:
    """+1 when larger is better, -1 when smaller is better, 0 neutral."""
    low = key.lower()
    for pat in HIGHER_IS_BETTER:
        if pat in low:
            return 1
    for pat in LOWER_IS_BETTER:
        if pat in low:
            return -1
    return 0


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


@dataclass
class RunRecord:
    """One persisted serving run (see module docstring for the shape)."""

    run_id: str
    label: str
    created_unix: float
    config: dict
    metrics: dict
    sections: dict = field(default_factory=dict)
    git_commit: str | None = None
    schema: str = SCHEMA

    def to_json(self) -> dict:
        return {"schema": self.schema, "run_id": self.run_id,
                "label": self.label, "created_unix": self.created_unix,
                "git_commit": self.git_commit, "config": self.config,
                "metrics": self.metrics, "sections": self.sections}

    @classmethod
    def from_json(cls, data: dict) -> "RunRecord":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ReproError(
                f"unsupported run-record schema {schema!r} "
                f"(this build reads {SCHEMA!r})")
        return cls(run_id=data["run_id"], label=data["label"],
                   created_unix=data.get("created_unix", 0.0),
                   config=data.get("config", {}),
                   metrics=data.get("metrics", {}),
                   sections=data.get("sections", {}),
                   git_commit=data.get("git_commit"), schema=schema)


def report_metrics(report) -> tuple[dict, dict]:
    """``(metrics, sections)`` from any ServeReport-shaped object.

    Works for eager, streamed, and cluster reports — everything is read
    through the common report surface, and metrics a report cannot
    answer (e.g. TTFT percentiles of a run with no retired requests)
    are skipped rather than guessed.
    """
    metrics: dict = {
        "n_requests": report.n_requests,
        "total_new_tokens": report.total_new_tokens,
        "total_time_s": report.total_time_s,
        "n_steps": report.n_steps,
        "preemptions": report.preemptions,
        "max_batch": report.max_batch_observed,
    }

    def _try(key, fn):
        try:
            metrics[key] = fn()
        except SimulationError:
            pass

    _try("aggregate_tokens_per_s", lambda: report.aggregate_tokens_per_s)
    _try("mean_batch", lambda: report.mean_batch)
    _try("mean_ttft_s", lambda: report.mean_ttft_s)
    for p in (50, 99):
        _try(f"p{p}_ttft_s", lambda p=p: report.ttft_percentile_s(p))
        _try(f"p{p}_token_lat_s",
             lambda p=p: report.latency_percentile_s(p))

    sections: dict = {}
    window_stats = getattr(report, "window_stats", None)
    if window_stats:
        sections["window_stats"] = window_stats
    tenant_stats = getattr(report, "tenant_stats", None)
    if tenant_stats:
        sections["tenant_stats"] = tenant_stats
        for name, stats in tenant_stats.items():
            for key, value in stats.items():
                if isinstance(value, (int, float)) and value is not None:
                    metrics[f"tenant.{name}.{key}"] = value
    resilience = getattr(report, "resilience", None)
    if resilience:
        sections["resilience"] = {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in resilience.items()}
        for key, value in resilience.items():
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                metrics[f"resilience.{key}"] = value
    return metrics, sections


class RunStore:
    """Append-only JSONL store of :class:`RunRecord` under one root."""

    def __init__(self, root: "str | pathlib.Path" = DEFAULT_ROOT) -> None:
        self.root = pathlib.Path(root)

    def _label_path(self, label: str) -> pathlib.Path:
        if not label or "/" in label or label.startswith("."):
            raise ReproError(f"bad run label {label!r}")
        return self.root / f"{label}.jsonl"

    def _load_lines(self, path: pathlib.Path) -> list[RunRecord]:
        """Parse one label file, skipping corrupt lines.

        A store file can end mid-line (a killed run) or pick up a
        mangled record (a bad merge); one poisoned line must not take
        ``obs list|show|diff`` down with it.  Bad lines are skipped
        with a warning naming the file and line number.
        """
        records = []
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(RunRecord.from_json(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError,
                    AttributeError, ReproError) as exc:
                warnings.warn(
                    f"{path}:{lineno}: skipping corrupt run record "
                    f"({exc.__class__.__name__}: {exc})",
                    RuntimeWarning, stacklevel=2)
        return records

    def record(self, label: str, config: dict, metrics: dict,
               sections: dict | None = None) -> RunRecord:
        """Build a record with the next sequence id for ``label``
        (does not write; pass to :meth:`save`)."""
        path = self._label_path(label)
        seq = len(self._load_lines(path)) if path.exists() else 0
        return RunRecord(run_id=f"{label}#{seq}", label=label,
                         created_unix=time.time(), config=config,
                         metrics=metrics, sections=sections or {},
                         git_commit=_git_commit())

    def save(self, record: RunRecord) -> pathlib.Path:
        path = self._label_path(record.label)
        self.root.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            fh.write(json.dumps(record.to_json()) + "\n")
        return path

    def record_report(self, label: str, report,
                      config: dict | None = None,
                      extra_metrics: dict | None = None) -> RunRecord:
        """Record-and-save a serving report; returns the saved record."""
        metrics, sections = report_metrics(report)
        if extra_metrics:
            metrics.update(extra_metrics)
        record = self.record(label, config or {}, metrics, sections)
        self.save(record)
        return record

    def list_runs(self) -> list[RunRecord]:
        """Every record in the store, label-sorted then append-ordered."""
        records: list[RunRecord] = []
        if not self.root.is_dir():
            return records
        for path in sorted(self.root.glob("*.jsonl")):
            records.extend(self._load_lines(path))
        return records

    def load(self, selector: str) -> RunRecord:
        """Resolve ``selector`` to one record.

        Accepts a run id (``label#seq``), a bare label (its latest
        run), or a path to a ``.jsonl``/``.json`` file (its last
        record) — the file form is what diffing records produced on
        another commit or machine uses.
        """
        as_path = pathlib.Path(selector)
        if as_path.suffix in (".jsonl", ".json") or as_path.is_file():
            if not as_path.is_file():
                raise ReproError(f"no run file at {selector!r}")
            records = self._load_lines(as_path)
            if not records:
                raise ReproError(f"run file {selector!r} is empty")
            return records[-1]
        label = selector.split("#", 1)[0]
        path = self._label_path(label)
        if not path.is_file():
            raise ReproError(
                f"no runs recorded under label {label!r} "
                f"(looked at {path})")
        records = self._load_lines(path)
        if "#" in selector:
            for record in records:
                if record.run_id == selector:
                    return record
            raise ReproError(f"no run {selector!r} in {path}")
        return records[-1]

    def load_window(self, selector: str, k: int) -> list[RunRecord]:
        """The last ``k`` records under ``selector``'s label (or run
        file), oldest first.  Their :func:`median_record` is a
        noise-robust baseline: one unlucky scheduler wobble in the
        history no longer decides whether today's run "regressed"."""
        if k <= 0:
            raise ReproError(f"baseline window must be >= 1: {k}")
        as_path = pathlib.Path(selector)
        if as_path.suffix in (".jsonl", ".json") or as_path.is_file():
            if not as_path.is_file():
                raise ReproError(f"no run file at {selector!r}")
            records = self._load_lines(as_path)
        else:
            label = selector.split("#", 1)[0]
            path = self._label_path(label)
            if not path.is_file():
                raise ReproError(
                    f"no runs recorded under label {label!r} "
                    f"(looked at {path})")
            records = self._load_lines(path)
        if not records:
            raise ReproError(f"no runs under {selector!r}")
        return records[-k:]


def median_record(records: "list[RunRecord]") -> RunRecord:
    """A synthetic record holding the per-metric median of ``records``.

    Only metrics numeric in *every* record survive (a median over a
    partial window would silently mix telemetry levels).  The even-size
    median averages the middle pair — fine for a baseline, which is a
    comparison anchor, not a reproducible measurement.
    """
    if not records:
        raise ReproError("no records to take a median over")
    if len(records) == 1:
        return records[0]
    keys = set(records[0].metrics)
    for rec in records[1:]:
        keys &= set(rec.metrics)
    metrics: dict = {}
    for key in sorted(keys):
        values = [rec.metrics[key] for rec in records
                  if isinstance(rec.metrics[key], (int, float))
                  and not isinstance(rec.metrics[key], bool)]
        if len(values) != len(records):
            continue
        values.sort()
        mid = len(values) // 2
        metrics[key] = values[mid] if len(values) % 2 \
            else (values[mid - 1] + values[mid]) / 2
    return RunRecord(
        run_id=f"{records[0].label}#median[{len(records)}]",
        label=records[0].label,
        created_unix=max(r.created_unix for r in records),
        config={"median_of": [r.run_id for r in records]},
        metrics=metrics,
        git_commit=records[-1].git_commit)


@dataclass
class MetricDelta:
    """One metric's comparison between two records."""

    key: str
    base: float
    new: float
    rel_change: float | None  # None when the base is 0
    direction: int            # +1 higher-better, -1 lower-better, 0
    regressed: bool
    improved: bool


def diff_records(base: RunRecord, new: RunRecord,
                 threshold: float = 0.05) -> list[MetricDelta]:
    """Compare shared numeric metrics; flag moves beyond ``threshold``.

    A *regression* is a relative change larger than ``threshold`` in a
    metric's bad direction (throughput down, latency up); an
    *improvement* is the mirror image.  Direction-neutral metrics are
    listed with their deltas but never flagged.  Metrics present in
    only one record are ignored — diffing records from different
    telemetry levels or schema extensions must not false-positive.
    """
    deltas: list[MetricDelta] = []
    for key in sorted(set(base.metrics) & set(new.metrics)):
        old_v, new_v = base.metrics[key], new.metrics[key]
        if not isinstance(old_v, (int, float)) \
                or not isinstance(new_v, (int, float)) \
                or isinstance(old_v, bool) or isinstance(new_v, bool):
            continue
        rel = (new_v - old_v) / abs(old_v) if old_v else None
        direction = metric_direction(key)
        regressed = improved = False
        if rel is not None and direction:
            signed = rel * direction
            regressed = signed < -threshold
            improved = signed > threshold
        deltas.append(MetricDelta(key=key, base=float(old_v),
                                  new=float(new_v), rel_change=rel,
                                  direction=direction,
                                  regressed=regressed,
                                  improved=improved))
    if not deltas:
        raise ReproError(
            f"records {base.run_id!r} and {new.run_id!r} share no "
            "numeric metrics")
    return deltas
