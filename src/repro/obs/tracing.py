"""Request-lifecycle flight recorder and Chrome trace export.

A :class:`FlightRecorder` attached to a scheduler (``engine.flight =
FlightRecorder()``) captures the life of every request as typed span
and instant events — queued → prefill → decode, punctuated by
preempt/evict/quota-retire instants and closed by a retirement — plus
one span per fast-forward window (tagged with its break reason) and
per eager step on a dedicated scheduler track.  Recording is opt-in
and zero-cost when off: the scheduler's only obligation is an
``is None`` check per hook site.

The captured stream exports as Chrome trace-event JSON
(:func:`export_chrome_trace`) — the ``{"traceEvents": [...]}`` format
that Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly.  Each replica becomes one *process* (``pid``), the scheduler
track is thread 0, and every request gets its own thread lane
(``tid = request_id + 1``), so a cluster run merges by concatenating
recorders with distinct replica ids.  Timestamps are the simulated
engine clock in microseconds; events are emitted in simulation order
per recorder and globally sorted at export, so exported clocks are
monotone and every ``B`` has its balancing ``E``.
"""

from __future__ import annotations

import json
from typing import Iterable

#: tid of the scheduler (windows + eager steps) track; request lanes
#: start at 1 so request id 0 cannot collide with it.
SCHEDULER_TID = 0


class FlightRecorder:
    """Collects one engine's lifecycle events (see module docstring)."""

    __slots__ = ("replica", "_events", "_open", "_max_ts")

    def __init__(self, replica: int = 0) -> None:
        self.replica = replica
        #: (ts_s, ph, name, tid, args-or-None) in emission order.
        self._events: list[tuple] = []
        #: request id -> (open phase name, opened-at ts) — at most one
        #: open span per request lane, so B/E balance by construction.
        self._open: dict[int, tuple[str, float]] = {}
        self._max_ts = 0.0

    def __len__(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        """Drop everything recorded so far.  The router's crash
        re-dispatch replays every replica per fixed-point round; only
        the converged round's timeline is the run, so each round starts
        from a clean recorder."""
        self._events.clear()
        self._open.clear()
        self._max_ts = 0.0

    def _emit(self, ts_s: float, ph: str, name: str, tid: int,
              args: dict | None = None) -> None:
        if ts_s > self._max_ts:
            self._max_ts = ts_s
        self._events.append((ts_s, ph, name, tid, args))

    # -- scheduler-facing hooks --------------------------------------

    def request_phase(self, request_id: int, phase: str | None,
                      ts_s: float, **args) -> None:
        """Move a request to ``phase`` (``"queued"``/``"prefill"``/
        ``"decode"``), closing whatever phase was open at ``ts_s``;
        ``phase=None`` just closes (retirement)."""
        tid = request_id + 1
        prev = self._open.pop(request_id, None)
        if prev is not None:
            self._emit(ts_s, "E", prev[0], tid)
        if phase is not None:
            self._open[request_id] = (phase, ts_s)
            self._emit(ts_s, "B", phase, tid, args or None)

    def instant(self, name: str, ts_s: float, request_id: int,
                **args) -> None:
        """A point event on a request's lane (preempt, retired, ...)."""
        self._emit(ts_s, "i", name, request_id + 1, args or None)

    def span(self, name: str, t0_s: float, t1_s: float, **args) -> None:
        """A closed span on the scheduler track (window, eager step)."""
        self._emit(t0_s, "B", name, SCHEDULER_TID, args or None)
        self._emit(t1_s, "E", name, SCHEDULER_TID)

    def marker(self, name: str, ts_s: float, **args) -> None:
        """A point event on the scheduler track (crash, recover,
        hang, slowdown — replica-wide conditions, not any one
        request's)."""
        self._emit(ts_s, "i", name, SCHEDULER_TID, args or None)

    # -- export ------------------------------------------------------

    def chrome_events(self) -> list[dict]:
        """This recorder's events as Chrome trace-event dicts, sorted
        by timestamp, with metadata rows naming the process and the
        scheduler track.  Requests still in flight (a truncated or
        aborted run) get a terminal ``aborted`` instant and their open
        span closed at the latest observed clock, so the stream stays
        B/E-balanced and the abort is visible in the trace."""
        pid = self.replica
        out = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"replica {pid}"}},
            {"name": "thread_name", "ph": "M", "pid": pid,
             "tid": SCHEDULER_TID, "args": {"name": "scheduler"}},
        ]
        tail: list[tuple] = []
        for rid, (phase, _t0) in self._open.items():
            tail.append((self._max_ts, "i", "aborted", rid + 1,
                         {"phase": phase}))
            tail.append((self._max_ts, "E", phase, rid + 1, None))
        body = []
        for ts_s, ph, name, tid, args in \
                sorted(self._events + tail, key=lambda e: e[0]):
            event = {"name": name, "ph": ph, "cat": "serve",
                     "ts": ts_s * 1e6, "pid": pid, "tid": tid}
            if ph == "i":
                event["s"] = "t"  # instant scoped to its thread lane
            if args:
                event["args"] = args
            body.append(event)
        return out + body


def merge_chrome_events(
        recorders: "Iterable[FlightRecorder]") -> list[dict]:
    """Cluster merge: interleave per-replica event streams.  Replica
    ids become Chrome process ids, so recorders must carry distinct
    ``replica`` values (the router's engine order is the natural one).
    Metadata rows lead; body events are globally sorted by timestamp —
    the sort is stable, so each (pid, tid) lane keeps its emission
    order and B/E spans stay balanced.
    """
    meta: list[dict] = []
    body: list[dict] = []
    for recorder in recorders:
        for event in recorder.chrome_events():
            (meta if event["ph"] == "M" else body).append(event)
    body.sort(key=lambda e: e["ts"])
    return meta + body


def export_chrome_trace(
        path, recorders: "FlightRecorder | Iterable[FlightRecorder]",
) -> dict:
    """Write a Chrome trace-event JSON file and return the payload.

    ``recorders`` is one :class:`FlightRecorder` or an iterable of them
    (one per cluster replica).  The file loads directly in Perfetto or
    ``chrome://tracing``.
    """
    if isinstance(recorders, FlightRecorder):
        recorders = (recorders,)
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": merge_chrome_events(recorders),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return payload
