"""repro.obs — the observability layer.

Four pieces, spanning stats → telemetry → scheduler → cluster → CLI:

* **columnar step storage** (:mod:`repro.obs.columns`) — the
  :class:`StepEvent`/:class:`StepWindow` stream behind
  ``telemetry="windows"``, stored as typed columns with lazy
  bit-identical materialization;
* **percentile sketches** (:class:`repro.stats.TDigest`) — behind
  ``telemetry="sketch"``, replacing the exact run-length latency
  sample with a mergeable bounded-memory digest;
* **request-lifecycle tracing** (:mod:`repro.obs.tracing`) — attach a
  :class:`FlightRecorder` to a scheduler (``engine.flight = ...``) and
  export Chrome trace-event JSON viewable in Perfetto;
* **the run store** (:mod:`repro.obs.runstore`) — schema-versioned
  JSONL run records under ``benchmarks/runs/`` with regression-aware
  diffing (``repro obs list|show|diff``).
"""

from .columns import ColumnarRecords, StepEvent, StepWindow
from .runstore import (
    DEFAULT_ROOT,
    MetricDelta,
    RunRecord,
    RunStore,
    SCHEMA,
    diff_records,
    median_record,
    metric_direction,
    report_metrics,
)
from .tracing import (
    FlightRecorder,
    export_chrome_trace,
    merge_chrome_events,
)

__all__ = [
    "ColumnarRecords",
    "DEFAULT_ROOT",
    "FlightRecorder",
    "MetricDelta",
    "RunRecord",
    "RunStore",
    "SCHEMA",
    "StepEvent",
    "StepWindow",
    "diff_records",
    "export_chrome_trace",
    "median_record",
    "merge_chrome_events",
    "metric_direction",
    "report_metrics",
]
