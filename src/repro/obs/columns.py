"""Step records and their columnar storage.

:class:`StepEvent` and :class:`StepWindow` are the simulator's step
telemetry vocabulary (historically defined in
:mod:`repro.engine.telemetry`, which still re-exports them).  At
``telemetry="windows"`` a million-request sweep produces millions of
them, and a Python object per record — plus a small numpy array per
window and a tuple per segment — is what used to keep that level from
scaling.  :class:`ColumnarRecords` stores the same stream as growable
``array``-module columns (a handful of bytes per record) and
materializes :class:`StepEvent` / :class:`StepWindow` objects lazily on
iteration, so every existing expansion API — ``expand()``,
``step_batches``, ``latency_stream`` — reads bit-identical values while
recording stays O(columns), not O(objects).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StepEvent:
    """What one scheduler iteration did (for logs and tests)."""

    clock_s: float
    batch: int
    cycles: float
    admitted: int
    preempted: int
    retired: int


@dataclass(frozen=True)
class StepWindow:
    """A run of ``count`` fast-forwarded decode steps as one object.

    A *single-segment* window (``segments is None``) is a static run:
    nothing admitted, retired, or preempted, one batch size throughout.
    A *multi-segment* window chains piecewise-static segments separated
    by predicted retirements: ``segments`` holds one ``(count, batch,
    retired)`` triple per segment (``retired`` members leave at the end
    of that segment's last step), with ``sum(counts) == count`` and
    ``batch`` the first segment's batch.  Either way the only per-step
    facts are the cycle counts — one float64 array over the whole
    window — and the clocks, which :meth:`expand` re-derives through
    the same sequential ``cumsum`` the scheduler used to advance its
    clock, reproducing the eager :class:`StepEvent` stream bit for bit.
    """

    clock0_s: float  # engine clock before the window's first step
    freq_hz: float
    batch: int
    count: int
    cycles: np.ndarray
    segments: tuple[tuple[int, int, int], ...] | None = None

    def latencies(self) -> np.ndarray:
        """Per-step seconds — the identical floats ``full`` telemetry
        records into every member's ``decode_step_s``."""
        return self.cycles / self.freq_hz

    def expand(self) -> list[StepEvent]:
        clocks = np.cumsum(np.concatenate(([self.clock0_s],
                                           self.latencies())))
        clock_list = clocks[1:].tolist()
        cycle_list = self.cycles.tolist()
        if self.segments is None:
            return [StepEvent(clock_s=clock, batch=self.batch, cycles=cyc,
                              admitted=0, preempted=0, retired=0)
                    for clock, cyc in zip(clock_list, cycle_list)]
        events: list[StepEvent] = []
        pos = 0
        for count, batch, retired in self.segments:
            for j in range(count):
                events.append(StepEvent(
                    clock_s=clock_list[pos], batch=batch,
                    cycles=cycle_list[pos], admitted=0, preempted=0,
                    retired=retired if j == count - 1 else 0))
                pos += 1
        return events


class ColumnarRecords:
    """A ``list[StepEvent | StepWindow]`` stored as typed columns.

    Append-only during a run; reads iterate (or index) and materialize
    record objects on the fly, bit-identical to what was appended —
    cycle arrays round-trip through float64 columns unchanged, and a
    window appended with ``segments=None`` comes back with
    ``segments=None``.  Supports ``len``, iteration, and indexing, so
    code written against the list representation keeps working.
    """

    __slots__ = ("freq_hz", "_kinds", "_ev_clock", "_ev_batch",
                 "_ev_cycles", "_ev_admitted", "_ev_preempted",
                 "_ev_retired", "_win_clock0", "_win_batch", "_win_count",
                 "_win_cycle_off", "_cycles", "_win_seg_off", "_win_seg_n",
                 "_seg_counts", "_seg_batches", "_seg_retired")

    def __init__(self, freq_hz: float) -> None:
        self.freq_hz = freq_hz
        self._kinds = array("b")       # 0 = StepEvent, 1 = StepWindow
        # StepEvent columns.
        self._ev_clock = array("d")
        self._ev_batch = array("q")
        self._ev_cycles = array("d")
        self._ev_admitted = array("q")
        self._ev_preempted = array("q")
        self._ev_retired = array("q")
        # StepWindow columns; all windows' per-step cycles are packed
        # into one flat column with per-window offsets, and explicit
        # segment triples likewise (``_win_seg_n == 0`` marks a window
        # appended with ``segments=None``).
        self._win_clock0 = array("d")
        self._win_batch = array("q")
        self._win_count = array("q")
        self._win_cycle_off = array("q")
        self._cycles = array("d")
        self._win_seg_off = array("q")
        self._win_seg_n = array("q")
        self._seg_counts = array("q")
        self._seg_batches = array("q")
        self._seg_retired = array("q")

    # -- appends -----------------------------------------------------

    def append(self, event: StepEvent) -> None:
        self._kinds.append(0)
        self._ev_clock.append(event.clock_s)
        self._ev_batch.append(event.batch)
        self._ev_cycles.append(event.cycles)
        self._ev_admitted.append(event.admitted)
        self._ev_preempted.append(event.preempted)
        self._ev_retired.append(event.retired)

    def append_window(
            self, clock0_s: float, batch: int, cycles: np.ndarray,
            segments: tuple[tuple[int, int, int], ...] | None) -> None:
        self._kinds.append(1)
        self._win_clock0.append(clock0_s)
        self._win_batch.append(batch)
        self._win_count.append(len(cycles))
        self._win_cycle_off.append(len(self._cycles))
        if len(cycles):
            self._cycles.frombytes(np.ascontiguousarray(
                cycles, dtype=np.float64).tobytes())
        self._win_seg_off.append(len(self._seg_counts))
        if segments is None:
            self._win_seg_n.append(0)
        else:
            self._win_seg_n.append(len(segments))
            for seg_count, seg_batch, seg_retired in segments:
                self._seg_counts.append(seg_count)
                self._seg_batches.append(seg_batch)
                self._seg_retired.append(seg_retired)

    # -- reads -------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self._ev_clock)

    @property
    def n_windows(self) -> int:
        return len(self._win_clock0)

    @property
    def n_bytes(self) -> int:
        """Approximate storage footprint (column payloads only)."""
        return sum(len(col) * col.itemsize for col in (
            self._kinds, self._ev_clock, self._ev_batch, self._ev_cycles,
            self._ev_admitted, self._ev_preempted, self._ev_retired,
            self._win_clock0, self._win_batch, self._win_count,
            self._win_cycle_off, self._cycles, self._win_seg_off,
            self._win_seg_n, self._seg_counts, self._seg_batches,
            self._seg_retired))

    def __len__(self) -> int:
        return len(self._kinds)

    def _event_at(self, j: int) -> StepEvent:
        return StepEvent(
            clock_s=self._ev_clock[j], batch=self._ev_batch[j],
            cycles=self._ev_cycles[j], admitted=self._ev_admitted[j],
            preempted=self._ev_preempted[j],
            retired=self._ev_retired[j])

    def _window_at(self, j: int) -> StepWindow:
        count = self._win_count[j]
        off = self._win_cycle_off[j]
        # Copy the slice out so the materialized window owns its array
        # (appends may still grow — and reallocate — the flat column).
        cycles = np.frombuffer(self._cycles, dtype=np.float64,
                               count=count, offset=off * 8).copy() \
            if count else np.empty(0, dtype=np.float64)
        n_segs = self._win_seg_n[j]
        segments = None
        if n_segs:
            seg0 = self._win_seg_off[j]
            segments = tuple(
                (self._seg_counts[k], self._seg_batches[k],
                 self._seg_retired[k])
                for k in range(seg0, seg0 + n_segs))
        return StepWindow(clock0_s=self._win_clock0[j],
                          freq_hz=self.freq_hz,
                          batch=self._win_batch[j], count=count,
                          cycles=cycles, segments=segments)

    def __iter__(self):
        ev = win = 0
        for kind in self._kinds:
            if kind:
                yield self._window_at(win)
                win += 1
            else:
                yield self._event_at(ev)
                ev += 1

    def __getitem__(self, index: int) -> StepEvent | StepWindow:
        n = len(self._kinds)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        kind = self._kinds[index]
        # Rank of this record among its kind = #same-kind records
        # before it.  Columns are append-ordered, so that is a prefix
        # sum over the kind flags.
        before = sum(self._kinds[:index]) if index else 0
        return self._window_at(before) if kind \
            else self._event_at(index - before)
