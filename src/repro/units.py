"""Unit conventions used throughout the library.

The paper mixes decimal and binary units in the way the storage industry
does: *bandwidth* is decimal (19.2 GB/s means 19.2e9 bytes per second,
because 64 bit x 2400 MT/s = 19.2e9 B/s exactly) while *capacity* is binary
(the "4GB" KV260 DRAM is 4096 MiB, and the paper's 3556 MB weight figure is
MiB).  These helpers make every conversion explicit so no module multiplies
by the wrong constant.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

KB_DEC = 1_000
MB_DEC = 1_000_000
GB_DEC = 1_000_000_000

BITS_PER_BYTE = 8


def mib(n_bytes: float) -> float:
    """Convert a byte count to binary mebibytes (the paper's "MB")."""
    return n_bytes / MIB


def gib(n_bytes: float) -> float:
    """Convert a byte count to binary gibibytes (the paper's "GB" capacity)."""
    return n_bytes / GIB


def gb_per_s(bytes_per_s: float) -> float:
    """Convert bytes/second to decimal GB/s (the paper's bandwidth unit)."""
    return bytes_per_s / GB_DEC


def bytes_from_gb_per_s(gbps: float) -> float:
    """Convert a decimal GB/s figure to bytes/second."""
    return gbps * GB_DEC


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes (may be fractional for sub-byte widths)."""
    return n_bits / BITS_PER_BYTE


def mhz(hz: float) -> float:
    """Convert hertz to megahertz."""
    return hz / 1e6


def seconds_from_cycles(cycles: float, freq_hz: float) -> float:
    """Wall-clock seconds for ``cycles`` at clock frequency ``freq_hz``."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return cycles / freq_hz


def tokens_per_second(cycles_per_token: float, freq_hz: float) -> float:
    """Decoding rate implied by a per-token cycle count at ``freq_hz``."""
    if cycles_per_token <= 0:
        raise ValueError(f"cycles per token must be positive, got {cycles_per_token}")
    return freq_hz / cycles_per_token
