"""Rotary position embedding: exact reference and hardware rotator model.

The rotator (Fig. 5C1) caches half of the query/key vector and forms
rotation pairs ``(x[i], x[i + d/2])`` — the "rotate-half" convention of
LLaMA.  The hardware version multiplies each pair by ROM-sourced FP16
sin/cos values; the reference version uses exact float64 trigonometry.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .fp16 import fp16
from .lut import RopeAngleGenerator


def rotate_half_pairs(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a head vector into its (first-half, second-half) rotation pairs."""
    x = np.asarray(x)
    d = x.shape[-1]
    if d % 2:
        raise ConfigError(f"RoPE input length must be even, got {d}")
    return x[..., : d // 2], x[..., d // 2 :]


def reference_rope(x: np.ndarray, position: int,
                   theta: float = 10000.0) -> np.ndarray:
    """Exact float64 RoPE for one head vector (or a batch of them).

    ``x`` has shape ``(..., head_dim)``; the same position applies to all
    leading dimensions.
    """
    x = np.asarray(x, dtype=np.float64)
    lo, hi = rotate_half_pairs(x)
    d = x.shape[-1]
    inv_freq = theta ** (-np.arange(0, d, 2, dtype=np.float64) / d)
    angle = position * inv_freq
    cos, sin = np.cos(angle), np.sin(angle)
    out = np.empty_like(x)
    out[..., : d // 2] = lo * cos - hi * sin
    out[..., d // 2 :] = lo * sin + hi * cos
    return out


class HardwareRope:
    """FP16 rotator fed by the quarter-sine and inverse-frequency ROMs."""

    def __init__(self, head_dim: int, theta: float = 10000.0,
                 rom_depth: int = 4096) -> None:
        from .lut import QuarterSineRom

        self.head_dim = head_dim
        self.angles = RopeAngleGenerator(head_dim, theta,
                                         rom=QuarterSineRom(rom_depth))

    def apply(self, x: np.ndarray, position: int) -> np.ndarray:
        """Rotate one head vector (shape ``(..., head_dim)``) in FP16."""
        x16 = fp16(x)
        if x16.shape[-1] != self.head_dim:
            raise ConfigError(
                f"expected head_dim {self.head_dim}, got {x16.shape[-1]}"
            )
        lo, hi = rotate_half_pairs(x16.astype(np.float32))
        sin, cos = self.angles.sin_cos(position)
        sin = sin.astype(np.float32)
        cos = cos.astype(np.float32)
        out = np.empty_like(x16)
        # Two FP16 multiplies and one FP16 add per output element, with
        # rounding after each stage as in the RTL pipeline.
        lo_cos = fp16(lo * cos).astype(np.float32)
        hi_sin = fp16(hi * sin).astype(np.float32)
        lo_sin = fp16(lo * sin).astype(np.float32)
        hi_cos = fp16(hi * cos).astype(np.float32)
        out[..., : self.head_dim // 2] = fp16(lo_cos - hi_sin)
        out[..., self.head_dim // 2 :] = fp16(lo_sin + hi_cos)
        return out

    def max_error(self, position: int, trials: int = 64,
                  seed: int = 0) -> float:
        """Worst observed |hardware - reference| on random unit-scale inputs."""
        rng = np.random.default_rng(seed)
        worst = 0.0
        for _ in range(trials):
            x = rng.standard_normal(self.head_dim)
            hw = self.apply(x, position).astype(np.float64)
            ref = reference_rope(x, position, self.angles.inv_freq_rom.theta)
            worst = max(worst, float(np.max(np.abs(hw - ref))))
        return worst
