"""Rotary position embedding: exact reference and hardware rotator model.

The rotator (Fig. 5C1) caches half of the query/key vector and forms
rotation pairs ``(x[i], x[i + d/2])`` — the "rotate-half" convention of
LLaMA.  The hardware version multiplies each pair by ROM-sourced FP16
sin/cos values; the reference version uses exact float64 trigonometry.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .fp16 import fp16, fp16_round_f32
from .lut import RopeAngleGenerator


def rotate_half_pairs(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a head vector into its (first-half, second-half) rotation pairs."""
    x = np.asarray(x)
    d = x.shape[-1]
    if d % 2:
        raise ConfigError(f"RoPE input length must be even, got {d}")
    return x[..., : d // 2], x[..., d // 2 :]


def reference_rope(x: np.ndarray, position: int,
                   theta: float = 10000.0) -> np.ndarray:
    """Exact float64 RoPE for one head vector (or a batch of them).

    ``x`` has shape ``(..., head_dim)``; the same position applies to all
    leading dimensions.
    """
    x = np.asarray(x, dtype=np.float64)
    lo, hi = rotate_half_pairs(x)
    d = x.shape[-1]
    inv_freq = theta ** (-np.arange(0, d, 2, dtype=np.float64) / d)
    angle = position * inv_freq
    cos, sin = np.cos(angle), np.sin(angle)
    out = np.empty_like(x)
    out[..., : d // 2] = lo * cos - hi * sin
    out[..., d // 2 :] = lo * sin + hi * cos
    return out


class HardwareRope:
    """FP16 rotator fed by the quarter-sine and inverse-frequency ROMs."""

    def __init__(self, head_dim: int, theta: float = 10000.0,
                 rom_depth: int = 4096) -> None:
        from .lut import QuarterSineRom

        self.head_dim = head_dim
        self.angles = RopeAngleGenerator(head_dim, theta,
                                         rom=QuarterSineRom(rom_depth))
        #: memoized ROM fetches — the generator is a pure function of
        #: the position, and decode touches the same position once per
        #: layer and head group.
        self._sin_cos_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _sin_cos(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        pair = self._sin_cos_cache.get(position)
        if pair is None:
            sin, cos = self.angles.sin_cos(position)
            pair = (sin.astype(np.float32), cos.astype(np.float32))
            self._sin_cos_cache[position] = pair
        return pair

    def apply(self, x: np.ndarray, position: int) -> np.ndarray:
        """Rotate one head vector (shape ``(..., head_dim)``) in FP16."""
        x16 = x if isinstance(x, np.ndarray) and x.dtype == np.float16 \
            else fp16(x)
        if x16.shape[-1] != self.head_dim:
            raise ConfigError(
                f"expected head_dim {self.head_dim}, got {x16.shape[-1]}"
            )
        lo, hi = rotate_half_pairs(x16.astype(np.float32))
        sin, cos = self._sin_cos(position)
        return self._rotate(lo, hi, sin, cos)

    def _rotate(self, lo: np.ndarray, hi: np.ndarray, sin: np.ndarray,
                cos: np.ndarray) -> np.ndarray:
        """Two FP16 multiplies and one FP16 add per output element, with
        rounding after each stage as in the RTL pipeline (the stages run
        in float32 carrying FP16-grid values — same per-op rounding,
        one half cast at the end)."""
        lo_cos = fp16_round_f32(lo * cos)
        hi_sin = fp16_round_f32(hi * sin)
        lo_sin = fp16_round_f32(lo * sin)
        hi_cos = fp16_round_f32(hi * cos)
        out = np.empty(lo.shape[:-1] + (self.head_dim,), dtype=np.float32)
        out[..., : self.head_dim // 2] = fp16_round_f32(lo_cos - hi_sin)
        out[..., self.head_dim // 2 :] = fp16_round_f32(lo_sin + hi_cos)
        return out.astype(np.float16)

    def apply_many(self, x: np.ndarray, positions) -> np.ndarray:
        """Rotate a stack of head groups, one position per leading row.

        ``x`` has shape ``(n, ..., head_dim)`` and ``positions`` one
        entry per leading row; row ``i`` is bit-identical to
        ``apply(x[i], positions[i])`` — the sin/cos ROM values are
        fetched per position and the rotation multiplies vectorize
        elementwise across the stack.
        """
        x16 = x if isinstance(x, np.ndarray) and x.dtype == np.float16 \
            else fp16(x)
        if x16.shape[-1] != self.head_dim:
            raise ConfigError(
                f"expected head_dim {self.head_dim}, got {x16.shape[-1]}"
            )
        positions = list(positions)
        if len(positions) != x16.shape[0]:
            raise ConfigError(
                f"{len(positions)} positions for {x16.shape[0]} rows")
        pairs = [self._sin_cos(p) for p in positions]
        bshape = (len(positions),) + (1,) * (x16.ndim - 2) \
            + (self.head_dim // 2,)
        sin = np.stack([s for s, _ in pairs]).reshape(bshape)
        cos = np.stack([c for _, c in pairs]).reshape(bshape)
        lo, hi = rotate_half_pairs(x16.astype(np.float32))
        return self._rotate(lo, hi, sin, cos)

    def max_error(self, position: int, trials: int = 64,
                  seed: int = 0) -> float:
        """Worst observed |hardware - reference| on random unit-scale inputs."""
        rng = np.random.default_rng(seed)
        worst = 0.0
        for _ in range(trials):
            x = rng.standard_normal(self.head_dim)
            hw = self.apply(x, position).astype(np.float64)
            ref = reference_rope(x, position, self.angles.inv_freq_rom.theta)
            worst = max(worst, float(np.max(np.abs(hw - ref))))
        return worst
