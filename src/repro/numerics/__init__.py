"""Hardware-style numerics: FP16 datapath emulation and SPU algorithms.

Every submodule provides a float64 *reference* implementation and a
*hardware* implementation that follows the exact algorithm of the paper's
SPU submodules (Sec. VI-C): per-operation FP16 rounding, ROM-based RoPE,
two-pass RMSNorm, three-pass numerically stable softmax, and the SiLU
pipeline.

The hardware kernels come in scalar form (the reference oracles) and in
batched form — matmul, all-head attention scores/values, row-stacked
softmax/RMSNorm — that is bit-identical per row because the tile/tree
rounding schedule depends only on the reduction length.
"""

from .fp16 import (
    FP16_MAX,
    FP16GridArray,
    as_fp16_grid,
    fp16,
    fp16_add,
    fp16_batched_scores,
    fp16_batched_weighted_values,
    fp16_dot,
    fp16_dot_tiled,
    fp16_matmul,
    fp16_matmul_t,
    fp16_matvec,
    fp16_mul,
    fp16_round_f32,
    fp16_tiled_reduce,
    fp16_tree_combine,
    fp16_tree_sum,
    is_fp16_exact,
)
from .lut import InvFreqRom, QuarterSineRom, RopeAngleGenerator
from .rmsnorm import (batched_two_pass_rmsnorm, reference_rmsnorm,
                      two_pass_rmsnorm)
from .rope import HardwareRope, reference_rope, rotate_half_pairs
from .silu import hardware_silu, reference_silu
from .softmax import (batched_three_pass_softmax, online_softmax,
                      reference_softmax, three_pass_softmax)

__all__ = [
    "FP16_MAX",
    "FP16GridArray",
    "as_fp16_grid",
    "fp16",
    "fp16_add",
    "fp16_batched_scores",
    "fp16_batched_weighted_values",
    "fp16_dot",
    "fp16_dot_tiled",
    "fp16_matmul",
    "fp16_matmul_t",
    "fp16_matvec",
    "fp16_mul",
    "fp16_round_f32",
    "fp16_tiled_reduce",
    "fp16_tree_combine",
    "fp16_tree_sum",
    "is_fp16_exact",
    "InvFreqRom",
    "QuarterSineRom",
    "RopeAngleGenerator",
    "batched_two_pass_rmsnorm",
    "reference_rmsnorm",
    "two_pass_rmsnorm",
    "HardwareRope",
    "reference_rope",
    "rotate_half_pairs",
    "hardware_silu",
    "reference_silu",
    "batched_three_pass_softmax",
    "online_softmax",
    "reference_softmax",
    "three_pass_softmax",
]
