"""Hardware-style numerics: FP16 datapath emulation and SPU algorithms.

Every submodule provides a float64 *reference* implementation and a
*hardware* implementation that follows the exact algorithm of the paper's
SPU submodules (Sec. VI-C): per-operation FP16 rounding, ROM-based RoPE,
two-pass RMSNorm, three-pass numerically stable softmax, and the SiLU
pipeline.
"""

from .fp16 import (
    FP16_MAX,
    fp16,
    fp16_add,
    fp16_dot,
    fp16_mul,
    fp16_tree_sum,
    is_fp16_exact,
)
from .lut import InvFreqRom, QuarterSineRom, RopeAngleGenerator
from .rmsnorm import reference_rmsnorm, two_pass_rmsnorm
from .rope import HardwareRope, reference_rope, rotate_half_pairs
from .silu import hardware_silu, reference_silu
from .softmax import online_softmax, reference_softmax, three_pass_softmax

__all__ = [
    "FP16_MAX",
    "fp16",
    "fp16_add",
    "fp16_dot",
    "fp16_mul",
    "fp16_tree_sum",
    "is_fp16_exact",
    "InvFreqRom",
    "QuarterSineRom",
    "RopeAngleGenerator",
    "reference_rmsnorm",
    "two_pass_rmsnorm",
    "HardwareRope",
    "reference_rope",
    "rotate_half_pairs",
    "hardware_silu",
    "reference_silu",
    "online_softmax",
    "reference_softmax",
    "three_pass_softmax",
]
