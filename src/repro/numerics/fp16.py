"""FP16 datapath emulation.

The accelerator computes in IEEE half precision (Sec. VI-B: "we adopt FP16
computation on FPGA").  NumPy's ``float16`` arithmetic computes in float32
and rounds the result to float16, which matches a hardware FP16 unit with
round-to-nearest-even on every operation output.  These helpers make the
per-operation rounding explicit so the functional model exhibits the same
rounding behaviour as the RTL datapath: multiply, add, and an adder *tree*
that rounds at every tree level (the paper's DOT engine sums 128 products
through a 7-level tree).

Every reduction in this module runs one schedule — products through the
128-lane multiplier array, tiles through the level-rounded adder tree,
tiles accumulated in an FP16 register (:func:`fp16_tiled_reduce`).  Because
the schedule depends only on the reduction *length*, any number of
independent reductions of the same length can ride one vectorized numpy
call without changing a single rounding: that batch invariance is what
lets :func:`fp16_matmul` and the batched attention kernels replace the
scalar loops bit for bit.
"""

from __future__ import annotations

import numpy as np

FP16_MAX = float(np.finfo(np.float16).max)


def fp16(x) -> np.ndarray:
    """Round ``x`` to float16 (the output register of any FP16 unit)."""
    return np.asarray(x, dtype=np.float32).astype(np.float16)


def is_fp16_exact(x) -> bool:
    """True if every element of ``x`` is exactly representable in FP16."""
    arr = np.asarray(x, dtype=np.float32)
    return bool(np.all(arr == arr.astype(np.float16).astype(np.float32)))


def fp16_mul(a, b) -> np.ndarray:
    """Elementwise FP16 multiply with per-op rounding."""
    a16 = fp16(a).astype(np.float32)
    b16 = fp16(b).astype(np.float32)
    return fp16(a16 * b16)


def fp16_add(a, b) -> np.ndarray:
    """Elementwise FP16 add with per-op rounding."""
    a16 = fp16(a).astype(np.float32)
    b16 = fp16(b).astype(np.float32)
    return fp16(a16 + b16)


#: Dekker split constant: 2^13 + 1 — splitting at 13 bits leaves an
#: 11-bit significand, FP16's precision.
_SPLIT = np.float32(8193.0)
_TWO24 = np.float32(16777216.0)        # 2^24
#: 1.5 * 2^23 — adding it parks any |v| < 2^22 in [2^23, 2^24), where
#: the float32 ulp is exactly 1, so the add rounds v to an integer with
#: ties-to-even (plain 2^23 would fail: just below it the ulp is 0.5).
_SNAP = np.float32(12582912.0)
_INV_TWO24 = np.float32(5.9604644775390625e-08)   # 2^-24, exact
_FP16_TINY_NORMAL = np.float32(6.103515625e-05)   # 2^-14
_FP16_INF_THRESHOLD = np.float32(65520.0)  # halfway above FP16_MAX -> inf


def fp16_round_f32(x: np.ndarray) -> np.ndarray:
    """Round float32 values onto the FP16 grid, staying in float32.

    Bit-identical to ``x.astype(float16).astype(float32)`` for every
    finite and infinite input (pinned over all half bit patterns by the
    kernel property tests; NaNs are not defined data in this model),
    but built from a handful of SIMD-friendly float32 ops instead of
    NumPy's scalar half casts — the hot-loop rounding primitive of the
    tiled kernels.

    * normals — a Dekker split at 13 bits: ``c - (c - x)`` with
      ``c = (2^13 + 1) * x`` rounds to an 11-bit significand with the
      FPU's own round-to-nearest-even;
    * FP16 subnormals (|x| < 2^-14) — snap to multiples of 2^-24 via
      the classic add-2^23 integer-rounding trick (sign restored so
      negative underflow keeps its -0.0);
    * overflow (|x| >= 65520, including inf) — +/-inf, as the FP16 cast
      produces.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.size <= 1024:
        # Small arrays are ufunc-dispatch-bound: the two half casts (one
        # dispatch each) beat the multi-op float path, and are the very
        # definition of the rounding being computed.
        with np.errstate(over="ignore"):
            return x.astype(np.float16).astype(np.float32)
    shape = x.shape
    if x.ndim == 0:
        x = x.reshape(1)
    with np.errstate(over="ignore", invalid="ignore"):
        # inf inputs (FP16 overflow upstream) make the split compute
        # inf - inf before the overflow branch repairs them — silence
        # the transient, the fixup below restores the correct +/-inf.
        c = x * _SPLIT
        hi = c - (c - x)
    ax = np.abs(x)
    # NaN-ignoring range probes: a NaN (from upstream FP16 overflow
    # arithmetic, e.g. inf - inf) must not mask genuine subnormal or
    # overflow elements elsewhere in the array.
    if np.fmin.reduce(ax, axis=None) < _FP16_TINY_NORMAL:
        # Fix up only the affected elements (typically a few percent).
        mask = ax < _FP16_TINY_NORMAL
        xt = x[mask]
        snapped = (xt * _TWO24 + _SNAP) - _SNAP
        hi[mask] = np.copysign(snapped * _INV_TWO24, xt)
    if np.fmax.reduce(ax, axis=None) >= _FP16_INF_THRESHOLD:
        mask = ax >= _FP16_INF_THRESHOLD
        hi[mask] = np.copysign(np.float32(np.inf), x[mask])
    return hi.reshape(shape)


class FP16GridArray(np.ndarray):
    """A float32 ndarray *certified* to hold FP16-grid values.

    Pure marker subclass: :func:`_as_rounded_f32` trusts it and skips
    the (idempotent) re-rounding pass, so pre-rounded tensors that are
    reused across many kernel calls — dequantized weight matrices, KV
    gathers — are not re-rounded on every call.  Only create one via
    :func:`as_fp16_grid` on data that is already on the grid.  Indexing
    and transposing preserve both the marker and the property; any
    ufunc arithmetic *demotes* the result to a plain ndarray (enforced
    below — derived values leave the grid, so they must not inherit the
    certificate), and ``np.concatenate`` also returns a plain ndarray
    (re-certify explicitly when concatenating certified inputs).
    """

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        # Strip the certificate from every ufunc result: computed
        # values are no longer guaranteed to sit on the FP16 grid.
        inputs = tuple(np.asarray(i).view(np.ndarray)
                       if isinstance(i, FP16GridArray) else i
                       for i in inputs)
        out = kwargs.get("out")
        if out is not None:
            kwargs["out"] = tuple(np.asarray(o).view(np.ndarray)
                                  if isinstance(o, FP16GridArray) else o
                                  for o in out)
        return getattr(ufunc, method)(*inputs, **kwargs)


def as_fp16_grid(x) -> np.ndarray:
    """Certify ``x`` (already FP16-grid-valued) as :class:`FP16GridArray`.

    The caller asserts every value of ``x`` is exactly representable in
    FP16 — e.g. it came from ``fp16(...)`` or ``fp16_round_f32(...)``.
    """
    return np.ascontiguousarray(np.asarray(x, dtype=np.float32)) \
        .view(FP16GridArray)


def _as_rounded_f32(x) -> np.ndarray:
    """``x`` as float32 carrying FP16-grid values.

    Float16 input upcasts (exact); anything else rounds onto the grid
    with :func:`fp16_round_f32` — the same values ``fp16(x)`` would
    produce, kept in float32 so the tiled kernels never touch NumPy's
    scalar half casts on their inputs.
    """
    if isinstance(x, FP16GridArray):
        return x
    x = np.asarray(x)
    if x.dtype == np.float16:
        return x.astype(np.float32)
    return fp16_round_f32(np.asarray(x, dtype=np.float32))


def _tree_reduce_last(level: np.ndarray) -> np.ndarray:
    """Balanced binary adder tree over the last axis, rounding each level.

    ``level`` is float16 of shape ``(..., width)``; odd-width levels
    forward the unpaired element unchanged.  Returns shape ``(...)``.
    Every leading axis sees the identical pair/forward schedule, so a
    stack of reductions is bit-identical to reducing each row alone.

    Layout: the reduction axis is moved to the front once, so every
    pair-sum touches two contiguous slabs of rows (the stride-2 pair
    picking happens across whole slabs, not per element), and the
    levels stay in float32 carrying FP16-grid values, rounded by
    :func:`fp16_round_f32` — the values and rounding schedule are
    unchanged, only the memory traversal and dtype plumbing are.
    """
    return _tree_reduce_f32(np.asarray(level, dtype=np.float32)) \
        .astype(np.float16)


def _tree_reduce_f32(level: np.ndarray) -> np.ndarray:
    """:func:`_tree_reduce_last` on float32 carrying FP16-grid values,
    returning the same representation (see :func:`fp16_round_f32`)."""
    lead = level.shape[:-1]
    rows = np.ascontiguousarray(
        np.moveaxis(level, -1, 0).reshape(level.shape[-1], -1))
    return _tree_reduce_axis0(rows).reshape(lead)


def _tree_reduce_axis0(rows: np.ndarray) -> np.ndarray:
    """The level-rounded adder tree along axis 0 of a float32 array
    whose trailing axes are contiguous slabs — pair ``i`` of each level
    sums rows ``2i`` and ``2i+1``, exactly the schedule of
    :func:`_tree_reduce_f32` (which is this function after moving the
    reduction axis first)."""
    width = rows.shape[0]
    while width > 1:
        pairs = width // 2
        summed = fp16_round_f32(rows[: 2 * pairs : 2]
                                + rows[1 : 2 * pairs : 2])
        if width % 2:
            summed = np.concatenate([summed, rows[-1:]], axis=0)
        rows = summed
        width = rows.shape[0]
    return rows[0]


def fp16_tree_sum(values) -> np.float16:
    """Sum a vector through a balanced binary adder tree.

    Each tree level rounds to FP16, exactly as a pipelined FP16 adder tree
    does.  Odd-width levels forward the unpaired element unchanged.
    """
    level = fp16(np.asarray(values).reshape(-1))
    if level.size == 0:
        return np.float16(0.0)
    return np.float16(_tree_reduce_last(level))


def fp16_dot(a, b) -> np.float16:
    """128-lane-style dot product: FP16 multipliers feeding an adder tree."""
    products = fp16_mul(a, b)
    return fp16_tree_sum(products)


def fp16_tiled_reduce(a, b, lanes: int = 128) -> np.ndarray:
    """The shared tiled multiplier-array + adder-tree dot kernel.

    ``a`` and ``b`` are broadcast-compatible arrays sharing their last
    axis (the reduction axis).  Each group of ``lanes`` elements goes
    through the FP16 multiplier array, sums through the level-rounded
    adder tree, and the tile partials accumulate in an FP16 register —
    one rounding schedule for every scalar/vector/matrix entry point in
    this module.  Returns the broadcast shape of the leading axes.
    """
    a32 = _as_rounded_f32(a)
    b32 = _as_rounded_f32(b)
    if a32.shape[-1] != b32.shape[-1]:
        raise ValueError(
            f"reduction axis mismatch: {a32.shape} vs {b32.shape}")
    n = a32.shape[-1]
    out_shape = np.broadcast_shapes(a32.shape[:-1], b32.shape[:-1])
    acc = np.zeros(out_shape, dtype=np.float32)
    for start in range(0, n, lanes):
        # Multiplier array, adder tree, and FP16 tile accumulator, all
        # in float32 carrying FP16-grid values (fp16_round_f32 after
        # every op — the identical per-op rounding, minus the half
        # casts); one cast back to float16 at the very end.
        products = fp16_round_f32(a32[..., start : start + lanes]
                                  * b32[..., start : start + lanes])
        partial = _tree_reduce_f32(products)
        acc = fp16_round_f32(acc + partial)
    # plain ndarray out: a derived result must not inherit the
    # FP16GridArray certificate from a marked input
    return np.asarray(acc).astype(np.float16)


def fp16_matvec(w, x, lanes: int = 128) -> np.ndarray:
    """FP16 matrix-vector product the way the VPU computes it.

    ``w`` is (out_features, in_features); each output element is produced
    by streaming the row through the 128-lane multiplier array, summing
    each tile through the FP16 adder tree, and accumulating tiles in an
    FP16 register.  Vectorized across output rows (every row sees the same
    schedule, so batching them does not change the rounding).
    """
    w = np.asarray(w)
    x = np.asarray(x).reshape(-1)
    if w.ndim != 2 or w.shape[1] != x.size:
        raise ValueError(f"matvec shape mismatch: {w.shape} @ {x.shape}")
    return fp16_tiled_reduce(w, x, lanes=lanes)


def fp16_matmul(w, x, lanes: int = 128) -> np.ndarray:
    """FP16 matrix-matrix product: a batch of matvecs in one call.

    ``w`` is (out_features, in_features) and ``x`` is (in_features,
    batch); column ``j`` of the (out_features, batch) result is exactly
    ``fp16_matvec(w, x[:, j])`` — the batch dimension adds independent
    reductions of the same length, which the tile/tree schedule rounds
    identically, so stacking them changes no token anywhere.
    """
    w = np.asarray(w)
    x = np.asarray(x)
    if w.ndim != 2 or x.ndim != 2 or w.shape[1] != x.shape[0]:
        raise ValueError(f"matmul shape mismatch: {w.shape} @ {x.shape}")
    return fp16_tiled_reduce(w[:, None, :], x.T[None, :, :], lanes=lanes)


def fp16_matmul_t(w_t, x, lanes: int = 128) -> np.ndarray:
    """:func:`fp16_matmul` with the weight pre-transposed to
    (in_features, out_features).

    Identical output — ``fp16_matmul_t(w.T, x) == fp16_matmul(w, x)``
    bit for bit (the products and the tree pair the same ``in`` indices
    in the same order) — but the transposed layout feeds the adder tree
    contiguous slabs directly, skipping the per-call axis move the
    general kernel needs.  Callers that reuse one weight matrix across
    many steps cache ``w.T`` contiguously (see
    ``QuantizedModel``) and save the copy every call.
    """
    w32 = _as_rounded_f32(w_t)
    x32 = _as_rounded_f32(x)
    if w32.ndim != 2 or x32.ndim != 2 or w32.shape[0] != x32.shape[0]:
        raise ValueError(
            f"matmul_t shape mismatch: {w32.shape} vs {x32.shape}")
    n = w32.shape[0]
    # (tile, batch, out) product layout: the broadcast keeps the long
    # `out` axis innermost (contiguous SIMD runs) and the tree reduces
    # axis 0 over contiguous slabs; the result transposes back to
    # (out, batch) as a view.  Same products, same pairing order.
    acc = np.zeros((x32.shape[1], w32.shape[1]), dtype=np.float32)
    for start in range(0, n, lanes):
        products = fp16_round_f32(
            x32[start : start + lanes, :, None]
            * w32[start : start + lanes, None, :])
        partial = _tree_reduce_axis0(products)
        acc = fp16_round_f32(acc + partial)
    return np.asarray(acc).astype(np.float16).T


def fp16_batched_scores(keys, q, lanes: int = 128) -> np.ndarray:
    """Attention scores of every head in one call.

    ``keys`` is (heads, length, head_dim) and ``q`` is (heads,
    head_dim); row ``h`` of the (heads, length) result is exactly
    ``fp16_matvec(keys[h], q[h])`` — the per-head DOT of the rotated
    query against each cached key (Fig. 5B), batched over heads.
    """
    keys = np.asarray(keys)
    q = np.asarray(q)
    if keys.ndim != 3 or q.ndim != 2 \
            or keys.shape[0] != q.shape[0] \
            or keys.shape[2] != q.shape[1]:
        raise ValueError(
            f"score shape mismatch: {keys.shape} vs {q.shape}")
    return fp16_tiled_reduce(keys, q[:, None, :], lanes=lanes)


def fp16_batched_weighted_values(values, probs, lanes: int = 128,
                                 ) -> np.ndarray:
    """Probability-weighted value reduction of every head in one call.

    ``values`` is (heads, length, head_dim) and ``probs`` is (heads,
    length); row ``h`` of the (heads, head_dim) result is exactly
    ``fp16_matvec(values[h].T, probs[h])`` — the scaled-dot output
    accumulation, batched over heads.
    """
    values = np.asarray(values)
    probs = np.asarray(probs)
    if values.ndim != 3 or probs.ndim != 2 \
            or values.shape[0] != probs.shape[0] \
            or values.shape[1] != probs.shape[1]:
        raise ValueError(
            f"weighted-value shape mismatch: {values.shape} vs "
            f"{probs.shape}")
    return fp16_tiled_reduce(values.transpose(0, 2, 1),
                             probs[:, None, :], lanes=lanes)


def fp16_tree_combine(vectors) -> np.ndarray:
    """Elementwise pairwise-tree sum of a list of FP16 vectors.

    Models a hardware all-reduce over 2^k devices whose combining
    elements are FP16 adders: partial sums merge pairwise, rounding to
    FP16 at every tree level — the same shape as :func:`fp16_tree_sum`,
    lifted to whole vectors.  When each input is the tile/tree partial
    of a contiguous power-of-two slice of one dot product, this
    reproduces the single-device adder tree bit for bit (the property
    the tensor-parallel functional backend relies on).
    """
    level = [fp16(v) for v in vectors]
    if not level:
        raise ValueError("tree combine needs at least one vector")
    while len(level) > 1:
        merged = [fp16(level[i].astype(np.float32)
                       + level[i + 1].astype(np.float32))
                  for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


def fp16_dot_tiled(a, b, lanes: int = 128) -> np.float16:
    """Dot product of arbitrary length, accumulated ``lanes`` at a time.

    Models the VPU's accumulator: each group of ``lanes`` elements goes
    through the multiplier array + adder tree, and partial sums accumulate
    in an FP16 register.  A thin scalar wrapper over
    :func:`fp16_tiled_reduce` — one rounding schedule, one implementation.
    """
    a = fp16(np.asarray(a).reshape(-1))
    b = fp16(np.asarray(b).reshape(-1))
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return np.float16(fp16_tiled_reduce(a, b, lanes=lanes))
