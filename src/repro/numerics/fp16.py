"""FP16 datapath emulation.

The accelerator computes in IEEE half precision (Sec. VI-B: "we adopt FP16
computation on FPGA").  NumPy's ``float16`` arithmetic computes in float32
and rounds the result to float16, which matches a hardware FP16 unit with
round-to-nearest-even on every operation output.  These helpers make the
per-operation rounding explicit so the functional model exhibits the same
rounding behaviour as the RTL datapath: multiply, add, and an adder *tree*
that rounds at every tree level (the paper's DOT engine sums 128 products
through a 7-level tree).
"""

from __future__ import annotations

import numpy as np

FP16_MAX = float(np.finfo(np.float16).max)


def fp16(x) -> np.ndarray:
    """Round ``x`` to float16 (the output register of any FP16 unit)."""
    return np.asarray(x, dtype=np.float32).astype(np.float16)


def is_fp16_exact(x) -> bool:
    """True if every element of ``x`` is exactly representable in FP16."""
    arr = np.asarray(x, dtype=np.float32)
    return bool(np.all(arr == arr.astype(np.float16).astype(np.float32)))


def fp16_mul(a, b) -> np.ndarray:
    """Elementwise FP16 multiply with per-op rounding."""
    a16 = fp16(a).astype(np.float32)
    b16 = fp16(b).astype(np.float32)
    return fp16(a16 * b16)


def fp16_add(a, b) -> np.ndarray:
    """Elementwise FP16 add with per-op rounding."""
    a16 = fp16(a).astype(np.float32)
    b16 = fp16(b).astype(np.float32)
    return fp16(a16 + b16)


def fp16_tree_sum(values) -> np.float16:
    """Sum a vector through a balanced binary adder tree.

    Each tree level rounds to FP16, exactly as a pipelined FP16 adder tree
    does.  Odd-width levels forward the unpaired element unchanged.
    """
    level = fp16(np.asarray(values).reshape(-1))
    if level.size == 0:
        return np.float16(0.0)
    while level.size > 1:
        pairs = level.size // 2
        left = level[: 2 * pairs : 2].astype(np.float32)
        right = level[1 : 2 * pairs : 2].astype(np.float32)
        summed = fp16(left + right)
        if level.size % 2:
            summed = np.concatenate([summed, level[-1:]])
        level = summed
    return np.float16(level[0])


def fp16_dot(a, b) -> np.float16:
    """128-lane-style dot product: FP16 multipliers feeding an adder tree."""
    products = fp16_mul(a, b)
    return fp16_tree_sum(products)


def fp16_matvec(w, x, lanes: int = 128) -> np.ndarray:
    """FP16 matrix-vector product the way the VPU computes it.

    ``w`` is (out_features, in_features); each output element is produced
    by streaming the row through the 128-lane multiplier array, summing
    each tile through the FP16 adder tree, and accumulating tiles in an
    FP16 register.  Vectorized across output rows (every row sees the same
    schedule, so batching them does not change the rounding).
    """
    w16 = fp16(w)
    x16 = fp16(np.asarray(x).reshape(-1))
    if w16.ndim != 2 or w16.shape[1] != x16.size:
        raise ValueError(f"matvec shape mismatch: {w16.shape} @ {x16.shape}")
    out_f, in_f = w16.shape
    acc = np.zeros(out_f, dtype=np.float32)
    for start in range(0, in_f, lanes):
        tile_w = w16[:, start : start + lanes].astype(np.float32)
        tile_x = x16[start : start + lanes].astype(np.float32)
        level = fp16(tile_w * tile_x)
        while level.shape[1] > 1:
            pairs = level.shape[1] // 2
            left = level[:, : 2 * pairs : 2].astype(np.float32)
            right = level[:, 1 : 2 * pairs : 2].astype(np.float32)
            summed = fp16(left + right)
            if level.shape[1] % 2:
                summed = np.concatenate([summed, level[:, -1:]], axis=1)
            level = summed
        acc = fp16(acc + level[:, 0].astype(np.float32)).astype(np.float32)
    return fp16(acc)


def fp16_tree_combine(vectors) -> np.ndarray:
    """Elementwise pairwise-tree sum of a list of FP16 vectors.

    Models a hardware all-reduce over 2^k devices whose combining
    elements are FP16 adders: partial sums merge pairwise, rounding to
    FP16 at every tree level — the same shape as :func:`fp16_tree_sum`,
    lifted to whole vectors.  When each input is the tile/tree partial
    of a contiguous power-of-two slice of one dot product, this
    reproduces the single-device adder tree bit for bit (the property
    the tensor-parallel functional backend relies on).
    """
    level = [fp16(v) for v in vectors]
    if not level:
        raise ValueError("tree combine needs at least one vector")
    while len(level) > 1:
        merged = [fp16(level[i].astype(np.float32)
                       + level[i + 1].astype(np.float32))
                  for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


def fp16_dot_tiled(a, b, lanes: int = 128) -> np.float16:
    """Dot product of arbitrary length, accumulated ``lanes`` at a time.

    Models the VPU's accumulator: each group of ``lanes`` elements goes
    through the multiplier array + adder tree, and partial sums accumulate
    in an FP16 register.
    """
    a = fp16(np.asarray(a).reshape(-1))
    b = fp16(np.asarray(b).reshape(-1))
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    acc = np.float16(0.0)
    for start in range(0, a.size, lanes):
        partial = fp16_dot(a[start : start + lanes], b[start : start + lanes])
        acc = np.float16(np.float32(acc) + np.float32(partial))
    return acc
