"""Look-up-table generators for the RoPE submodule (paper Sec. VI-C, Fig. 5C1).

The RoPE hardware uses two ROMs:

* a *sin/cos generator* holding 4096 points of one quarter cycle of a sine
  wave, folded to produce full-cycle sine and cosine values, and
* an *address generator* holding inverted frequency values
  ``theta ** (-i / d)`` used to turn (token position, channel pair) into a
  phase, hence a ROM address.

Both are modelled bit-faithfully enough for error analysis: the quarter
table stores FP16 samples, phases are quantized to the table's angular
resolution, and inverse frequencies are stored as FP16 like the RTL.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .fp16 import fp16


class QuarterSineRom:
    """ROM holding one quarter cycle of sine, folded into sin/cos lookups.

    ``depth`` samples cover phases [0, pi/2).  A full cycle is addressed by
    ``4 * depth`` phase steps; quadrant folding turns a full-cycle address
    into a quarter-table read plus a sign flip, exactly as the RTL does.
    """

    def __init__(self, depth: int = 4096) -> None:
        if depth <= 0 or depth & (depth - 1):
            raise ConfigError(f"ROM depth must be a power of two, got {depth}")
        self.depth = depth
        self.full_cycle = 4 * depth
        phases = np.arange(depth, dtype=np.float64) * (np.pi / 2) / depth
        self._table = fp16(np.sin(phases))

    def _fold(self, address: np.ndarray) -> np.ndarray:
        """Quarter-wave folding: full-cycle address -> signed table sample."""
        address = np.asarray(address) % self.full_cycle
        quadrant = address // self.depth
        offset = address % self.depth
        # Quadrants 1 and 3 read the table backwards (mirror), 2 and 3 negate.
        mirrored = np.where(quadrant % 2 == 1, self.depth - 1 - offset, offset)
        sample = self._table[mirrored].astype(np.float32)
        sign = np.where(quadrant >= 2, -1.0, 1.0).astype(np.float32)
        return fp16(sign * sample)

    def sin(self, address) -> np.ndarray:
        """Sine at ``address`` full-cycle phase steps."""
        return self._fold(np.asarray(address, dtype=np.int64))

    def cos(self, address) -> np.ndarray:
        """Cosine via the identity cos(x) = sin(x + pi/2)."""
        return self._fold(np.asarray(address, dtype=np.int64) + self.depth)

    def phase_to_address(self, phase) -> np.ndarray:
        """Quantize a radian phase to the nearest full-cycle ROM address."""
        steps = np.round(np.asarray(phase, dtype=np.float64)
                         / (2 * np.pi) * self.full_cycle)
        return steps.astype(np.int64) % self.full_cycle


class InvFreqRom:
    """ROM of RoPE inverse frequencies ``theta ** (-i / d)`` for even ``i``.

    The paper stores ``10000.0 ** (-i/4096), i = 0, 2, 4, ..., 4094`` — a
    generic table for head dimensions up to 4096.  We generate the slice
    the model's head dimension actually uses.  Entries are float32: the
    phase is ``position * inv_freq``, so at position 1023 an FP16 entry
    would already contribute ~0.25 rad of phase error; the RTL stores
    these as wide fixed-point words for the same reason.
    """

    def __init__(self, head_dim: int, theta: float = 10000.0) -> None:
        if head_dim <= 0 or head_dim % 2:
            raise ConfigError(f"head_dim must be positive and even, got {head_dim}")
        self.head_dim = head_dim
        self.theta = theta
        exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
        self._table = (theta ** (-exponents)).astype(np.float32)

    @property
    def num_pairs(self) -> int:
        return self.head_dim // 2

    def inv_freq(self, pair_index) -> np.ndarray:
        """Inverse frequency of rotation pair ``pair_index`` (0-based)."""
        idx = np.asarray(pair_index, dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self.num_pairs):
            raise ConfigError(
                f"pair index out of range [0, {self.num_pairs}): {pair_index}"
            )
        return self._table[idx]


class RopeAngleGenerator:
    """Address generator: (position, pair) -> sin/cos ROM addresses.

    Combines the inverse-frequency ROM with the quarter-sine ROM's phase
    quantization.  ``angles`` returns the quantized addresses used by the
    rotator, so RoPE error in the functional model comes from the same two
    sources as in hardware: FP16 inverse frequencies and finite ROM depth.
    """

    def __init__(self, head_dim: int, theta: float = 10000.0,
                 rom: QuarterSineRom | None = None) -> None:
        self.inv_freq_rom = InvFreqRom(head_dim, theta)
        self.rom = rom if rom is not None else QuarterSineRom()

    def addresses(self, position: int) -> np.ndarray:
        """ROM addresses for every rotation pair at token ``position``."""
        if position < 0:
            raise ConfigError(f"position must be non-negative, got {position}")
        pairs = np.arange(self.inv_freq_rom.num_pairs)
        inv_freq = self.inv_freq_rom.inv_freq(pairs).astype(np.float64)
        phase = position * inv_freq
        return self.rom.phase_to_address(phase)

    def sin_cos(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        """FP16 (sin, cos) vectors for all rotation pairs at ``position``."""
        addr = self.addresses(position)
        return self.rom.sin(addr), self.rom.cos(addr)
