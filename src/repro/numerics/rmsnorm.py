"""RMSNorm: reference and the paper's two-pass hardware variant.

The SPU RMSNorm submodule (Fig. 5C2) makes two passes over the hidden
state: pass 1 computes the mean of squares (which the paper notes can be
bypassed when the DOT engine already produced the square-sum during the
preceding residual add), and pass 2 multiplies each element by the
reciprocal square root and the per-channel norm weight.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .fp16 import fp16


def reference_rmsnorm(x: np.ndarray, weight: np.ndarray | None = None,
                      eps: float = 1e-5) -> np.ndarray:
    """Float64 RMSNorm: ``x / sqrt(mean(x^2) + eps) * weight``."""
    x = np.asarray(x, dtype=np.float64)
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    out = x / rms
    if weight is not None:
        out = out * np.asarray(weight, dtype=np.float64)
    return out


def two_pass_rmsnorm(x: np.ndarray, weight: np.ndarray | None = None,
                     eps: float = 1e-5,
                     square_sum: float | None = None) -> np.ndarray:
    """FP16 two-pass RMSNorm over a 1-D hidden-state vector.

    ``square_sum`` lets the caller inject the square-sum computed for free
    by the DOT engine during the residual add (Sec. V-A / VI-C2); when it
    is None the first pass computes it locally with an FP32 accumulator
    (the RTL keeps a wide accumulator for the square sum to avoid FP16
    overflow on 4096-element vectors).
    """
    x = np.asarray(x).reshape(-1)
    sums = None if square_sum is None else np.asarray([square_sum])
    return batched_two_pass_rmsnorm(x, weight, eps, square_sums=sums)


def batched_two_pass_rmsnorm(x: np.ndarray,
                             weight: np.ndarray | None = None,
                             eps: float = 1e-5,
                             square_sums: np.ndarray | None = None,
                             ) -> np.ndarray:
    """FP16 two-pass RMSNorm over the last axis of a hidden-state stack.

    Each row normalizes exactly as :func:`two_pass_rmsnorm` does — the
    square-sum pass runs per row over the same contiguous buffer, so a
    stack of rows is bit-identical to normalizing each row alone.
    ``square_sums`` (one per leading row) mirrors ``square_sum``.
    """
    x16 = fp16(np.asarray(x))
    n = x16.shape[-1]
    if n == 0:
        raise SimulationError("RMSNorm of an empty vector")
    x32 = x16.astype(np.float32)

    rows = np.ascontiguousarray(x32).reshape(-1, n)
    if square_sums is None:
        # One reduction per contiguous row: numpy's pairwise summation
        # over the same contiguous length gives the identical float for
        # a row whether it sits alone or inside a stack (pinned by the
        # kernel property tests).
        square_sums = np.sum(rows.astype(np.float64) ** 2, axis=1)
    else:
        square_sums = np.asarray(square_sums, dtype=np.float64).reshape(-1)
        if square_sums.size != rows.shape[0]:
            raise SimulationError(
                f"{square_sums.size} square sums for {rows.shape[0]} rows")

    mean_sq = (square_sums / n).astype(np.float32)
    inv_rms = fp16(1.0 / np.sqrt(mean_sq + np.float32(eps))).astype(np.float32)
    inv_rms = inv_rms.reshape(x32.shape[:-1] + (1,))

    out = fp16(x32 * inv_rms)
    if weight is not None:
        w32 = fp16(weight).astype(np.float32)
        if w32.size != n:
            raise SimulationError(
                f"RMSNorm weight length {w32.size} != input length {n}"
            )
        out = fp16(out.astype(np.float32) * w32.reshape(-1))
    return out
