"""Softmax: reference, the paper's three-pass stable variant, and the
online (single-pass) variant the three-pass design is derived from.

The SPU softmax submodule (Fig. 5C4) makes three sequential passes over the
attention-score vector:

1. find the maximum ``m``,
2. accumulate the normalizer ``d = sum(exp(x_i - m))``,
3. emit ``s_i = exp(x_i - m) / d``.

The hardware version rounds to FP16 after the exponential, the accumulation,
and the final divide, which is where its (tiny) deviation from the float64
reference comes from.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .fp16 import fp16, fp16_round_f32


def reference_softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable float64 softmax."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise SimulationError("softmax of an empty vector")
    shifted = x - np.max(x, axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=-1, keepdims=True)


def three_pass_softmax(x: np.ndarray) -> np.ndarray:
    """The paper's three-pass FP16 softmax over a 1-D score vector."""
    return batched_three_pass_softmax(np.asarray(x).reshape(-1))


def batched_three_pass_softmax(x: np.ndarray) -> np.ndarray:
    """Three-pass FP16 softmax over the last axis of a score stack.

    Each row runs the identical pass structure as
    :func:`three_pass_softmax` — running max, sequentially FP16-rounded
    normalizer accumulation, one rounded divide — with the leading axes
    vectorized.  Every row's accumulation visits its elements in the
    same order as the scalar loop, so a batch of rows is bit-identical
    to running each row alone (the SPU has one softmax unit per head
    lane; batching heads changes which lane computes, not what).
    """
    x = np.asarray(x)
    x16 = x if x.dtype == np.float16 else fp16(x)
    if x16.size == 0 or x16.shape[-1] == 0:
        raise SimulationError("softmax of an empty vector")
    x32 = x16.astype(np.float32)

    # Pass 1: running maximum (comparators are exact, no rounding).
    m = np.max(x32, axis=-1, keepdims=True)

    # Pass 2: normalizer accumulation; exp unit and accumulator round to
    # FP16.  The exp of every element is independent (one vectorized
    # call); the accumulator order over the score axis must stay serial
    # (each add rounds), so only the rows are vectorized there.
    exps = fp16_round_f32(np.exp(x32 - m))
    d = np.zeros(x32.shape[:-1], dtype=np.float32)
    for i in range(x32.shape[-1]):
        d = fp16_round_f32(d + exps[..., i])
    if np.any(d <= 0):
        raise SimulationError("softmax normalizer underflowed to zero in FP16")

    # Pass 3: divide (one FP16 divider, rounding the quotient).
    return fp16(exps / d[..., None])


def online_softmax(x: np.ndarray) -> np.ndarray:
    """Milakov–Gimelshein online softmax (single pass max+normalizer).

    Included because the paper cites it as the origin of the stable
    formulation; useful as an ablation of pass count in the SPU model.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    if x.size == 0:
        raise SimulationError("softmax of an empty vector")
    m = -np.inf
    d = 0.0
    for v in x:
        m_new = max(m, v)
        d = d * np.exp(m - m_new) + np.exp(v - m_new)
        m = m_new
    return np.exp(x - m) / d
