"""Piecewise-LUT exponential unit — the 'e' boxes of Fig. 5C.

The SPU's softmax and SiLU submodules need exp().  A full FP16 exp in
logic is expensive, so hardware typically splits the input as
``x = n*ln2 + r`` and computes ``2**n * exp(r)`` with ``exp(r)`` from a
table over ``r in [0, ln2)``: a shift (exact) plus one ROM read plus one
multiply.  This module models that unit so its error contribution can be
bounded and compared against the plain "exp then round" emulation used
elsewhere.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .fp16 import fp16

LN2 = float(np.log(2.0))


class ExpLut:
    """Range-reduced exponential with a table over one octave."""

    def __init__(self, depth: int = 1024) -> None:
        if depth <= 0 or depth & (depth - 1):
            raise ConfigError(f"LUT depth must be a power of two, got {depth}")
        self.depth = depth
        # Table of exp(r) for r in [0, ln2), FP16 entries like the ROM.
        r = np.arange(depth, dtype=np.float64) * LN2 / depth
        self._table = fp16(np.exp(r))

    def exp(self, x) -> np.ndarray:
        """exp(x) for FP16-ranged inputs, via shift + LUT + multiply."""
        x64 = fp16(x).astype(np.float64)
        n = np.floor(x64 / LN2)
        r = x64 - n * LN2
        index = np.clip((r / LN2 * self.depth).astype(np.int64), 0,
                        self.depth - 1)
        mantissa = self._table[index].astype(np.float64)
        # 2**n is exact in floating point; the final multiply rounds FP16.
        # Underflow to zero, overflow saturates — as the RTL clamps.
        with np.errstate(over="ignore"):
            out = fp16(mantissa * np.exp2(n))
        return np.where(np.isfinite(out), out, np.float16(65504.0))

    def max_relative_error(self, lo: float = -10.0, hi: float = 10.0,
                           samples: int = 4096) -> float:
        """Worst |exp_lut - exp| / exp over a range (for sizing the ROM)."""
        xs = np.linspace(lo, hi, samples)
        approx = self.exp(xs).astype(np.float64)
        exact = np.exp(fp16(xs).astype(np.float64))
        mask = exact > 0
        return float(np.max(np.abs(approx[mask] - exact[mask])
                            / exact[mask]))


def lut_softmax(x, lut: ExpLut | None = None) -> np.ndarray:
    """Three-pass softmax with the LUT exponential (full SPU fidelity)."""
    from ..errors import SimulationError

    if lut is None:
        lut = ExpLut()
    x16 = fp16(np.asarray(x).reshape(-1))
    if x16.size == 0:
        raise SimulationError("softmax of an empty vector")
    x32 = x16.astype(np.float32)
    m = np.float32(x32.max())
    exps = lut.exp(x32 - m).astype(np.float32)
    d = np.float32(0.0)
    for e in exps:
        d = np.float32(fp16(d + e))
    if d <= 0:
        raise SimulationError("softmax normalizer underflowed in FP16")
    return fp16(exps / d)
