"""SiLU activation: reference and the FP16 pipeline of the SPU (Fig. 5C5).

The hardware computes ``x / (1 + exp(-x))`` with an exp unit, an adder, and
a divider, each rounding its FP16 output.  The SiLU result is then
multiplied by the up-projection output to form the gated MLP input, which
is modelled here as well because the multiply shares the same pipeline.
"""

from __future__ import annotations

import numpy as np

from .fp16 import _as_rounded_f32, fp16_round_f32


def reference_silu(x: np.ndarray) -> np.ndarray:
    """Float64 SiLU: ``x * sigmoid(x)``."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def _silu_stages(x32: np.ndarray) -> np.ndarray:
    """The exp/add/divide pipeline on float32 carrying FP16-grid values
    (identical per-stage rounding via ``fp16_round_f32``)."""
    e = fp16_round_f32(np.exp(-x32))
    denom = fp16_round_f32(np.float32(1.0) + e)
    return fp16_round_f32(x32 / denom)


def hardware_silu(x: np.ndarray) -> np.ndarray:
    """FP16 SiLU with per-stage rounding (exp, add, divide)."""
    return _silu_stages(_as_rounded_f32(x)).astype(np.float16)


def hardware_gated_silu(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """SiLU(gate) * up — the gated-MLP elementwise stage, in FP16."""
    act = _silu_stages(_as_rounded_f32(gate))
    up32 = _as_rounded_f32(up)
    return fp16_round_f32(act * up32).astype(np.float16)
