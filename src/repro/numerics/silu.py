"""SiLU activation: reference and the FP16 pipeline of the SPU (Fig. 5C5).

The hardware computes ``x / (1 + exp(-x))`` with an exp unit, an adder, and
a divider, each rounding its FP16 output.  The SiLU result is then
multiplied by the up-projection output to form the gated MLP input, which
is modelled here as well because the multiply shares the same pipeline.
"""

from __future__ import annotations

import numpy as np

from .fp16 import fp16


def reference_silu(x: np.ndarray) -> np.ndarray:
    """Float64 SiLU: ``x * sigmoid(x)``."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def hardware_silu(x: np.ndarray) -> np.ndarray:
    """FP16 SiLU with per-stage rounding (exp, add, divide)."""
    x32 = fp16(x).astype(np.float32)
    e = fp16(np.exp(-x32)).astype(np.float32)
    denom = fp16(np.float32(1.0) + e).astype(np.float32)
    return fp16(x32 / denom)


def hardware_gated_silu(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """SiLU(gate) * up — the gated-MLP elementwise stage, in FP16."""
    act = hardware_silu(gate).astype(np.float32)
    up32 = fp16(up).astype(np.float32)
    return fp16(act * up32)
