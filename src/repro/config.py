"""Model, quantization, and platform configurations.

Three frozen dataclasses describe everything the simulator needs:

* :class:`ModelConfig` — transformer shapes (LLaMA2-7B, TinyLlama, ... and
  tiny synthetic models for functional tests).
* :class:`QuantConfig` — bit-widths and group size for the W4A16 + KV8
  scheme of the paper (Sec. IV).
* :class:`PlatformConfig` — memory capacity, bandwidth, and PL clocking of
  the target board (KV260) and of every comparison platform in
  Tables II/III.

The parameter-counting helpers on :class:`ModelConfig` reproduce the
paper's conventions exactly: the *decode weight traffic* per token counts
every parameter except the embedding table (only one row of it is read per
token), which is what makes ``19.2 GB/s / (6.61e9 params * 0.5 B) =
5.8 token/s`` for LLaMA2-7B W4 (Table II, note 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigError
from .units import GB_DEC, GIB

# ---------------------------------------------------------------------------
# Model configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelConfig:
    """Shape description of a decoder-only LLaMA-like transformer."""

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    vocab_size: int
    num_kv_heads: int | None = None
    max_context: int = 1024
    norm_eps: float = 1e-5
    rope_theta: float = 10000.0
    tie_embeddings: bool = False
    gated_mlp: bool = True

    def __post_init__(self) -> None:
        if self.hidden_size <= 0 or self.num_layers <= 0:
            raise ConfigError(f"{self.name}: sizes must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        kv = self.num_kv_heads if self.num_kv_heads is not None else self.num_heads
        if self.num_heads % kv != 0:
            raise ConfigError(
                f"{self.name}: num_heads {self.num_heads} not divisible by "
                f"num_kv_heads {kv}"
            )
        if self.head_dim % 2 != 0:
            raise ConfigError(f"{self.name}: head_dim must be even for RoPE")

    # -- derived shapes ----------------------------------------------------

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_heads(self) -> int:
        return self.num_kv_heads if self.num_kv_heads is not None else self.num_heads

    @property
    def kv_dim(self) -> int:
        return self.kv_heads * self.head_dim

    # -- parameter accounting ----------------------------------------------

    def attention_params(self) -> int:
        """Parameters of one attention block (Q/K/V/O projections)."""
        h = self.hidden_size
        return h * h + 2 * h * self.kv_dim + h * h

    def mlp_params(self) -> int:
        """Parameters of one MLP block (gate/up/down, or up/down if ungated)."""
        n_mats = 3 if self.gated_mlp else 2
        return n_mats * self.hidden_size * self.intermediate_size

    def norm_params(self) -> int:
        """RMSNorm weights: two per layer plus the final norm."""
        return (2 * self.num_layers + 1) * self.hidden_size

    def layer_params(self) -> int:
        """Parameters of one transformer layer (attention + MLP)."""
        return self.attention_params() + self.mlp_params()

    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden_size

    def lm_head_params(self) -> int:
        return 0 if self.tie_embeddings else self.vocab_size * self.hidden_size

    def total_params(self) -> int:
        """All parameters, including the embedding table."""
        return (
            self.embedding_params()
            + self.num_layers * self.layer_params()
            + self.lm_head_params()
            + self.norm_params()
        )

    def decode_stream_params(self) -> int:
        """Parameters streamed from DRAM for every decoded token.

        Everything except the embedding table (a single row lookup) must be
        read once per token during GEMV decoding: every layer's projections,
        the LM head, and the norm weights.
        """
        return self.total_params() - self.embedding_params()

    def kv_bytes_per_token(self, kv_bits: int = 8) -> int:
        """KV-cache payload bytes appended per decoded token (no scale/zero)."""
        return 2 * self.num_layers * self.kv_dim * kv_bits // 8

    def with_context(self, max_context: int) -> "ModelConfig":
        """Copy of this config with a different maximum context length."""
        return replace(self, max_context=max_context)


# ---------------------------------------------------------------------------
# Quantization configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QuantConfig:
    """Bit-widths of the W4A16 + KV8 scheme (paper Sec. IV).

    ``weight_zero_bits`` is 8 by default: the paper's Fig. 4A caption says
    4-bit zero points but its capacity figure (3556 MB for LLaMA2-7B) and
    its own KV scale-zero pack (16-bit scale + 8-bit zero + 8-bit pad) are
    only consistent with 8-bit zeros; we follow the numbers, not the
    caption, and keep the width configurable.
    """

    weight_bits: int = 4
    weight_group_size: int = 128
    weight_scale_bits: int = 16
    weight_zero_bits: int = 8
    activation_bits: int = 16
    kv_bits: int = 8
    kv_scale_bits: int = 16
    kv_zero_bits: int = 8
    kv_pack_pad_bits: int = 8

    def __post_init__(self) -> None:
        if self.weight_bits not in (2, 3, 4, 8, 16):
            raise ConfigError(f"unsupported weight_bits {self.weight_bits}")
        if self.weight_group_size <= 0:
            raise ConfigError("weight_group_size must be positive")
        if self.kv_bits not in (4, 8, 16):
            raise ConfigError(f"unsupported kv_bits {self.kv_bits}")

    @property
    def weight_overhead_bits_per_weight(self) -> float:
        """Scale+zero bits amortized over one quantization group."""
        if self.weight_bits == 16:
            return 0.0
        return (self.weight_scale_bits + self.weight_zero_bits) / self.weight_group_size

    @property
    def effective_weight_bits(self) -> float:
        """Stored bits per weight including quantization metadata."""
        return self.weight_bits + self.weight_overhead_bits_per_weight

    @property
    def kv_pack_bits(self) -> int:
        """Bits of one KV scale-zero pack (paper: 16 + 8 + 8 pad = 32)."""
        return self.kv_scale_bits + self.kv_zero_bits + self.kv_pack_pad_bits

    def weight_levels(self) -> int:
        return (1 << self.weight_bits) - 1

    def kv_levels(self) -> int:
        return (1 << self.kv_bits) - 1


# ---------------------------------------------------------------------------
# Platform configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlatformConfig:
    """A deployment platform: memory system + programmable-logic clocking.

    ``bandwidth_gbps`` is decimal GB/s as in the paper.  FPGA-specific
    fields (ports/frequency/bus width) are zero for CPU/GPU baselines.
    """

    name: str
    dram_bytes: int
    bandwidth_gbps: float
    kind: str = "fpga"  # "fpga" | "gpu" | "cpu"
    pl_freq_hz: float = 0.0
    axi_port_bits: int = 0
    axi_ports: int = 0
    reserved_bytes: int = 0  # capacity not usable for weights/KV (e.g. compiler)

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0 and self.kind == "fpga":
            raise ConfigError(f"{self.name}: dram_bytes must be positive")
        if self.bandwidth_gbps <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * GB_DEC

    @property
    def port_bandwidth_bytes_per_s(self) -> float:
        """Aggregate PL-side AXI bandwidth (ports x width x frequency)."""
        return self.axi_ports * (self.axi_port_bits / 8) * self.pl_freq_hz

    @property
    def bus_bytes_per_cycle(self) -> float:
        """Bytes the concatenated AXI stream delivers per PL cycle."""
        return self.axi_ports * self.axi_port_bits / 8

    def usable_bytes(self) -> int:
        return self.dram_bytes - self.reserved_bytes


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

LLAMA2_7B = ModelConfig(
    name="LLaMA2-7B",
    hidden_size=4096,
    num_layers=32,
    num_heads=32,
    intermediate_size=11008,
    vocab_size=32000,
    max_context=1024,
)

TINYLLAMA_1_1B = ModelConfig(
    name="TinyLlama-1.1B",
    hidden_size=2048,
    num_layers=22,
    num_heads=32,
    num_kv_heads=4,
    intermediate_size=5632,
    vocab_size=32000,
    max_context=1024,
)

GPT2_1_5B = ModelConfig(
    name="GPT2-1.5B",
    hidden_size=1600,
    num_layers=48,
    num_heads=25,
    intermediate_size=6400,
    vocab_size=50257,
    max_context=1024,
    tie_embeddings=True,
    gated_mlp=False,
    # GPT-2 head_dim=64; 1600/25=64.
)

CHATGLM_6B = ModelConfig(
    name="ChatGLM-6B",
    hidden_size=4096,
    num_layers=28,
    num_heads=32,
    intermediate_size=16384,
    vocab_size=65024,
    max_context=1024,
    gated_mlp=False,
)

TINY_MODEL = ModelConfig(
    name="tiny-test",
    hidden_size=64,
    num_layers=2,
    num_heads=4,
    intermediate_size=128,
    vocab_size=272,  # 256 byte values + special tokens, padded to 16
    max_context=64,
    rope_theta=10000.0,
)

SMALL_MODEL = ModelConfig(
    name="small-test",
    hidden_size=128,
    num_layers=4,
    num_heads=8,
    intermediate_size=256,
    vocab_size=512,
    max_context=128,
)

W4A16_KV8 = QuantConfig()
W8A16_KV8 = QuantConfig(weight_bits=8)
W16 = QuantConfig(weight_bits=16, kv_bits=16)

KV260 = PlatformConfig(
    name="KV260",
    dram_bytes=4 * GIB,
    bandwidth_gbps=19.2,  # 64-bit x 2400 MT/s DDR4
    kind="fpga",
    pl_freq_hz=300e6,
    axi_port_bits=128,
    axi_ports=4,
    reserved_bytes=1 * 1024 * 1024,  # 1 MB reserved by the bare-metal compiler
)

ALVEO_U280 = PlatformConfig(
    name="Alveo U280", dram_bytes=8 * GIB, bandwidth_gbps=460.0, kind="fpga",
    pl_freq_hz=225e6, axi_port_bits=256, axi_ports=32,
)

ZCU102 = PlatformConfig(
    name="ZCU102", dram_bytes=4 * GIB, bandwidth_gbps=21.3, kind="fpga",
    pl_freq_hz=205e6, axi_port_bits=128, axi_ports=4,
)

PYNQ_Z2 = PlatformConfig(
    name="PYNQ-Z2", dram_bytes=512 * 1024 * 1024, bandwidth_gbps=2.1, kind="fpga",
    pl_freq_hz=100e6, axi_port_bits=64, axi_ports=2,
)

ULTRA96_V2 = PlatformConfig(
    name="Ultra96v2", dram_bytes=2 * GIB, bandwidth_gbps=8.5, kind="fpga",
    pl_freq_hz=300e6, axi_port_bits=128, axi_ports=2,
)

ZCU104 = PlatformConfig(
    name="ZCU104", dram_bytes=2 * GIB, bandwidth_gbps=19.2, kind="fpga",
    pl_freq_hz=300e6, axi_port_bits=128, axi_ports=4,
)

# Hypothetical future board from the Discussion section: same Zynq-class
# PL with 64-bit DDR5-4800 (double the paper's bandwidth) and 8 GB.
KV260_DDR5 = PlatformConfig(
    name="KV260-DDR5 (hypothetical)", dram_bytes=8 * GIB,
    bandwidth_gbps=38.4, kind="fpga",
    pl_freq_hz=300e6, axi_port_bits=128, axi_ports=8,
    reserved_bytes=1 * 1024 * 1024,
)

RASPBERRY_PI_4B = PlatformConfig(
    name="Pi-4B 8GB", dram_bytes=8 * GIB, bandwidth_gbps=12.8, kind="cpu",
)

JETSON_AGX_ORIN = PlatformConfig(
    name="Jetson AGX Orin", dram_bytes=64 * GIB, bandwidth_gbps=204.8, kind="gpu",
)

JETSON_ORIN_NANO = PlatformConfig(
    name="Jetson Orin Nano", dram_bytes=8 * GIB, bandwidth_gbps=68.0, kind="gpu",
)

MODEL_PRESETS = {
    m.name: m
    for m in (LLAMA2_7B, TINYLLAMA_1_1B, GPT2_1_5B, CHATGLM_6B, TINY_MODEL, SMALL_MODEL)
}

PLATFORM_PRESETS = {
    p.name: p
    for p in (
        KV260, ALVEO_U280, ZCU102, ZCU104, PYNQ_Z2, ULTRA96_V2, KV260_DDR5,
        RASPBERRY_PI_4B, JETSON_AGX_ORIN, JETSON_ORIN_NANO,
    )
}
