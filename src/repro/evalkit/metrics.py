"""Model-comparison metrics over logits.

All metrics take raw logits (any float dtype) and operate in float64; the
quantized model's FP16 logits are promoted, not re-rounded.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    x = np.asarray(logits, dtype=np.float64)
    x = x - x.max(axis=-1, keepdims=True)
    return x - np.log(np.sum(np.exp(x), axis=-1, keepdims=True))


def cross_entropy(logits: np.ndarray, target: int) -> float:
    """Negative log-likelihood of ``target`` under ``logits`` (nats)."""
    logp = _log_softmax(logits)
    if not 0 <= target < logp.shape[-1]:
        raise SimulationError(f"target {target} outside vocabulary")
    return float(-logp[..., target])


def perplexity(nlls) -> float:
    """exp(mean NLL) over a sequence of per-token negative log-likelihoods."""
    nlls = np.asarray(list(nlls), dtype=np.float64)
    if nlls.size == 0:
        raise SimulationError("perplexity of an empty sequence")
    return float(np.exp(nlls.mean()))


def kl_divergence(logits_p: np.ndarray, logits_q: np.ndarray) -> float:
    """KL(P || Q) between the distributions implied by two logit vectors."""
    logp = _log_softmax(logits_p)
    logq = _log_softmax(logits_q)
    if logp.shape != logq.shape:
        raise SimulationError(
            f"logit shapes differ: {logp.shape} vs {logq.shape}"
        )
    p = np.exp(logp)
    return float(np.sum(p * (logp - logq)))


def topk_agreement(logits_a: np.ndarray, logits_b: np.ndarray,
                   k: int = 5) -> float:
    """|top-k(A) intersect top-k(B)| / k — rank stability under quantization."""
    if k <= 0:
        raise SimulationError("k must be positive")
    a = np.asarray(logits_a, dtype=np.float64).reshape(-1)
    b = np.asarray(logits_b, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise SimulationError("logit shapes differ")
    top_a = set(np.argsort(a)[-k:].tolist())
    top_b = set(np.argsort(b)[-k:].tolist())
    return len(top_a & top_b) / k
