"""Quality-evaluation harness: reference vs quantized over synthetic text.

Without the real LLaMA2-7B checkpoint there is no WikiText perplexity to
report, but the *relative* quality ordering the paper relies on (AWQ <=
RTN error; KV8 << KV4 degradation) is a property of the quantizers, not
of one particular weight matrix — so we measure it on synthetic models
over synthetic corpora, with the float64 reference model as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ModelConfig, QuantConfig
from ..errors import SimulationError
from ..model.kvcache import FloatKVCache, QuantizedKVCache
from ..model.llama import ReferenceModel
from ..model.quantized import QuantizedModel
from ..model.weights import ModelWeights, quantize_model
from ..quant.calibration import ActivationStats
from .metrics import cross_entropy, kl_divergence, perplexity, topk_agreement


def synthetic_corpus(vocab_size: int, n_sequences: int, length: int,
                     seed: int = 0) -> list[list[int]]:
    """Zipf-distributed token sequences (language-like rank frequencies)."""
    if n_sequences <= 0 or length <= 0:
        raise SimulationError("corpus dimensions must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = 1.0 / ranks
    probs /= probs.sum()
    return [rng.choice(vocab_size, size=length, p=probs).tolist()
            for _ in range(n_sequences)]


@dataclass(frozen=True)
class QuantQualityResult:
    """Quality of one quantized configuration against the reference."""

    label: str
    ref_perplexity: float
    quant_perplexity: float
    mean_kl: float
    top5_agreement: float

    @property
    def perplexity_delta(self) -> float:
        """Relative perplexity increase caused by quantization."""
        return self.quant_perplexity / self.ref_perplexity - 1.0


def collect_activation_stats(weights: ModelWeights,
                             corpus: list[list[int]]) -> dict:
    """Run the reference model over the corpus, recording the per-channel
    input magnitudes of every projection (the AWQ calibration pass)."""
    from ..numerics.rmsnorm import reference_rmsnorm
    from ..numerics.silu import reference_silu

    cfg = weights.config
    stats: dict[str, ActivationStats] = {}

    def record(key: str, vec: np.ndarray) -> None:
        if key not in stats:
            stats[key] = ActivationStats(vec.shape[-1])
        stats[key].update(vec)

    model = ReferenceModel(weights)
    for seq in corpus:
        cache = FloatKVCache(cfg)
        x_states = []
        x = None
        for pos, tok in enumerate(seq):
            x = model.embed(tok)
            for i, layer in enumerate(weights.layers):
                normed = reference_rmsnorm(x, layer.input_norm, cfg.norm_eps)
                for name in ("wq", "wk", "wv"):
                    record(f"layer{i}.{name}", normed)
                x = model._attention_one_token(layer, x, cache, i, pos)
                post = reference_rmsnorm(x, layer.post_norm, cfg.norm_eps)
                record(f"layer{i}.w_up", post)
                if cfg.gated_mlp:
                    record(f"layer{i}.w_gate", post)
                    gate = layer.w_gate @ post
                    hidden = reference_silu(gate) * (layer.w_up @ post)
                else:
                    hidden = reference_silu(layer.w_up @ post)
                record(f"layer{i}.w_down", hidden)
                x = model._mlp_one_token(layer, x)
            final = reference_rmsnorm(x, weights.final_norm, cfg.norm_eps)
            record("lm_head", final)
            x_states.append(final)
    # wo sees the concatenated attention output; approximate its stats
    # with the hidden-state magnitudes (same scale, cheap).
    for i in range(cfg.num_layers):
        key = f"layer{i}.wo"
        if key not in stats and x_states:
            stats[key] = ActivationStats(cfg.hidden_size)
            stats[key].update(np.stack(x_states))
    return stats


def evaluate_pair(weights: ModelWeights, quant: QuantConfig,
                  corpus: list[list[int]],
                  act_stats: dict | None = None,
                  label: str = "") -> QuantQualityResult:
    """Teacher-forced evaluation of reference vs quantized on a corpus."""
    if not corpus:
        raise SimulationError("empty corpus")
    cfg = weights.config
    ref = ReferenceModel(weights)
    qw = quantize_model(weights, quant, act_stats=act_stats)
    hw = QuantizedModel(qw)

    ref_nlls: list[float] = []
    q_nlls: list[float] = []
    kls: list[float] = []
    agreements: list[float] = []

    for seq in corpus:
        ref_cache = FloatKVCache(cfg)
        q_cache = QuantizedKVCache(cfg, quant.kv_bits)
        for pos in range(len(seq) - 1):
            ref_logits = ref.forward_token(seq[pos], ref_cache, pos)
            q_logits = hw.forward_token(seq[pos], q_cache, pos)
            target = seq[pos + 1]
            ref_nlls.append(cross_entropy(ref_logits, target))
            q_nlls.append(cross_entropy(q_logits, target))
            kls.append(kl_divergence(ref_logits, q_logits))
            agreements.append(topk_agreement(ref_logits, q_logits, k=5))

    return QuantQualityResult(
        label=label or f"W{quant.weight_bits}/KV{quant.kv_bits}",
        ref_perplexity=perplexity(ref_nlls),
        quant_perplexity=perplexity(q_nlls),
        mean_kl=float(np.mean(kls)),
        top5_agreement=float(np.mean(agreements)),
    )


def compare_quant_configs(weights: ModelWeights,
                          configs: dict[str, QuantConfig],
                          corpus: list[list[int]],
                          awq_stats: dict | None = None,
                          ) -> dict[str, QuantQualityResult]:
    """Evaluate several quantization configs on the same corpus.

    Config labels ending in ``+awq`` get the calibration statistics; the
    rest quantize round-to-nearest — letting one call produce the
    RTN-vs-AWQ and KV8-vs-KV4 contrasts of Sec. IV.
    """
    results = {}
    for label, quant in configs.items():
        stats = awq_stats if label.endswith("+awq") else None
        results[label] = evaluate_pair(weights, quant, corpus,
                                       act_stats=stats, label=label)
    return results
