"""Quantization quality evaluation.

The paper's algorithmic choices (Sec. IV) rest on accuracy arguments:
AWQ's W4A16 "achieves less performance loss than SmoothQuant", and KV8 is
"more suitable for preserving capabilities" than KV4 for <=13B models.
This subpackage quantifies those claims on synthetic models:

* :mod:`repro.evalkit.metrics` — cross-entropy / perplexity / KL and
  logit-agreement metrics between two models.
* :mod:`repro.evalkit.harness` — run matched reference vs quantized
  models over synthetic corpora and report quality deltas for any
  combination of weight bits, AWQ on/off, and KV bits.
"""

from .harness import QuantQualityResult, compare_quant_configs, evaluate_pair
from .metrics import (
    cross_entropy,
    kl_divergence,
    perplexity,
    topk_agreement,
)

__all__ = [
    "QuantQualityResult",
    "compare_quant_configs",
    "evaluate_pair",
    "cross_entropy",
    "kl_divergence",
    "perplexity",
    "topk_agreement",
]
