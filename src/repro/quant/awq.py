"""AWQ-style activation-aware weight quantization (paper Sec. IV-A).

AWQ scales each weight input channel by ``s_j = mean_abs_act_j ** alpha``
before quantizing, and divides the activations by the same factor at run
time (folded into the preceding operator).  Scaling up the channels that
see large activations spends quantization resolution where it matters,
which is why W4A16 AWQ loses less accuracy than naive round-to-nearest.

``search_awq_scales`` grid-searches ``alpha`` to minimize the output MSE of
the quantized layer on the calibration statistics, exactly mirroring the
official AWQ search (we use a synthetic Gaussian activation model with the
observed per-channel magnitudes instead of a stored calibration set).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError
from .groupquant import GroupQuantParams, dequantize_groups, quantize_groups

DEFAULT_ALPHA_GRID = tuple(i / 20.0 for i in range(0, 21))


@dataclass(frozen=True)
class AwqResult:
    """Outcome of AWQ quantization of one weight matrix.

    ``params`` quantizes the *scaled* weight matrix ``W * s``; to use it,
    dequantize and divide column ``j`` by ``channel_scales[j]`` (or divide
    the incoming activation instead, which is algebraically identical).
    """

    params: GroupQuantParams
    channel_scales: np.ndarray  # (in_features,) float64
    alpha: float
    search_error: float

    def effective_weight(self, dtype=np.float32) -> np.ndarray:
        """Dequantized weights with the channel scaling folded back in."""
        w_hat = dequantize_groups(self.params, dtype=np.float64)
        return (w_hat / self.channel_scales[None, :]).astype(dtype)


def _normalized_scales(act_mean_abs: np.ndarray, alpha: float) -> np.ndarray:
    """Per-channel scales ``s = a^alpha``, normalized to unit geometric mean.

    Normalization keeps the overall weight magnitude unchanged so the
    group-quantization ranges stay comparable across alpha values.
    """
    a = np.asarray(act_mean_abs, dtype=np.float64)
    if np.any(a <= 0):
        raise QuantizationError("activation magnitudes must be positive")
    s = a**alpha
    log_gm = np.mean(np.log(s))
    return s / np.exp(log_gm)


def _proxy_output_error(weights: np.ndarray, w_eff: np.ndarray,
                        act_mean_abs: np.ndarray) -> float:
    """MSE proxy: E[((W - W_hat) x)^2] for x ~ diag(act) Gaussian.

    With independent zero-mean activations of per-channel std equal to the
    observed magnitude, the expected squared output error is
    ``sum_j (dW[:, j] * a_j)^2`` — cheap and faithful to AWQ's objective.
    """
    dw = np.asarray(weights, dtype=np.float64) - np.asarray(w_eff, np.float64)
    weighted = dw * np.asarray(act_mean_abs, dtype=np.float64)[None, :]
    return float(np.mean(weighted**2))


def search_awq_scales(weights: np.ndarray, act_mean_abs: np.ndarray,
                      bits: int = 4, group_size: int = 128,
                      alpha_grid=DEFAULT_ALPHA_GRID) -> AwqResult:
    """Grid-search the AWQ exponent alpha and quantize with the winner."""
    weights = np.asarray(weights, dtype=np.float64)
    act = np.asarray(act_mean_abs, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[1] != act.size:
        raise QuantizationError(
            f"weights {weights.shape} incompatible with act stats {act.shape}"
        )

    best: AwqResult | None = None
    for alpha in alpha_grid:
        s = _normalized_scales(act, alpha)
        params = quantize_groups(weights * s[None, :], bits, group_size)
        w_eff = dequantize_groups(params, dtype=np.float64) / s[None, :]
        err = _proxy_output_error(weights, w_eff, act)
        if best is None or err < best.search_error:
            best = AwqResult(params=params, channel_scales=s,
                             alpha=float(alpha), search_error=err)
    assert best is not None  # alpha_grid is never empty
    return best


def awq_quantize_matrix(weights: np.ndarray,
                        act_mean_abs: np.ndarray | None = None,
                        bits: int = 4, group_size: int = 128) -> AwqResult:
    """Quantize one matrix; falls back to round-to-nearest when no stats.

    With ``act_mean_abs=None`` the channel scales are all one (alpha = 0),
    which is plain group quantization — the correct degenerate behaviour
    for layers that never saw calibration data.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if act_mean_abs is None:
        params = quantize_groups(weights, bits, group_size)
        return AwqResult(
            params=params,
            channel_scales=np.ones(weights.shape[1]),
            alpha=0.0,
            search_error=_proxy_output_error(
                weights, dequantize_groups(params, np.float64),
                np.ones(weights.shape[1])),
        )
    return search_awq_scales(weights, act_mean_abs, bits, group_size)
