"""Quantization: W4A16 group weight quantization (AWQ-style) and KV8.

* :mod:`repro.quant.groupquant` — asymmetric per-group integer quantization
  with bit-exact code packing (the storage format consumed by
  :mod:`repro.packing`).
* :mod:`repro.quant.awq` — activation-aware scale search (Sec. IV-A).
* :mod:`repro.quant.kv8` — on-the-fly 8-bit KV-cache quantization
  (Sec. IV-B, Fig. 5C6).
* :mod:`repro.quant.calibration` — activation statistics collection used
  by the AWQ search.
"""

from .awq import AwqResult, awq_quantize_matrix, search_awq_scales
from .calibration import ActivationStats
from .groupquant import (
    GroupQuantParams,
    dequantize_groups,
    pack_codes,
    quantize_groups,
    unpack_codes,
)
from .kv8 import KVQuantParams, kv_dequantize, kv_quantize

__all__ = [
    "AwqResult",
    "awq_quantize_matrix",
    "search_awq_scales",
    "ActivationStats",
    "GroupQuantParams",
    "dequantize_groups",
    "pack_codes",
    "quantize_groups",
    "unpack_codes",
    "KVQuantParams",
    "kv_dequantize",
    "kv_quantize",
]
