"""Activation statistics for the AWQ scale search.

AWQ (Lin et al.) protects the weight channels that multiply large
activations.  The statistic it needs is the per-input-channel mean
absolute activation magnitude observed on calibration data; this module
provides a small streaming accumulator for it.
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantizationError


class ActivationStats:
    """Streaming per-channel mean-absolute-value accumulator."""

    def __init__(self, num_channels: int) -> None:
        if num_channels <= 0:
            raise QuantizationError("num_channels must be positive")
        self.num_channels = num_channels
        self._abs_sum = np.zeros(num_channels, dtype=np.float64)
        self._count = 0

    def update(self, activations: np.ndarray) -> None:
        """Accumulate a batch of activations of shape ``(..., channels)``."""
        acts = np.asarray(activations, dtype=np.float64)
        if acts.shape[-1] != self.num_channels:
            raise QuantizationError(
                f"expected {self.num_channels} channels, got {acts.shape[-1]}"
            )
        flat = acts.reshape(-1, self.num_channels)
        self._abs_sum += np.abs(flat).sum(axis=0)
        self._count += flat.shape[0]

    @property
    def count(self) -> int:
        return self._count

    def mean_abs(self) -> np.ndarray:
        """Per-channel mean |activation|; uniform ones if nothing observed."""
        if self._count == 0:
            return np.ones(self.num_channels, dtype=np.float64)
        mean = self._abs_sum / self._count
        # Channels that were always exactly zero get the global mean so the
        # AWQ scale search never divides by zero.
        positive = mean[mean > 0]
        fill = positive.mean() if positive.size else 1.0
        return np.where(mean > 0, mean, fill)
