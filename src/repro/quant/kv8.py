"""KV8: on-chip 8-bit linear quantization of the KV cache (Sec. IV-B).

The SPU quantization submodule (Fig. 5C6) makes two passes over each
freshly generated key/value head vector:

* pass 1 finds ``xmax``/``xmin`` and derives the scale
  ``s = (xmax - xmin) / 255`` and zero point ``z = ceil(xmin / s)``;
* pass 2 emits the 8-bit codes ``q = clamp(round(x / s) - z, 0, 255)``.

Dequantization on fetch is ``x_hat = (q + z) * s``.

The quantization range is widened to include zero (``[min(xmin, 0),
max(xmax, 0)]``), which keeps the zero point in ``[-255, 0]`` so its
magnitude fits the 8-bit field of the 32-bit scale-zero pack (Fig. 4B:
16-bit FP16 scale, 8-bit zero, 8-bit pad).  For K/V vectors — which in
practice always straddle zero — this is identical to the paper's formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError
from ..numerics.fp16 import as_fp16_grid, fp16, fp16_round_f32


@dataclass(frozen=True)
class KVQuantParams:
    """Scale-zero pair for one quantized key/value head vector."""

    scale: np.float16
    zero: int  # signed, fits in int8

    def pack_bits(self, scale_bits: int = 16, zero_bits: int = 8,
                  pad_bits: int = 8) -> int:
        """Size of the packed scale-zero word (paper: 16 + 8 + 8 = 32)."""
        return scale_bits + zero_bits + pad_bits


def kv_quantize(x: np.ndarray, bits: int = 8) -> tuple[np.ndarray, KVQuantParams]:
    """Quantize one head vector; returns (codes, scale/zero params)."""
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    codes, scales, zeros = kv_quantize_batch(x[None], bits)
    return codes[0], KVQuantParams(scale=np.float16(scales[0]),
                                   zero=int(zeros[0]))


def kv_quantize_batch(x: np.ndarray, bits: int = 8,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize a stack of head vectors in one vectorized pass.

    ``x`` has shape ``(..., head_dim)``; returns ``(codes, scales,
    zeros)`` of shapes ``(..., head_dim)`` uint8, ``(...)`` float16 and
    ``(...)`` int64.  Row ``i`` is bit-identical to
    :func:`kv_quantize` of that row alone: the min/max/scale/zero
    derivation is per row, and every rounding (FP16 scale, round-up
    ``nextafter`` bump, ceil of the zero point) vectorizes elementwise.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0 or x.shape[-1] == 0:
        raise QuantizationError("cannot quantize an empty vector")
    qmax = (1 << bits) - 1

    # Widen the range to include zero so the zero point stays in
    # [-qmax, 0] (see module docstring).
    xmin = np.minimum(x.min(axis=-1), 0.0)
    xmax = np.maximum(x.max(axis=-1), 0.0)
    span = xmax - xmin
    scale = np.where(span > 0, span / qmax, 1.0)
    # The hardware stores the scale in FP16; quantize it first so the codes
    # are computed against the value the dequantizer will actually use.
    # Round *up* to the next FP16 value: a scale that rounds down makes
    # span/scale exceed qmax and clips the top codes (a full-step error).
    scale16 = scale.astype(np.float16).astype(np.float64)
    scale16 = np.where(scale16 == 0.0,
                       float(np.finfo(np.float16).tiny), scale16)
    bumped = np.nextafter(scale16.astype(np.float16),
                          np.float16(np.inf)).astype(np.float64)
    scale16 = np.where(scale16 < scale, bumped, scale16)
    zero = np.clip(np.ceil(xmin / scale16), -qmax, 0).astype(np.int64)

    codes = np.clip(np.round(x / scale16[..., None]) - zero[..., None],
                    0, qmax).astype(np.uint8)
    return codes, scale16.astype(np.float16), zero


def kv_dequantize(codes: np.ndarray, params: KVQuantParams,
                  dtype=np.float16) -> np.ndarray:
    """Recover ``(q + z) * s`` in FP16, as the on-the-fly dequantizer does."""
    q = np.asarray(codes, dtype=np.float32)
    centered = q + np.float32(params.zero)
    return fp16(centered * np.float32(params.scale)).astype(dtype)


def kv_dequantize_batch(codes: np.ndarray, scales: np.ndarray,
                        zeros: np.ndarray, dtype=np.float16) -> np.ndarray:
    """Vectorized :func:`kv_dequantize` over a stack of head vectors.

    ``codes`` has shape ``(..., head_dim)`` with one scale/zero pair per
    leading entry; each row dequantizes exactly as the scalar helper
    does (``(q + z) * s`` rounded once to FP16).  ``dtype=np.float32``
    returns the same FP16-grid values without the half cast — the
    representation the batched attention kernels consume directly.
    """
    q = np.asarray(codes, dtype=np.float32)
    centered = q + np.asarray(zeros, dtype=np.float32)[..., None]
    scaled = centered * np.asarray(scales).astype(np.float32)[..., None]
    rounded = fp16_round_f32(scaled)
    if dtype == np.float32:
        return as_fp16_grid(rounded)
    return rounded.astype(dtype)


def kv_roundtrip_error(x: np.ndarray, bits: int = 8) -> float:
    """Max |x - dequant(quant(x))|: ~scale/2 in the interior, up to one
    full step at the range minimum (the paper ceils the zero point)."""
    codes, params = kv_quantize(x, bits)
    x_hat = kv_dequantize(codes, params, dtype=np.float64)
    return float(np.max(np.abs(np.asarray(x, np.float64).reshape(-1) - x_hat)))
