"""KV8: on-chip 8-bit linear quantization of the KV cache (Sec. IV-B).

The SPU quantization submodule (Fig. 5C6) makes two passes over each
freshly generated key/value head vector:

* pass 1 finds ``xmax``/``xmin`` and derives the scale
  ``s = (xmax - xmin) / 255`` and zero point ``z = ceil(xmin / s)``;
* pass 2 emits the 8-bit codes ``q = clamp(round(x / s) - z, 0, 255)``.

Dequantization on fetch is ``x_hat = (q + z) * s``.

The quantization range is widened to include zero (``[min(xmin, 0),
max(xmax, 0)]``), which keeps the zero point in ``[-255, 0]`` so its
magnitude fits the 8-bit field of the 32-bit scale-zero pack (Fig. 4B:
16-bit FP16 scale, 8-bit zero, 8-bit pad).  For K/V vectors — which in
practice always straddle zero — this is identical to the paper's formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError
from ..numerics.fp16 import fp16


@dataclass(frozen=True)
class KVQuantParams:
    """Scale-zero pair for one quantized key/value head vector."""

    scale: np.float16
    zero: int  # signed, fits in int8

    def pack_bits(self, scale_bits: int = 16, zero_bits: int = 8,
                  pad_bits: int = 8) -> int:
        """Size of the packed scale-zero word (paper: 16 + 8 + 8 = 32)."""
        return scale_bits + zero_bits + pad_bits


def kv_quantize(x: np.ndarray, bits: int = 8) -> tuple[np.ndarray, KVQuantParams]:
    """Quantize one head vector; returns (codes, scale/zero params)."""
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    if x.size == 0:
        raise QuantizationError("cannot quantize an empty vector")
    qmax = (1 << bits) - 1

    # Widen the range to include zero so the zero point stays in
    # [-qmax, 0] (see module docstring).
    xmin = min(float(x.min()), 0.0)
    xmax = max(float(x.max()), 0.0)
    span = xmax - xmin
    scale = span / qmax if span > 0 else 1.0
    # The hardware stores the scale in FP16; quantize it first so the codes
    # are computed against the value the dequantizer will actually use.
    # Round *up* to the next FP16 value: a scale that rounds down makes
    # span/scale exceed qmax and clips the top codes (a full-step error).
    scale16 = float(np.float16(scale)) if scale > 0 else 1.0
    if scale16 == 0.0:
        scale16 = float(np.finfo(np.float16).tiny)
    if scale16 < scale:
        scale16 = float(np.nextafter(np.float16(scale16),
                                     np.float16(np.inf)))
    zero = int(np.ceil(xmin / scale16))
    zero = max(-qmax, min(0, zero))

    codes = np.clip(np.round(x / scale16) - zero, 0, qmax).astype(np.uint8)
    return codes, KVQuantParams(scale=np.float16(scale16), zero=zero)


def kv_dequantize(codes: np.ndarray, params: KVQuantParams,
                  dtype=np.float16) -> np.ndarray:
    """Recover ``(q + z) * s`` in FP16, as the on-the-fly dequantizer does."""
    q = np.asarray(codes, dtype=np.float32)
    centered = q + np.float32(params.zero)
    return fp16(centered * np.float32(params.scale)).astype(dtype)


def kv_roundtrip_error(x: np.ndarray, bits: int = 8) -> float:
    """Max |x - dequant(quant(x))|: ~scale/2 in the interior, up to one
    full step at the range minimum (the paper ceils the zero point)."""
    codes, params = kv_quantize(x, bits)
    x_hat = kv_dequantize(codes, params, dtype=np.float64)
    return float(np.max(np.abs(np.asarray(x, np.float64).reshape(-1) - x_hat)))
