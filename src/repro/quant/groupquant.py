"""Asymmetric per-group integer weight quantization.

A weight matrix of shape ``(out_features, in_features)`` is quantized in
groups of ``group_size`` consecutive input channels (the paper uses group
size 128).  Each group gets an FP16 scale and an integer zero point:

    q = clamp(round(w / scale) + zero, 0, 2**bits - 1)
    w_hat = (q - zero) * scale

Codes can be packed into a dense byte stream (:func:`pack_codes`) matching
what the accelerator streams from DDR, and unpacked bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError


@dataclass(frozen=True)
class GroupQuantParams:
    """Quantized representation of one weight matrix.

    ``codes`` holds unsigned integer codes (one per weight, stored unpacked
    in a uint8/uint16 array); ``scales`` and ``zeros`` have one entry per
    (output row, group).
    """

    codes: np.ndarray  # (out, in) unsigned codes
    scales: np.ndarray  # (out, n_groups) float16
    zeros: np.ndarray  # (out, n_groups) integer zero points
    bits: int
    group_size: int

    @property
    def out_features(self) -> int:
        return self.codes.shape[0]

    @property
    def in_features(self) -> int:
        return self.codes.shape[1]

    @property
    def n_groups(self) -> int:
        return self.scales.shape[1]

    def storage_bits(self, scale_bits: int = 16, zero_bits: int = 8) -> int:
        """Total stored bits: codes + per-group scale/zero metadata."""
        n_weights = self.codes.size
        n_meta = self.scales.size
        return n_weights * self.bits + n_meta * (scale_bits + zero_bits)


def _check_shape(weights: np.ndarray, group_size: int) -> None:
    if weights.ndim != 2:
        raise QuantizationError(f"expected 2-D weights, got shape {weights.shape}")
    if group_size <= 0:
        raise QuantizationError(f"group_size must be positive, got {group_size}")
    if weights.shape[1] % group_size != 0:
        raise QuantizationError(
            f"in_features {weights.shape[1]} not divisible by group {group_size}"
        )


def quantize_groups(weights: np.ndarray, bits: int = 4,
                    group_size: int = 128) -> GroupQuantParams:
    """Quantize a 2-D weight matrix to asymmetric per-group integers."""
    weights = np.asarray(weights, dtype=np.float64)
    _check_shape(weights, group_size)
    if not (1 <= bits <= 8):
        raise QuantizationError(f"bits must be in [1, 8], got {bits}")

    out, inp = weights.shape
    n_groups = inp // group_size
    grouped = weights.reshape(out, n_groups, group_size)

    qmax = (1 << bits) - 1
    gmin = grouped.min(axis=2)
    gmax = grouped.max(axis=2)
    span = gmax - gmin
    # Degenerate (constant) groups: pick scale = |v| / qmax and park the
    # zero point at the far end so (q - zero) * scale reproduces v exactly.
    degenerate_scale = np.where(np.abs(gmin) > 0, np.abs(gmin) / qmax, 1.0)
    scale = np.where(span > 0, span / qmax, degenerate_scale)
    zero = np.where(span > 0,
                    np.clip(np.round(-gmin / scale), 0, qmax),
                    np.where(gmin < 0, qmax, 0))

    codes = np.round(grouped / scale[:, :, None]) + zero[:, :, None]
    codes = np.clip(codes, 0, qmax).astype(np.uint8)

    return GroupQuantParams(
        codes=codes.reshape(out, inp),
        scales=scale.astype(np.float16),
        zeros=zero.astype(np.uint8),
        bits=bits,
        group_size=group_size,
    )


def dequantize_groups(params: GroupQuantParams,
                      dtype=np.float32) -> np.ndarray:
    """Recover the FP approximation ``(q - zero) * scale`` of the weights."""
    out, inp = params.codes.shape
    n_groups = params.n_groups
    codes = params.codes.reshape(out, n_groups, params.group_size)
    codes = codes.astype(np.float32)
    zeros = params.zeros.astype(np.float32)[:, :, None]
    scales = params.scales.astype(np.float32)[:, :, None]
    return ((codes - zeros) * scales).reshape(out, inp).astype(dtype)


def quantization_error(weights: np.ndarray, params: GroupQuantParams) -> float:
    """RMS error between the original weights and their dequantization."""
    w = np.asarray(weights, dtype=np.float64)
    w_hat = dequantize_groups(params, dtype=np.float64)
    return float(np.sqrt(np.mean((w - w_hat) ** 2)))


# ---------------------------------------------------------------------------
# Bit packing
# ---------------------------------------------------------------------------


def pack_codes(codes: np.ndarray, bits: int) -> bytes:
    """Pack unsigned integer codes into a little-endian-bit byte stream.

    Code ``i`` occupies bits ``[i*bits, (i+1)*bits)`` of the stream, LSB
    first within each byte — the layout a hardware slicer peels apart with
    simple wiring.  The stream is zero-padded to a whole byte.
    """
    codes = np.asarray(codes).reshape(-1)
    if not (1 <= bits <= 16):
        raise QuantizationError(f"bits must be in [1, 16], got {bits}")
    qmax = (1 << bits) - 1
    if codes.size and (codes.min() < 0 or codes.max() > qmax):
        raise QuantizationError(f"codes out of range for {bits}-bit packing")

    codes = codes.astype(np.uint32)
    positions = np.arange(codes.size, dtype=np.int64) * bits
    total_bits = int(codes.size) * bits
    n_bytes = (total_bits + 7) // 8
    out = np.zeros(n_bytes, dtype=np.uint8)
    for b in range(bits):
        bit_vals = (codes >> b) & 1
        bit_pos = positions + b
        np.bitwise_or.at(out, bit_pos // 8,
                         (bit_vals << (bit_pos % 8)).astype(np.uint8))
    return out.tobytes()


def unpack_codes(data: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`: recover ``count`` codes from a stream."""
    if not (1 <= bits <= 16):
        raise QuantizationError(f"bits must be in [1, 16], got {bits}")
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size * 8 < count * bits:
        raise QuantizationError(
            f"stream of {raw.size} bytes too short for {count} x {bits}-bit codes"
        )
    positions = np.arange(count, dtype=np.int64) * bits
    out = np.zeros(count, dtype=np.uint32)
    for b in range(bits):
        bit_pos = positions + b
        bit_vals = (raw[bit_pos // 8] >> (bit_pos % 8)) & 1
        out |= bit_vals.astype(np.uint32) << b
    dtype = np.uint8 if bits <= 8 else np.uint16
    return out.astype(dtype)
