"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``      — headline reproduction numbers for a model/platform.
* ``tables``    — print Tables I, II, and III.
* ``capacity``  — capacity report (Fig. 1) for a model and context.
* ``sweep``     — decode-rate context sweep.
* ``explore``   — design-space sweep with the Pareto frontier.
* ``generate``  — run the functional pipeline on a tiny synthetic model.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .config import KV260, MODEL_PRESETS, PLATFORM_PRESETS, QuantConfig
from .errors import ReproError


def _model(name: str):
    try:
        return MODEL_PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown model {name!r}; choose from {sorted(MODEL_PRESETS)}"
        ) from None


def _platform(name: str):
    try:
        return PLATFORM_PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown platform {name!r}; choose from "
            f"{sorted(PLATFORM_PRESETS)}"
        ) from None


def _quant(args) -> QuantConfig:
    return QuantConfig(weight_bits=args.weight_bits, kv_bits=args.kv_bits,
                       weight_group_size=args.group_size)


def cmd_info(args) -> int:
    from .core.accelerator import Accelerator

    model = _model(args.model)
    platform = _platform(args.platform)
    acc = Accelerator.analytical(model, _quant(args), platform)
    print(f"{model.name} on {platform.name} "
          f"({platform.bandwidth_gbps} GB/s)")
    print(f"  theoretical ceiling : "
          f"{acc.theoretical_tokens_per_s():.2f} token/s")
    perf = acc.decode_perf(args.context)
    print(f"  simulated @ctx {args.context:<5}: {perf.tokens_per_s:.2f} "
          f"token/s ({perf.utilization:.1%} util)")
    print(f"  power               : {acc.power_w():.2f} W")
    return 0


def cmd_tables(args) -> int:
    from .report.tables import table1_resources, table2_fpga, table3_edge

    for title, fn in (("Table I", table1_resources),
                      ("Table II", lambda: table2_fpga(args.context)),
                      ("Table III", lambda: table3_edge(args.context))):
        _, text = fn()
        print(f"=== {title} ===\n{text}\n")
    return 0


def cmd_capacity(args) -> int:
    from .runtime.baremetal import BareMetalSystem
    from .units import MIB

    model = _model(args.model)
    platform = _platform(args.platform)
    system = BareMetalSystem(platform)
    report = system.capacity_report(model, _quant(args), args.context)
    print(f"{model.name} at context {args.context} on {platform.name}:")
    print(f"  weights : {report.weight_bytes / MIB:8.1f} MiB")
    print(f"  KV cache: {report.kv_bytes / MIB:8.1f} MiB")
    print(f"  reserved: {report.reserved_bytes / MIB:8.1f} MiB")
    print(f"  uses {report.model_utilization:.1%} of "
          f"{report.dram_bytes // MIB} MiB -> "
          f"{'FITS' if report.fits else 'DOES NOT FIT'}")
    if report.fits:
        print(f"  max context: {system.max_context(model, _quant(args))}")
    return 0 if report.fits else 1


def cmd_sweep(args) -> int:
    from .core.cyclemodel import CycleModel

    model = _model(args.model)
    cm = CycleModel(model, _quant(args), _platform(args.platform))
    contexts = range(0, args.context + 1, max(1, args.context // args.steps))
    print(f"ctx     token/s   util    ({args.mode} pipeline)")
    for ctx in contexts:
        step = cm.decode_step(ctx, args.mode)
        print(f"{ctx:5d}   {step.tokens_per_s:7.3f}   {step.utilization:.1%}")
    return 0


def cmd_explore(args) -> int:
    from .core.explore import pareto_frontier, sweep_design_space

    model = _model(args.model)
    points = sweep_design_space(model, _quant(args), context=args.context)
    frontier = {(p.lanes, p.axi_ports, p.freq_mhz)
                for p in pareto_frontier(points)}
    print("lanes  ports  MHz   token/s   W      LUT%   fits  pareto")
    for p in points:
        mark = "*" if (p.lanes, p.axi_ports, p.freq_mhz) in frontier else ""
        print(f"{p.lanes:5d}  {p.axi_ports:5d}  {p.freq_mhz:4.0f}"
              f"  {p.tokens_per_s:7.3f}   {p.power_w:5.2f}"
              f"  {p.lut_util:5.1%}  {str(p.fits):5}  {mark}")
    return 0


def cmd_convert(args) -> int:
    """Quantize a synthetic model and write the SD-card checkpoint file."""
    from .model.weights import quantize_model, random_weights
    from .packing.checkpoint import read_checkpoint, write_checkpoint
    from .packing.memimage import build_memory_image

    model = _model(args.model)
    group = min(args.group_size, model.hidden_size)
    quant = QuantConfig(weight_bits=args.weight_bits, kv_bits=args.kv_bits,
                        weight_group_size=group)
    qweights = quantize_model(random_weights(model, seed=args.seed), quant)
    image = build_memory_image(model, quant, context=model.max_context,
                               qweights=qweights)
    with open(args.out, "wb") as stream:
        n = write_checkpoint(image, stream)
    print(f"wrote {n} bytes ({len(image.data)} regions) to {args.out}")
    with open(args.out, "rb") as stream:
        read_checkpoint(stream)  # verify CRCs like the loader would
    print("verification: all region CRCs OK")
    return 0


def cmd_summary(args) -> int:
    from .report.summary import render_summary, reproduction_summary

    numbers = reproduction_summary(context=args.context)
    print(render_summary(numbers))
    ok = numbers.all_match()
    print(f"\nreproduction {'HOLDS' if ok else 'BROKEN'}")
    return 0 if ok else 1


def cmd_generate(args) -> int:
    from .model.sampler import Sampler
    from .model.weights import quantize_model, random_weights
    from .runtime.session import InferenceSession

    model = _model(args.model)
    group = min(args.group_size, model.hidden_size)
    quant = QuantConfig(weight_bits=args.weight_bits, kv_bits=args.kv_bits,
                        weight_group_size=group)
    qweights = quantize_model(random_weights(model, seed=args.seed), quant)
    sampler = None
    if args.temperature > 0:
        sampler = Sampler(temperature=args.temperature, seed=args.seed)
    session = InferenceSession(qweights, sampler=sampler,
                               check_capacity=False)
    result = session.generate(args.prompt, max_new_tokens=args.tokens)
    print(f"prompt    : {result.prompt!r}")
    print(f"completion: {result.completion!r}")
    print(f"perf      : {result.perf.tokens_per_s:.1f} token/s simulated, "
          f"TTFT {result.perf.ttft_s * 1e3:.2f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Embedded-FPGA LLM decoding reproduction (DATE 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, model_default="LLaMA2-7B"):
        p.add_argument("--model", default=model_default)
        p.add_argument("--platform", default=KV260.name)
        p.add_argument("--weight-bits", type=int, default=4)
        p.add_argument("--kv-bits", type=int, default=8)
        p.add_argument("--group-size", type=int, default=128)
        p.add_argument("--context", type=int, default=1023)

    p = sub.add_parser("info", help="headline numbers")
    common(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("tables", help="print Tables I-III")
    p.add_argument("--context", type=int, default=1023)
    p.set_defaults(fn=cmd_tables)

    p = sub.add_parser("capacity", help="Fig. 1 capacity report")
    common(p)
    p.set_defaults(fn=cmd_capacity, context=1024)

    p = sub.add_parser("sweep", help="context sweep")
    common(p)
    p.add_argument("--mode", choices=("fused", "coarse"), default="fused")
    p.add_argument("--steps", type=int, default=8)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("explore", help="design-space exploration")
    common(p)
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser("convert",
                       help="write a checkpoint file (tiny models)")
    common(p, model_default="tiny-test")
    p.add_argument("--out", default="model.ckpt")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(fn=cmd_convert, group_size=32)

    p = sub.add_parser("summary",
                       help="every headline claim, pass/fail vs the paper")
    p.add_argument("--context", type=int, default=1023)
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("generate", help="functional generation (tiny models)")
    common(p, model_default="tiny-test")
    p.add_argument("--prompt", default="Hello FPGA")
    p.add_argument("--tokens", type=int, default=16)
    p.add_argument("--temperature", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=7)
    # Tiny models need a group size that divides their hidden size.
    p.set_defaults(fn=cmd_generate, group_size=32)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # unreachable; keeps type checkers honest
