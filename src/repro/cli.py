"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``      — headline reproduction numbers for a model/platform.
* ``tables``    — print Tables I, II, and III.
* ``capacity``  — capacity report (Fig. 1) for a model and context.
* ``sweep``     — decode-rate context sweep.
* ``explore``   — design-space sweep with the Pareto frontier.
* ``generate``  — run the functional pipeline on a tiny synthetic model.
* ``serve-sim`` — replay a synthetic request trace through the
  continuous-batching engine (optionally a TP x replicas cluster) and
  report serving metrics.
* ``bench-serve`` — throughput-vs-batch curve of the batched cycle
  model; ``--scaling-sweep`` records the multi-accelerator TP x DP
  curve instead.
* ``obs``       — the diffable run store: ``obs list`` enumerates
  recorded runs, ``obs show`` prints one record, ``obs diff`` compares
  two and exits nonzero when a metric regressed beyond the threshold.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .config import KV260, MODEL_PRESETS, PLATFORM_PRESETS, QuantConfig
from .errors import ReproError


def _model(name: str):
    try:
        return MODEL_PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown model {name!r}; choose from {sorted(MODEL_PRESETS)}"
        ) from None


def _platform(name: str):
    try:
        return PLATFORM_PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown platform {name!r}; choose from "
            f"{sorted(PLATFORM_PRESETS)}"
        ) from None


def _quant(args) -> QuantConfig:
    return QuantConfig(weight_bits=args.weight_bits, kv_bits=args.kv_bits,
                       weight_group_size=args.group_size)


def cmd_info(args) -> int:
    from .core.accelerator import Accelerator

    model = _model(args.model)
    platform = _platform(args.platform)
    acc = Accelerator.analytical(model, _quant(args), platform)
    print(f"{model.name} on {platform.name} "
          f"({platform.bandwidth_gbps} GB/s)")
    print(f"  theoretical ceiling : "
          f"{acc.theoretical_tokens_per_s():.2f} token/s")
    perf = acc.decode_perf(args.context)
    print(f"  simulated @ctx {args.context:<5}: {perf.tokens_per_s:.2f} "
          f"token/s ({perf.utilization:.1%} util)")
    print(f"  power               : {acc.power_w():.2f} W")
    return 0


def cmd_tables(args) -> int:
    from .report.tables import table1_resources, table2_fpga, table3_edge

    for title, fn in (("Table I", table1_resources),
                      ("Table II", lambda: table2_fpga(args.context)),
                      ("Table III", lambda: table3_edge(args.context))):
        _, text = fn()
        print(f"=== {title} ===\n{text}\n")
    return 0


def cmd_capacity(args) -> int:
    from .runtime.baremetal import BareMetalSystem
    from .units import MIB

    model = _model(args.model)
    platform = _platform(args.platform)
    system = BareMetalSystem(platform)
    report = system.capacity_report(model, _quant(args), args.context)
    print(f"{model.name} at context {args.context} on {platform.name}:")
    print(f"  weights : {report.weight_bytes / MIB:8.1f} MiB")
    print(f"  KV cache: {report.kv_bytes / MIB:8.1f} MiB")
    print(f"  reserved: {report.reserved_bytes / MIB:8.1f} MiB")
    print(f"  uses {report.model_utilization:.1%} of "
          f"{report.dram_bytes // MIB} MiB -> "
          f"{'FITS' if report.fits else 'DOES NOT FIT'}")
    if report.fits:
        print(f"  max context: {system.max_context(model, _quant(args))}")
    return 0 if report.fits else 1


def cmd_sweep(args) -> int:
    from .core.cyclemodel import CycleModel

    model = _model(args.model)
    cm = CycleModel(model, _quant(args), _platform(args.platform))
    contexts = range(0, args.context + 1, max(1, args.context // args.steps))
    print(f"ctx     token/s   util    ({args.mode} pipeline)")
    for ctx in contexts:
        step = cm.decode_step(ctx, args.mode)
        print(f"{ctx:5d}   {step.tokens_per_s:7.3f}   {step.utilization:.1%}")
    return 0


def cmd_explore(args) -> int:
    from .core.explore import pareto_frontier, sweep_design_space

    model = _model(args.model)
    points = sweep_design_space(model, _quant(args), context=args.context)
    frontier = {(p.lanes, p.axi_ports, p.freq_mhz)
                for p in pareto_frontier(points)}
    print("lanes  ports  MHz   token/s   W      LUT%   fits  pareto")
    for p in points:
        mark = "*" if (p.lanes, p.axi_ports, p.freq_mhz) in frontier else ""
        print(f"{p.lanes:5d}  {p.axi_ports:5d}  {p.freq_mhz:4.0f}"
              f"  {p.tokens_per_s:7.3f}   {p.power_w:5.2f}"
              f"  {p.lut_util:5.1%}  {str(p.fits):5}  {mark}")
    return 0


def cmd_convert(args) -> int:
    """Quantize a synthetic model and write the SD-card checkpoint file."""
    from .model.weights import quantize_model, random_weights
    from .packing.checkpoint import read_checkpoint, write_checkpoint
    from .packing.memimage import build_memory_image

    model = _model(args.model)
    group = min(args.group_size, model.hidden_size)
    quant = QuantConfig(weight_bits=args.weight_bits, kv_bits=args.kv_bits,
                        weight_group_size=group)
    qweights = quantize_model(random_weights(model, seed=args.seed), quant)
    image = build_memory_image(model, quant, context=model.max_context,
                               qweights=qweights)
    with open(args.out, "wb") as stream:
        n = write_checkpoint(image, stream)
    print(f"wrote {n} bytes ({len(image.data)} regions) to {args.out}")
    with open(args.out, "rb") as stream:
        read_checkpoint(stream)  # verify CRCs like the loader would
    print("verification: all region CRCs OK")
    return 0


def cmd_summary(args) -> int:
    from .report.summary import render_summary, reproduction_summary

    numbers = reproduction_summary(context=args.context)
    print(render_summary(numbers))
    ok = numbers.all_match()
    print(f"\nreproduction {'HOLDS' if ok else 'BROKEN'}")
    return 0 if ok else 1


def cmd_generate(args) -> int:
    from .model.sampler import Sampler
    from .model.weights import quantize_model, random_weights
    from .runtime.session import InferenceSession

    model = _model(args.model)
    group = min(args.group_size, model.hidden_size)
    quant = QuantConfig(weight_bits=args.weight_bits, kv_bits=args.kv_bits,
                        weight_group_size=group)
    qweights = quantize_model(random_weights(model, seed=args.seed), quant)
    sampler = None
    if args.temperature > 0:
        sampler = Sampler(temperature=args.temperature, seed=args.seed)
    session = InferenceSession(qweights, sampler=sampler,
                               check_capacity=False)
    result = session.generate(args.prompt, max_new_tokens=args.tokens)
    print(f"prompt    : {result.prompt!r}")
    print(f"completion: {result.completion!r}")
    print(f"perf      : {result.perf.tokens_per_s:.1f} token/s simulated, "
          f"TTFT {result.perf.ttft_s * 1e3:.2f} ms")
    return 0


def _kv_kwargs(args):
    """(backend, scheduler) KV kwargs from the serve-sim flags."""
    from .engine import kv_discipline_kwargs

    return kv_discipline_kwargs(args.kv,
                                budget_tokens=args.kv_budget or None,
                                block_size=args.block_size,
                                n_kv_blocks=args.kv_blocks or None)


def _interconnect(args):
    from .cluster import INTERCONNECT_PRESETS

    try:
        return INTERCONNECT_PRESETS[args.interconnect]
    except KeyError:
        raise ReproError(
            f"unknown interconnect {args.interconnect!r}; choose from "
            f"{sorted(INTERCONNECT_PRESETS)}") from None


def _serve_qweights(args, model, quant):
    from .model.weights import quantize_model, random_weights

    if model.total_params() > 50_000_000:
        raise ReproError(
            f"{model.name} is too large for the functional backend "
            "(numpy forward pass); use --backend cycle or analytical")
    group = min(quant.weight_group_size, model.hidden_size)
    fq = QuantConfig(weight_bits=quant.weight_bits,
                     kv_bits=quant.kv_bits, weight_group_size=group)
    return quantize_model(random_weights(model, seed=args.seed), fq)


def _serve_backend(args, model, platform, quant, qweights=None):
    from .engine import build_backend

    kv, _ = _kv_kwargs(args)
    if args.backend == "functional" and qweights is None:
        qweights = _serve_qweights(args, model, quant)
    return build_backend(args.backend, model, quant, platform,
                         mode=args.mode, n_slots=args.max_batch,
                         tp=args.tp, interconnect=_interconnect(args),
                         qweights=qweights, **kv)


def _tenant_mix(args):
    """``--tenants/--priority-mix/--quota`` -> a trace tenant-mix spec
    (None when tenancy is off)."""
    from .engine import TenantSpec

    if not args.tenants:
        if args.priority_mix:
            raise ReproError("--priority-mix needs --tenants")
        return None
    specs = []
    for entry in args.tenants.split(","):
        parts = entry.strip().split(":")
        if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
            raise ReproError(
                f"bad --tenants entry {entry.strip()!r}; expected "
                "name:class[:kv-quota-tokens]")
        try:
            quota = int(parts[2]) if len(parts) == 3 else args.quota
        except ValueError:
            raise ReproError(
                f"bad --tenants entry {entry.strip()!r}: quota "
                f"{parts[2]!r} is not an integer token count") from None
        specs.append(TenantSpec(
            name=parts[0], priority=parts[1],
            kv_quota_tokens=quota if quota > 0 else None))
    if args.priority_mix:
        shares = [float(s) for s in args.priority_mix.split(",")]
        if len(shares) != len(specs):
            raise ReproError(
                f"--priority-mix gives {len(shares)} shares for "
                f"{len(specs)} tenants")
    else:
        shares = [1.0] * len(specs)
    return list(zip(specs, shares))


def _check_serve_destinations(args) -> None:
    """Fail fast on unwritable ``--trace-out``/``--record`` targets.

    A long simulation that dies at the final write is the worst
    failure mode, so both destinations are probed before any work
    starts and bad ones surface as a clear :class:`ReproError`.
    """
    import pathlib

    if args.trace_out:
        target = pathlib.Path(args.trace_out)
        if target.is_dir():
            raise ReproError(
                f"--trace-out {args.trace_out!r} is a directory, "
                "not a writable file path")
        parent = target.parent
        if not parent.is_dir():
            raise ReproError(
                f"--trace-out {args.trace_out!r}: directory "
                f"{parent} does not exist")
        probe = parent / f".{target.name}.writable"
        try:
            probe.touch()
            probe.unlink()
        except OSError as exc:
            raise ReproError(
                f"--trace-out {args.trace_out!r} is not writable "
                f"({exc})") from None
    if args.record:
        from .obs import RunStore

        store = RunStore(args.runs_dir)
        store._label_path(args.record)  # validates the label shape
        try:
            store.root.mkdir(parents=True, exist_ok=True)
            probe = store.root / ".writable"
            probe.touch()
            probe.unlink()
        except OSError as exc:
            raise ReproError(
                f"--record {args.record!r}: run-store root "
                f"{store.root} is not writable ({exc})") from None


def cmd_serve_sim(args) -> int:
    from .engine import ContinuousBatchScheduler, iter_synthetic_trace

    if args.tp < 1 or args.replicas < 1:
        raise ReproError("--tp and --replicas must be >= 1")
    if args.per_request and args.telemetry in ("summary", "sketch"):
        raise ReproError(
            "--per-request needs per-request results; use "
            "--telemetry full or windows")
    if args.chaos and args.replicas < 2:
        raise ReproError(
            "--chaos needs --replicas >= 2: fault tolerance means "
            "surviving replicas pick up the killed work")
    if args.drain and args.replicas < 2:
        raise ReproError(
            "--drain needs --replicas >= 2: a drained replica hands "
            "its work to a healthy peer")
    if args.domains:
        if not args.chaos:
            raise ReproError("--domains correlates the generated fault "
                             "schedule; it needs --chaos")
        if not 2 <= args.domains <= args.replicas:
            raise ReproError(
                f"--domains must be between 2 and --replicas "
                f"({args.replicas}): {args.domains}")
    if args.hedge < 0:
        raise ReproError(f"--hedge must be >= 0: {args.hedge}")
    if args.hedge and args.telemetry != "full":
        raise ReproError("--hedge compares per-request first-token "
                         "times; it needs --telemetry full")
    if args.hedge and not (args.chaos or args.drain):
        raise ReproError("--hedge rides the fault-tolerant path; "
                         "combine it with --chaos or --drain")
    _check_serve_destinations(args)
    model = _model(args.model)
    platform = _platform(args.platform)
    quant = _quant(args)
    qweights = _serve_qweights(args, model, quant) \
        if args.backend == "functional" else None
    _, scheduler_kv = _kv_kwargs(args)
    backends = [_serve_backend(args, model, platform, quant, qweights)
                for _ in range(args.replicas)]
    engines = [ContinuousBatchScheduler(b, max_batch=args.max_batch,
                                        **scheduler_kv) for b in backends]

    recorders = None
    if args.trace_out:
        from .obs import FlightRecorder

        recorders = [FlightRecorder(replica=idx)
                     for idx in range(len(engines))]
        for engine, recorder in zip(engines, recorders):
            engine.flight = recorder

    mix = _tenant_mix(args)

    def trace_factory():
        return iter_synthetic_trace(
            model, n_requests=args.requests,
            arrival_rate_rps=args.arrival_rate,
            prompt_len=(args.prompt_min, args.prompt_max),
            decode_len=(args.decode_min, args.decode_max),
            seed=args.seed,
            shared_prefix_len=args.shared_prefix,
            tenant_mix=mix)

    # The trace streams into the engine(s): nothing is materialized, so
    # --requests scales to millions at O(in-flight) memory.  Exception:
    # a full-telemetry cluster keeps O(trace) per-request state anyway,
    # so hand the router a materialized list instead of regenerating
    # and re-routing the trace once per replica.
    max_steps = max(1_000_000, 64 * args.requests)
    if args.replicas > 1:
        from .cluster import ReplicaRouter

        chaos_kwargs: dict = {}
        if args.chaos or args.drain:
            from .cluster import (DegradedModeConfig, FailureDomain,
                                  FaultEvent, FaultSchedule,
                                  RetryPolicy)

            # Fault times scale with the arrival span so the schedule
            # lands while traffic is in flight at any request rate.
            span = args.requests / args.arrival_rate
            topology: tuple[FailureDomain, ...] = ()
            if args.domains:
                # Contiguous, near-equal partition of the replica ids
                # into K failure domains ("racks").
                base, extra = divmod(args.replicas, args.domains)
                cuts, lo = [], 0
                for i in range(args.domains):
                    hi = lo + base + (1 if i < extra else 0)
                    cuts.append(FailureDomain(
                        f"rack{i}", tuple(range(lo, hi))))
                    lo = hi
                topology = tuple(cuts)
            events: list[FaultEvent] = []
            if args.chaos:
                events = list(FaultSchedule.generate(
                    args.replicas, horizon_s=span,
                    seed=args.fault_seed, mean_gap_s=span / 2,
                    downtime_s=(0.1 * span, 0.3 * span),
                    hang_s=(0.05 * span, 0.15 * span),
                    slow_s=(0.1 * span, 0.3 * span),
                    warmup_s=0.05 * span,
                    topology=topology or None).events)
            if args.drain:
                # Planned maintenance drain of replica 0 mid-run.  Any
                # generated chaos on replica 0 yields to the drain: an
                # operator drains a node instead of letting it crash.
                events = [e for e in events if e.replica != 0]
                events.append(FaultEvent("drain", 0, 0.3 * span,
                                         0.2 * span))
            chaos_kwargs = dict(
                faults=FaultSchedule(tuple(events), topology=topology),
                retry=RetryPolicy(budget=args.retry_budget),
                degraded=DegradedModeConfig())
            if args.hedge:
                from .cluster import HedgePolicy

                chaos_kwargs["hedge"] = HedgePolicy(args.hedge)
        router = ReplicaRouter(engines, policy=args.router,
                               **chaos_kwargs)
        cluster_trace = list(trace_factory()) \
            if args.telemetry == "full" else trace_factory
        report = router.run(cluster_trace, telemetry=args.telemetry,
                            max_steps=max_steps)
    else:
        report = engines[0].run(trace_factory(), max_steps=max_steps,
                                telemetry=args.telemetry)
    backend, engine = backends[0], engines[0]

    kv_desc = f"KV budget {engine.kv_token_budget} tokens"
    if args.kv == "paged":
        kv_desc = (f"paged KV: {backend.paged_kv.n_total_blocks} blocks "
                   f"x {args.block_size} tokens")
    cluster_desc = ""
    if args.tp > 1 or args.replicas > 1:
        cluster_desc = (f", tp {args.tp} x {args.replicas} replicas over "
                        f"{args.interconnect} ({args.router})")
    print(f"serve-sim: {args.requests} requests, {model.name} on "
          f"{platform.name} ({args.backend} backend, max batch "
          f"{args.max_batch}, {kv_desc}{cluster_desc})")
    print(f"  simulated time : {report.total_time_s:10.3f} s "
          f"({report.n_steps} engine steps)")
    print(f"  aggregate rate : {report.aggregate_tokens_per_s:10.3f} "
          f"token/s ({report.total_new_tokens} tokens)")
    print(f"  batch occupancy: mean {report.mean_batch:.2f}, "
          f"max {report.max_batch_observed}, "
          f"preemptions {report.preemptions}")
    print(f"  mean TTFT      : {report.mean_ttft_s * 1e3:10.3f} ms")
    for p in (50, 95, 99):
        print(f"  TTFT p{p:<3}      : "
              f"{report.ttft_percentile_s(p) * 1e3:10.3f} ms")
    for p in (50, 95, 99):
        print(f"  token lat p{p:<3}: "
              f"{report.latency_percentile_s(p) * 1e3:10.3f} ms")
    if args.kv == "paged":
        reused = sum(b.paged_kv.prefix_reused_tokens for b in backends)
        hits = sum(b.paged_kv.prefix.hits for b in backends)
        evictions = sum(b.paged_kv.prefix.evictions for b in backends)
        print(f"  prefix reuse   : {reused} prompt "
              f"tokens served from cache "
              f"({hits} block hits, "
              f"{evictions} evictions)")
    if args.replicas > 1:
        from .report.cluster import replica_table

        _, text = replica_table(report)
        print("  " + text.replace("\n", "\n  "))
    resilience = getattr(report, "resilience", None)
    if resilience:
        goodput = resilience.get("goodput_degraded_tokens_per_s")
        print(f"  chaos          : seed {args.fault_seed} -> "
              f"{resilience['n_crashes']} crashes, "
              f"{resilience['n_hangs']} hangs, "
              f"{resilience['n_slowdowns']} slowdowns")
        print(f"    killed {resilience['n_killed']}, "
              f"redispatched {resilience['n_redispatched']}, "
              f"failed {resilience['n_failed']}, "
              f"shed {resilience['n_shed']}, "
              f"lost {resilience['n_lost']} "
              f"(retry rounds {resilience['retry_rounds']})")
        if resilience.get("n_drains"):
            print(f"    drains {resilience['n_drains']}: "
                  f"migrated {resilience['n_migrated']} "
                  f"({resilience['migrated_kv_bytes']} KV bytes), "
                  f"resumed {resilience['n_resumed']}, "
                  f"recompute {resilience['resume_recompute_tokens']} "
                  f"tokens")
        if resilience.get("n_hedged"):
            print(f"    hedged {resilience['n_hedged']}, "
                  f"hedge wins {resilience['n_hedge_wins']}")
        mttr = resilience["mttr_s"]
        mttr_desc = "-" if mttr is None else f"{mttr * 1e3:.3f} ms"
        tail = "" if goodput is None \
            else f", degraded goodput {goodput:.3f} tok/s"
        print(f"    mttr {mttr_desc}, "
              f"downtime {resilience['downtime_s'] * 1e3:.3f} ms"
              f"{tail}")
    if mix is not None:
        from .report.tables import tenant_stats_table

        _, text = tenant_stats_table(getattr(report, "tenant_stats",
                                             None))
        print("  tenant classes :")
        print("  " + text.replace("\n", "\n  "))
    if args.window_stats:
        from .report.tables import window_stats_table

        _, text = window_stats_table(getattr(report, "window_stats",
                                             None))
        print("  window stats   : " + text.replace("\n", "\n  "))
    if args.per_request:
        print("  id  prompt  new  ttft_ms    e2e_ms  reason")
        for r in report.results:
            ttft = "      -" if r.ttft_s is None \
                else f"{r.ttft_s * 1e3:7.2f}"
            print(f"  {r.request_id:2d}  {r.prompt_len:6d}  "
                  f"{len(r.tokens):3d}  {ttft}  "
                  f"{r.e2e_s * 1e3:8.2f}  {r.finish_reason.value}")
    if recorders is not None:
        from .obs import export_chrome_trace

        payload = export_chrome_trace(args.trace_out, recorders)
        print(f"  trace          : {len(payload['traceEvents'])} events "
              f"-> {args.trace_out}")
    if args.record:
        from .obs import RunStore

        store = RunStore(args.runs_dir)
        record = store.record_report(
            args.record, report,
            config={"command": "serve-sim", "model": model.name,
                    "platform": platform.name, "backend": args.backend,
                    "requests": args.requests,
                    "max_batch": args.max_batch, "kv": args.kv,
                    "telemetry": args.telemetry, "tp": args.tp,
                    "replicas": args.replicas, "router": args.router,
                    "seed": args.seed, "chaos": args.chaos,
                    "fault_seed": args.fault_seed,
                    "drain": args.drain, "domains": args.domains,
                    "hedge": args.hedge})
        print(f"  run record     : {record.run_id} -> "
              f"{store.root / (args.record + '.jsonl')}")
    return 0


def _fmt_metric(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def cmd_obs_list(args) -> int:
    from .obs import RunStore
    from .report.tables import format_table

    records = RunStore(args.runs_dir).list_runs()
    if not records:
        print(f"no runs recorded under {args.runs_dir}")
        return 0
    import time

    headers = ["Run", "Created", "Commit", "Requests", "tok/s",
               "p99 TTFT ms"]
    body = []
    for r in records:
        tok = r.metrics.get("aggregate_tokens_per_s")
        p99 = r.metrics.get("p99_ttft_s")
        body.append([
            r.run_id,
            time.strftime("%Y-%m-%d %H:%M:%S",
                          time.localtime(r.created_unix)),
            r.git_commit or "-",
            r.metrics.get("n_requests", "-"),
            f"{tok:.3f}" if tok is not None else "-",
            f"{p99 * 1e3:.3f}" if p99 is not None else "-"])
    print(format_table(headers, body))
    return 0


def cmd_obs_show(args) -> int:
    from .obs import RunStore, metric_direction
    from .report.tables import (format_table, tenant_stats_table,
                                window_stats_table)

    record = RunStore(args.runs_dir).load(args.run)
    print(f"{record.run_id} ({record.schema}, commit "
          f"{record.git_commit or 'unknown'})")
    if record.config:
        print("config: " + ", ".join(
            f"{k}={v}" for k, v in sorted(record.config.items())))
    direction_name = {1: "higher", -1: "lower", 0: "-"}
    body = [[key, _fmt_metric(value),
             direction_name[metric_direction(key)]]
            for key, value in sorted(record.metrics.items())]
    print(format_table(["Metric", "Value", "Better"], body))
    window_stats = record.sections.get("window_stats")
    if window_stats:
        _, text = window_stats_table(window_stats)
        print("\nwindow stats: " + text)
    tenant_stats = record.sections.get("tenant_stats")
    if tenant_stats:
        _, text = tenant_stats_table(tenant_stats)
        print("\ntenant classes:\n" + text)
    return 0


def cmd_obs_diff(args) -> int:
    from .obs import RunStore, diff_records
    from .report.tables import format_table

    store = RunStore(args.runs_dir)
    if args.baseline_window > 1:
        from .obs import median_record

        base = median_record(
            store.load_window(args.base, args.baseline_window))
    else:
        base = store.load(args.base)
    new = store.load(args.new)
    deltas = diff_records(base, new, threshold=args.threshold)
    body = []
    regressions = []
    for d in deltas:
        change = "n/a" if d.rel_change is None \
            else f"{d.rel_change:+.2%}"
        flag = ""
        if d.regressed:
            flag = "REGRESSED"
            regressions.append(d)
        elif d.improved:
            flag = "improved"
        body.append([d.key, f"{d.base:.6g}", f"{d.new:.6g}", change,
                     flag])
    print(f"diff {base.run_id} -> {new.run_id} "
          f"(threshold {args.threshold:.0%})")
    print(format_table(["Metric", "Base", "New", "Change", "Flag"],
                       body))
    if regressions:
        print(f"{len(regressions)} metric(s) REGRESSED beyond "
              f"{args.threshold:.0%}: "
              + ", ".join(d.key for d in regressions))
        return 1
    print("no regressions beyond threshold")
    return 0


def cmd_bench_serve_scaling(args) -> int:
    """TP x DP grid replay: the multi-accelerator scaling curve."""
    from .cluster import scaling_sweep, tp_scaling_is_sane
    from .report.cluster import scaling_table

    model = _model(args.model)
    platform = _platform(args.platform)
    points = scaling_sweep(model, _quant(args), platform,
                           tp_values=(1, 2, 4), dp_values=(1, 2),
                           interconnect=_interconnect(args),
                           n_requests=args.requests,
                           max_batch=args.max_batch, mode=args.mode,
                           seed=args.seed, telemetry=args.telemetry,
                           max_steps=max(1_000_000, 64 * args.requests))
    _, text = scaling_table(points)
    print(f"TP x DP scaling — {model.name} on {platform.name}, "
          f"{args.interconnect} interconnect, "
          f"{args.requests}-request trace")
    print(text)
    sane = tp_scaling_is_sane(points)
    print("tensor-parallel scaling "
          + ("HOLDS" if sane else "DOES NOT HOLD")
          + " (throughput rises with tp, sub-linear under "
          "interconnect cost)")
    return 0 if sane else 1


def cmd_bench_serve(args) -> int:
    from .core.cyclemodel import CycleModel
    from .core.vpu import VpuSpec

    if args.scaling_sweep:
        return cmd_bench_serve_scaling(args)
    if args.max_batch < 2:
        raise ReproError(
            "bench-serve needs --max-batch >= 2 to compare against the "
            "single-request rate")
    model = _model(args.model)
    platform = _platform(args.platform)
    vpu = VpuSpec(lanes=args.lanes) if args.lanes else None
    cm = CycleModel(model, _quant(args), platform, vpu=vpu)
    batches = []
    b = 1
    while b <= args.max_batch:
        batches.append(b)
        b *= 2
    points = cm.batch_sweep(batches, args.context, args.mode)
    single = points[0].aggregate_tokens_per_s
    print(f"{model.name} on {platform.name} @ctx {args.context} "
          f"({args.mode} pipeline"
          + (f", {args.lanes} lanes" if args.lanes else "") + ")")
    print("batch   agg tok/s   per-seq    util    speedup")
    for p in points:
        print(f"{p.batch:5d}   {p.aggregate_tokens_per_s:9.3f}   "
              f"{p.per_sequence_tokens_per_s:7.3f}   {p.utilization:5.1%}"
              f"   {p.aggregate_tokens_per_s / single:6.2f}x")
    amortized = all(p.aggregate_tokens_per_s > single
                    for p in points if p.batch >= 2)
    print("weight-stream amortization "
          + ("VISIBLE" if amortized else "NOT VISIBLE")
          + " (aggregate rate vs batch=1)")
    if args.kv_compare:
        print()
        return 0 if (cmd_bench_serve_kv_modes(args) == 0 and amortized) \
            else 1
    return 0 if amortized else 1


def cmd_bench_serve_kv_modes(args) -> int:
    """Slotted-vs-paged engine replay on one shared-prefix trace."""
    from .engine import (ContinuousBatchScheduler, CycleModelBackend,
                         derive_kv_token_budget, kv_discipline_kwargs,
                         synthetic_trace)

    model = _model(args.model)
    platform = _platform(args.platform)
    quant = _quant(args)
    budget = args.kv_budget or derive_kv_token_budget(
        model, quant, platform,
        cap_tokens=args.max_batch * model.max_context)
    trace = synthetic_trace(
        model, n_requests=args.requests, arrival_rate_rps=1e9,
        prompt_len=(4, 12), decode_len=(16, 32), seed=args.seed,
        shared_prefix_len=args.shared_prefix)

    print(f"KV modes — {args.requests} requests sharing a "
          f"{args.shared_prefix}-token prefix, budget {budget} tokens")
    print("mode      agg tok/s   mean batch  max batch  preempt  reuse")
    stats = {}
    for kv_mode in ("slotted", "paged"):
        backend_kv, scheduler_kv = kv_discipline_kwargs(
            kv_mode, budget_tokens=budget, block_size=args.block_size)
        backend = CycleModelBackend(model, quant, platform,
                                    mode=args.mode,
                                    n_slots=args.max_batch, **backend_kv)
        engine = ContinuousBatchScheduler(backend,
                                          max_batch=args.max_batch,
                                          **scheduler_kv)
        report = engine.run(trace)
        reused = backend.paged_kv.prefix_reused_tokens \
            if kv_mode == "paged" else 0
        stats[kv_mode] = report
        print(f"{kv_mode:8}  {report.aggregate_tokens_per_s:9.3f}   "
              f"{report.mean_batch:10.2f}  {report.max_batch_observed:9d}"
              f"  {report.preemptions:7d}  {reused:5d}")
    # A win requires strictly more throughput, and a strictly larger
    # admitted batch whenever the KV budget (not --max-batch) was what
    # capped the slotted run — when slotted already reaches the
    # concurrency cap, batch cannot differentiate and throughput decides.
    slotted_budget_limited = \
        stats["slotted"].max_batch_observed < args.max_batch
    wins = (stats["paged"].aggregate_tokens_per_s
            > stats["slotted"].aggregate_tokens_per_s
            and (not slotted_budget_limited
                 or stats["paged"].max_batch_observed
                 > stats["slotted"].max_batch_observed))
    print("paged KV " + ("WINS" if wins else "DOES NOT WIN")
          + " (throughput + admitted batch vs slotted)")
    return 0 if wins else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Embedded-FPGA LLM decoding reproduction (DATE 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, model_default="LLaMA2-7B"):
        p.add_argument("--model", default=model_default)
        p.add_argument("--platform", default=KV260.name)
        p.add_argument("--weight-bits", type=int, default=4)
        p.add_argument("--kv-bits", type=int, default=8)
        p.add_argument("--group-size", type=int, default=128)
        p.add_argument("--context", type=int, default=1023)

    p = sub.add_parser("info", help="headline numbers")
    common(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("tables", help="print Tables I-III")
    p.add_argument("--context", type=int, default=1023)
    p.set_defaults(fn=cmd_tables)

    p = sub.add_parser("capacity", help="Fig. 1 capacity report")
    common(p)
    p.set_defaults(fn=cmd_capacity, context=1024)

    p = sub.add_parser("sweep", help="context sweep")
    common(p)
    p.add_argument("--mode", choices=("fused", "coarse"), default="fused")
    p.add_argument("--steps", type=int, default=8)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("explore", help="design-space exploration")
    common(p)
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser("convert",
                       help="write a checkpoint file (tiny models)")
    common(p, model_default="tiny-test")
    p.add_argument("--out", default="model.ckpt")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(fn=cmd_convert, group_size=32)

    p = sub.add_parser("summary",
                       help="every headline claim, pass/fail vs the paper")
    p.add_argument("--context", type=int, default=1023)
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("serve-sim",
                       help="continuous-batching serving simulation")
    common(p, model_default="tiny-test")
    p.add_argument("--backend", choices=("cycle", "analytical", "functional"),
                   default="cycle")
    p.add_argument("--mode", choices=("fused", "coarse"), default="fused")
    p.add_argument("--requests", type=int, default=16)
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--arrival-rate", type=float, default=1e6,
                   help="requests per simulated second")
    p.add_argument("--prompt-min", type=int, default=4)
    p.add_argument("--prompt-max", type=int, default=16)
    p.add_argument("--decode-min", type=int, default=8)
    p.add_argument("--decode-max", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kv-budget", type=int, default=0,
                   help="override the KV token budget (0 = derive from "
                        "the capacity report); small values force "
                        "preemption")
    p.add_argument("--kv", choices=("slotted", "paged"), default="slotted",
                   help="KV discipline: per-slot worst-case reservations "
                        "or block-granular paging with prefix reuse")
    p.add_argument("--block-size", type=int, default=16,
                   help="tokens per KV block (paged mode)")
    p.add_argument("--kv-blocks", type=int, default=0,
                   help="paged pool size in blocks (0 = derive from the "
                        "capacity report or --kv-budget)")
    p.add_argument("--shared-prefix", type=int, default=0,
                   help="prepend one fixed system prompt of this many "
                        "tokens to every request")
    p.add_argument("--tp", type=int, default=1,
                   help="tensor-parallel shards per replica (1 = one "
                        "board)")
    p.add_argument("--replicas", type=int, default=1,
                   help="data-parallel replicas behind the router")
    p.add_argument("--interconnect", default="10GbE",
                   help="board-to-board link preset for --tp > 1 "
                        "(1GbE, 10GbE, Aurora-x4)")
    p.add_argument("--router",
                   choices=("round_robin", "least_loaded",
                            "prefix_affinity"),
                   default="round_robin",
                   help="replica routing policy for --replicas > 1")
    p.add_argument("--telemetry",
                   choices=("full", "windows", "summary", "sketch"),
                   default="full",
                   help="recording level: full materializes every "
                        "step, windows keeps columnar records that "
                        "expand to identical values, summary keeps "
                        "aggregates and exact percentiles only, "
                        "sketch replaces the exact latency sample "
                        "with a mergeable t-digest")
    p.add_argument("--per-request", action="store_true",
                   help="print the per-request table")
    p.add_argument("--window-stats", action="store_true",
                   help="print fast-forward window counts and the "
                        "break-reason histogram")
    p.add_argument("--record", default="",
                   help="append this run's metrics to the run store "
                        "under the given label (see 'repro obs')")
    p.add_argument("--runs-dir", default="benchmarks/runs",
                   help="run-store root for --record")
    p.add_argument("--trace-out", default="",
                   help="write the request lifecycle as Chrome "
                        "trace-event JSON (open in Perfetto or "
                        "chrome://tracing)")
    p.add_argument("--tenants", default="",
                   help="multi-tenant mix: comma-separated "
                        "name:class[:kv-quota-tokens] entries, e.g. "
                        "fg:interactive,bulk:batch:4096,bg:best_effort "
                        "(classes: interactive, batch, best_effort)")
    p.add_argument("--priority-mix", default="",
                   help="traffic shares aligned with --tenants, e.g. "
                        "0.3,0.5,0.2 (default: equal shares)")
    p.add_argument("--quota", type=int, default=0,
                   help="default per-tenant KV quota in tokens for "
                        "--tenants entries without their own (0 = "
                        "unlimited)")
    p.add_argument("--chaos", action="store_true",
                   help="inject a seeded fault schedule (--replicas "
                        ">= 2): replica crashes, hangs, and slowdowns; "
                        "killed requests are re-dispatched to healthy "
                        "replicas with capped exponential backoff and "
                        "degraded-mode admission sheds best-effort "
                        "traffic while capacity is down")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="fault-schedule seed; the same --fault-seed "
                        "and --seed replay the run bit-identically")
    p.add_argument("--retry-budget", type=int, default=3,
                   help="re-dispatch attempts per killed request "
                        "before it surfaces as failed")
    p.add_argument("--drain", action="store_true",
                   help="planned maintenance drain of replica 0 "
                        "mid-run: stop admitting, checkpoint in-flight "
                        "KV, and migrate it to healthy peers")
    p.add_argument("--domains", type=int, default=0,
                   help="partition replicas into this many contiguous "
                        "failure domains (racks) so generated faults "
                        "correlate within a domain; needs --chaos")
    p.add_argument("--hedge", type=float, default=0.0,
                   help="hedge delay in seconds: duplicate a request "
                        "onto a second healthy domain when its first "
                        "token is this late, first token wins "
                        "(0 disables; needs --telemetry full)")
    p.set_defaults(fn=cmd_serve_sim)

    p = sub.add_parser("bench-serve",
                       help="batched decode throughput vs batch size")
    common(p)
    p.add_argument("--mode", choices=("fused", "coarse"), default="fused")
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--lanes", type=int, default=0,
                   help="override DOT-engine lanes (0 = platform default)")
    p.add_argument("--kv-compare", action="store_true",
                   help="also replay a shared-prefix trace through the "
                        "engine with slotted and paged KV")
    p.add_argument("--kv-budget", type=int, default=0,
                   help="KV token budget for the comparison (0 = derive)")
    p.add_argument("--block-size", type=int, default=16,
                   help="tokens per KV block (paged side)")
    p.add_argument("--shared-prefix", type=int, default=128,
                   help="shared system-prompt tokens in the trace")
    p.add_argument("--requests", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scaling-sweep", action="store_true",
                   help="replay one trace over a TP in {1,2,4} x "
                        "replicas in {1,2} grid and print the "
                        "multi-accelerator scaling curve")
    p.add_argument("--interconnect", default="10GbE",
                   help="board-to-board link preset for the sweep")
    p.add_argument("--telemetry",
                   choices=("full", "windows", "summary", "sketch"),
                   default="full",
                   help="recording level for --scaling-sweep replays "
                        "(summary/sketch stream million-request grids)")
    p.set_defaults(fn=cmd_bench_serve, context=512)

    p = sub.add_parser("obs",
                       help="run store: list, show, and diff recorded "
                            "serving runs")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    def runs_dir(q):
        q.add_argument("--runs-dir", default="benchmarks/runs",
                       help="run-store root directory")

    q = obs_sub.add_parser("list", help="list recorded runs")
    runs_dir(q)
    q.set_defaults(fn=cmd_obs_list)

    q = obs_sub.add_parser("show", help="print one run record")
    q.add_argument("run", help="run id (label#seq), bare label (its "
                               "latest run), or path to a .jsonl file")
    runs_dir(q)
    q.set_defaults(fn=cmd_obs_show)

    q = obs_sub.add_parser("diff",
                           help="compare two runs; exits nonzero when "
                                "a metric regressed beyond the "
                                "threshold")
    q.add_argument("base", help="baseline run selector")
    q.add_argument("new", help="candidate run selector")
    q.add_argument("--threshold", type=float, default=0.05,
                   help="relative change beyond which a directional "
                        "metric is flagged (default 0.05)")
    q.add_argument("--baseline-window", type=int, default=1,
                   help="compare against the per-metric median of the "
                        "last K baseline runs instead of a single "
                        "record (default 1)")
    runs_dir(q)
    q.set_defaults(fn=cmd_obs_diff)

    p = sub.add_parser("generate", help="functional generation (tiny models)")
    common(p, model_default="tiny-test")
    p.add_argument("--prompt", default="Hello FPGA")
    p.add_argument("--tokens", type=int, default=16)
    p.add_argument("--temperature", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=7)
    # Tiny models need a group size that divides their hidden size.
    p.set_defaults(fn=cmd_generate, group_size=32)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # unreachable; keeps type checkers honest
