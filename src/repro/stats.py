"""Small shared statistics helpers."""

from __future__ import annotations

import heapq
from typing import Sequence

from .errors import SimulationError


def percentile_nearest_rank(values: Sequence[float],
                            percentile: float) -> float:
    """Nearest-rank percentile over ``values`` (no interpolation).

    The convention both perf reports use: rank ``round(p/100 * (n-1))``
    of the sorted sample, clamped to the last element.
    """
    if not values:
        raise SimulationError("no samples recorded")
    return percentile_of_sorted(sorted(values), percentile)


def percentile_of_sorted(ordered: Sequence[float],
                         percentile: float) -> float:
    """:func:`percentile_nearest_rank` over an already-sorted sample.

    Callers that query several percentiles of one sample sort once and
    index repeatedly instead of re-sorting per query.
    """
    if not 0 <= percentile <= 100:
        raise SimulationError(
            f"percentile must be in [0, 100], got {percentile}")
    if len(ordered) == 0:
        raise SimulationError("no samples recorded")
    index = min(len(ordered) - 1,
                int(round(percentile / 100 * (len(ordered) - 1))))
    return ordered[index]


def merge_sorted(sequences: Sequence[Sequence[float]]) -> list[float]:
    """K-way merge of already-sorted sequences into one sorted list.

    The streaming counterpart of ``sorted(chain(*sequences))``: each
    input is consumed in order through a heap of k cursors, so merging
    replica percentile caches costs O(n log k) instead of re-sorting
    the union from scratch.  Values equal across inputs keep a stable
    (input-index) order, which is invisible to percentile queries.
    """
    live = [s for s in sequences if len(s)]
    if not live:
        return []
    if len(live) == 1:
        return list(live[0])
    return list(heapq.merge(*live))


def percentile_of_runs(values: Sequence[float], counts: Sequence[int],
                       percentile: float) -> float:
    """Nearest-rank percentile over a run-length-encoded sample.

    ``values[i]`` occurs ``counts[i]`` times; ``values`` must be sorted
    ascending.  Returns exactly what :func:`percentile_of_sorted` would
    return over the expanded multiset — selection only indexes, so the
    run-length form changes memory, never the answer.
    """
    if not 0 <= percentile <= 100:
        raise SimulationError(
            f"percentile must be in [0, 100], got {percentile}")
    if len(values) != len(counts):
        raise SimulationError(
            f"{len(values)} run values for {len(counts)} counts")
    if len(values) == 0:
        raise SimulationError("no samples recorded")
    import numpy as np

    cnt = np.asarray(counts, dtype=np.int64)
    if (cnt <= 0).any():
        raise SimulationError("run counts must be positive")
    cum = np.cumsum(cnt)
    total = int(cum[-1])
    rank = min(total - 1, int(round(percentile / 100 * (total - 1))))
    return float(values[int(np.searchsorted(cum, rank, side="right"))])
