"""Small shared statistics helpers and percentile sketches."""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

from .errors import SimulationError


def percentile_nearest_rank(values: Sequence[float],
                            percentile: float) -> float:
    """Nearest-rank percentile over ``values`` (no interpolation).

    The convention both perf reports use: rank ``round(p/100 * (n-1))``
    of the sorted sample, clamped to the last element.
    """
    if not values:
        raise SimulationError("no samples recorded")
    return percentile_of_sorted(sorted(values), percentile)


def percentile_of_sorted(ordered: Sequence[float],
                         percentile: float) -> float:
    """:func:`percentile_nearest_rank` over an already-sorted sample.

    Callers that query several percentiles of one sample sort once and
    index repeatedly instead of re-sorting per query.
    """
    if not 0 <= percentile <= 100:
        raise SimulationError(
            f"percentile must be in [0, 100], got {percentile}")
    if len(ordered) == 0:
        raise SimulationError("no samples recorded")
    index = min(len(ordered) - 1,
                int(round(percentile / 100 * (len(ordered) - 1))))
    return ordered[index]


def merge_sorted(sequences: Sequence[Sequence[float]]) -> list[float]:
    """K-way merge of already-sorted sequences into one sorted list.

    The streaming counterpart of ``sorted(chain(*sequences))``: each
    input is consumed in order through a heap of k cursors, so merging
    replica percentile caches costs O(n log k) instead of re-sorting
    the union from scratch.  Values equal across inputs keep a stable
    (input-index) order, which is invisible to percentile queries.
    """
    live = [s for s in sequences if len(s)]
    if not live:
        return []
    if len(live) == 1:
        return list(live[0])
    return list(heapq.merge(*live))


def percentile_of_runs(values: Sequence[float], counts: Sequence[int],
                       percentile: float) -> float:
    """Nearest-rank percentile over a run-length-encoded sample.

    ``values[i]`` occurs ``counts[i]`` times; ``values`` must be sorted
    ascending.  Returns exactly what :func:`percentile_of_sorted` would
    return over the expanded multiset — selection only indexes, so the
    run-length form changes memory, never the answer.
    """
    if not 0 <= percentile <= 100:
        raise SimulationError(
            f"percentile must be in [0, 100], got {percentile}")
    if len(values) != len(counts):
        raise SimulationError(
            f"{len(values)} run values for {len(counts)} counts")
    if len(values) == 0:
        raise SimulationError("no samples recorded")
    import numpy as np

    cnt = np.asarray(counts, dtype=np.int64)
    if (cnt <= 0).any():
        raise SimulationError("run counts must be positive")
    cum = np.cumsum(cnt)
    total = int(cum[-1])
    rank = min(total - 1, int(round(percentile / 100 * (total - 1))))
    return float(values[int(np.searchsorted(cum, rank, side="right"))])


class TDigest:
    """Mergeable percentile sketch (a merging t-digest, k1 scale).

    Bounded-memory alternative to keeping the full latency sample: the
    ingested multiset is summarised by at most ~``compression`` weighted
    centroids, compacted so that no centroid spans more than one unit of
    the arcsine scale function ``k1(q) = compression/(2*pi) * asin(2q-1)``
    (Dunning & Ertl).  Centroids are narrow near the tails and wide in
    the middle, so extreme percentiles stay sharp.

    **Documented rank-error bound** — the contract the hypothesis tests
    pin: for any percentile ``p``, the returned value ``v`` sits within
    ``rank_error_bound`` (a fraction of the total weight, default
    ``4*pi/compression``) of rank ``p/100``::

        |true_rank(v) / n  -  p / 100|  <=  rank_error_bound

    where ``true_rank(v)`` is any rank position consistent with ``v`` in
    the sorted multiset (between ``#values < v`` and ``#values <= v``).
    One unit of k1-span never covers more than ``2*pi/compression`` of
    the cumulative distribution; interpolation across two neighbouring
    centroids doubles that, giving the factor 4.  The bound is preserved
    by :meth:`merge` (digests re-compact on merge), which is what lets
    cluster reports combine per-replica sketches.  ``percentile(0)`` and
    ``percentile(100)`` return the exact min/max, which are tracked
    outside the centroid list.
    """

    __slots__ = ("compression", "_means", "_weights", "_buf_vals",
                 "_buf_wts", "_buf_limit", "_n", "_min", "_max")

    def __init__(self, compression: int = 1000) -> None:
        if compression < 20:
            raise SimulationError(
                f"t-digest compression must be >= 20, got {compression}")
        self.compression = int(compression)
        self._means: list[float] = []
        self._weights: list[float] = []
        self._buf_vals: list[float] = []
        self._buf_wts: list[float] = []
        self._buf_limit = 4 * self.compression
        self._n = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- ingestion ---------------------------------------------------

    def add(self, value: float, weight: float = 1.0) -> None:
        """Add ``value`` with multiplicity ``weight``."""
        if weight <= 0:
            raise SimulationError(
                f"t-digest weight must be positive, got {weight}")
        self._buf_vals.append(float(value))
        self._buf_wts.append(float(weight))
        self._n += weight
        if value < self._min:
            self._min = float(value)
        if value > self._max:
            self._max = float(value)
        if len(self._buf_vals) >= self._buf_limit:
            self._flush()

    def add_run(self, values: Iterable[float],
                counts: Iterable[float]) -> None:
        """Add a run-length-encoded sample (``values[i]`` x ``counts[i]``)."""
        for value, count in zip(values, counts):
            self.add(value, count)

    def add_array(self, values, weight: float = 1.0) -> None:
        """Add every entry of ``values`` with multiplicity ``weight`` —
        the bulk path for a fast-forwarded window's latency array."""
        if weight <= 0:
            raise SimulationError(
                f"t-digest weight must be positive, got {weight}")
        n = len(values)
        if not n:
            return
        import numpy as np

        vals = np.asarray(values, dtype=np.float64)
        self._buf_vals.extend(vals.tolist())
        self._buf_wts.extend([float(weight)] * n)
        self._n += float(weight) * n
        lo = float(vals.min())
        hi = float(vals.max())
        if lo < self._min:
            self._min = lo
        if hi > self._max:
            self._max = hi
        if len(self._buf_vals) >= self._buf_limit:
            self._flush()

    def merge(self, other: "TDigest") -> None:
        """Absorb ``other`` into this digest (associative up to the bound).

        Merging keeps the documented rank-error bound, not bitwise
        equality: ``(a+b)+c`` and ``a+(b+c)`` may hold different
        centroids, but both answer every percentile query within
        ``rank_error_bound`` of the combined multiset.
        """
        if other._n == 0:
            return
        other._flush()
        self._buf_vals.extend(other._means)
        self._buf_wts.extend(other._weights)
        self._n += other._n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._flush()

    # -- queries -----------------------------------------------------

    @property
    def n(self) -> float:
        """Total ingested weight."""
        return self._n

    @property
    def rank_error_bound(self) -> float:
        """Documented worst-case rank error, as a fraction of ``n``."""
        return 4.0 * math.pi / self.compression

    @property
    def n_centroids(self) -> int:
        self._flush()
        return len(self._means)

    def percentile(self, percentile: float) -> float:
        """Approximate nearest-rank percentile (see class docstring)."""
        if not 0 <= percentile <= 100:
            raise SimulationError(
                f"percentile must be in [0, 100], got {percentile}")
        if self._n == 0:
            raise SimulationError("no samples recorded")
        if percentile == 0:
            return self._min
        if percentile == 100:
            return self._max
        self._flush()
        means, weights = self._means, self._weights
        if len(means) == 1:
            return means[0]
        target = percentile / 100.0 * self._n
        # Centroid i's mass occupies ranks (C_i, C_i + w_i].  Its core —
        # everything at least half a unit sample from either edge — is
        # answered by the mean itself (a heavy centroid built from a
        # weighted run is a point mass; interpolating across it would
        # smear rank error proportional to its weight).  Only the gaps
        # between neighbouring cores interpolate, clamping the ends to
        # the exact min/max.
        cum = 0.0
        prev_core_end = 0.0
        prev_mean = self._min
        for mean, weight in zip(means, weights):
            margin = min(weight / 2.0, 0.5)
            core_start = cum + margin
            core_end = cum + weight - margin
            if target < core_start:
                span = core_start - prev_core_end
                frac = (target - prev_core_end) / span if span > 0 else 1.0
                return prev_mean + frac * (mean - prev_mean)
            if target <= core_end:
                return mean
            cum += weight
            prev_core_end = core_end
            prev_mean = mean
        span = self._n - prev_core_end
        frac = (target - prev_core_end) / span if span > 0 else 1.0
        return prev_mean + min(frac, 1.0) * (self._max - prev_mean)

    # -- internals ---------------------------------------------------

    def _k(self, q: float) -> float:
        return self.compression / (2.0 * math.pi) \
            * math.asin(2.0 * min(max(q, 0.0), 1.0) - 1.0)

    def _flush(self) -> None:
        """Compact buffered points + centroids under the k1 constraint."""
        if not self._buf_vals:
            return
        import numpy as np

        vals = np.concatenate([
            np.asarray(self._means, dtype=np.float64),
            np.asarray(self._buf_vals, dtype=np.float64)])
        wts = np.concatenate([
            np.asarray(self._weights, dtype=np.float64),
            np.asarray(self._buf_wts, dtype=np.float64)])
        self._buf_vals.clear()
        self._buf_wts.clear()
        order = np.argsort(vals, kind="stable")
        vals = vals[order]
        wts = wts[order]
        total = float(wts.sum())
        means: list[float] = []
        weights: list[float] = []
        cum = 0.0              # weight closed out into `means` so far
        cur_w = float(wts[0])
        cur_sum = float(vals[0]) * cur_w
        k_floor = self._k(0.0)
        for value, weight in zip(vals[1:].tolist(), wts[1:].tolist()):
            if self._k((cum + cur_w + weight) / total) - k_floor <= 1.0:
                cur_w += weight
                cur_sum += value * weight
            else:
                means.append(cur_sum / cur_w)
                weights.append(cur_w)
                cum += cur_w
                cur_w = weight
                cur_sum = value * weight
                k_floor = self._k(cum / total)
        means.append(cur_sum / cur_w)
        weights.append(cur_w)
        self._means = means
        self._weights = weights
