"""Small shared statistics helpers."""

from __future__ import annotations

from typing import Sequence

from .errors import SimulationError


def percentile_nearest_rank(values: Sequence[float],
                            percentile: float) -> float:
    """Nearest-rank percentile over ``values`` (no interpolation).

    The convention both perf reports use: rank ``round(p/100 * (n-1))``
    of the sorted sample, clamped to the last element.
    """
    if not values:
        raise SimulationError("no samples recorded")
    return percentile_of_sorted(sorted(values), percentile)


def percentile_of_sorted(ordered: Sequence[float],
                         percentile: float) -> float:
    """:func:`percentile_nearest_rank` over an already-sorted sample.

    Callers that query several percentiles of one sample sort once and
    index repeatedly instead of re-sorting per query.
    """
    if not 0 <= percentile <= 100:
        raise SimulationError(
            f"percentile must be in [0, 100], got {percentile}")
    if not ordered:
        raise SimulationError("no samples recorded")
    index = min(len(ordered) - 1,
                int(round(percentile / 100 * (len(ordered) - 1))))
    return ordered[index]
