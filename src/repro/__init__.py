"""repro — reproduction of "Pushing up to the Limit of Memory Bandwidth and
Capacity Utilization for Efficient LLM Decoding on Embedded FPGA"
(Li et al., DATE 2025).

The package models the paper's KV260 LLM-decode accelerator end to end:

* quantization (AWQ-style W4A16 + KV8) — :mod:`repro.quant`
* the LLaMA-like model and a hardware-equivalent FP16 functional pipeline
  — :mod:`repro.model`, :mod:`repro.numerics`
* the bus-aligned data arrangement formats of Fig. 4 — :mod:`repro.packing`
* the DDR4/AXI memory system — :mod:`repro.memory`
* the accelerator itself: fused dataflow, cycle model, resources, power
  — :mod:`repro.core`
* the bare-metal runtime and end-to-end sessions — :mod:`repro.runtime`
* the execution engine: requests, backends, continuous batching
  — :mod:`repro.engine`
* every comparison row of Tables II/III — :mod:`repro.baselines`
* table/figure regeneration — :mod:`repro.report`

Quickstart::

    from repro import Accelerator, LLAMA2_7B, W4A16_KV8
    acc = Accelerator.analytical(LLAMA2_7B, W4A16_KV8)
    perf = acc.decode_perf(context=1023)
    print(perf.tokens_per_s, perf.utilization)
"""

from .config import (
    ALVEO_U280,
    CHATGLM_6B,
    GPT2_1_5B,
    KV260,
    LLAMA2_7B,
    MODEL_PRESETS,
    PLATFORM_PRESETS,
    SMALL_MODEL,
    TINY_MODEL,
    TINYLLAMA_1_1B,
    ModelConfig,
    PlatformConfig,
    QuantConfig,
    W4A16_KV8,
    W8A16_KV8,
    W16,
)
from .core.accelerator import Accelerator, DecodePerf
from .core.analytical import theoretical_tokens_per_s, utilization
from .core.cyclemodel import BatchCycles, CycleModel
from .engine import (
    AnalyticalBackend,
    ContinuousBatchScheduler,
    CycleModelBackend,
    FunctionalBackend,
    Request,
    ServeReport,
    synthetic_trace,
)
from .core.resources import estimate_resources
from .core.power import estimate_power
from .errors import (
    CapacityError,
    ConfigError,
    LayoutError,
    QuantizationError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from .model.quantized import QuantizedModel
from .model.llama import ReferenceModel
from .model.sampler import Sampler
from .model.tokenizer import ByteTokenizer
from .model.weights import quantize_model, random_weights
from .packing.memimage import build_memory_image
from .runtime.baremetal import BareMetalSystem
from .runtime.session import ChatSession, InferenceSession

__version__ = "1.0.0"

__all__ = [
    "ALVEO_U280",
    "CHATGLM_6B",
    "GPT2_1_5B",
    "KV260",
    "LLAMA2_7B",
    "MODEL_PRESETS",
    "PLATFORM_PRESETS",
    "SMALL_MODEL",
    "TINY_MODEL",
    "TINYLLAMA_1_1B",
    "ModelConfig",
    "PlatformConfig",
    "QuantConfig",
    "W4A16_KV8",
    "W8A16_KV8",
    "W16",
    "Accelerator",
    "AnalyticalBackend",
    "BatchCycles",
    "ContinuousBatchScheduler",
    "CycleModelBackend",
    "DecodePerf",
    "FunctionalBackend",
    "Request",
    "ServeReport",
    "synthetic_trace",
    "theoretical_tokens_per_s",
    "utilization",
    "CycleModel",
    "estimate_resources",
    "estimate_power",
    "CapacityError",
    "ConfigError",
    "LayoutError",
    "QuantizationError",
    "ReproError",
    "ScheduleError",
    "SimulationError",
    "QuantizedModel",
    "ReferenceModel",
    "Sampler",
    "ByteTokenizer",
    "quantize_model",
    "random_weights",
    "build_memory_image",
    "BareMetalSystem",
    "ChatSession",
    "InferenceSession",
]
