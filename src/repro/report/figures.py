"""Data-series generators for the paper's figures.

Each function returns a dict of named series (plus a rendered text block
where useful) so the benchmarks can assert on the numbers and the examples
can print them.
"""

from __future__ import annotations

from ..config import KV260, LLAMA2_7B, ModelConfig, QuantConfig, W4A16_KV8
from ..core.cyclemodel import CycleModel
from ..core.pipeline import AttentionPipeline
from ..memory.ddr import stream_efficiency
from ..packing.kv_layout import KVScaleZeroFifo
from ..packing.memimage import build_memory_image
from ..packing.weight_layout import (
    WeightLayoutSpec,
    interleaved_read_transactions,
    naive_read_transactions,
)
from ..units import MIB


def fig1_memory_breakdown(model: ModelConfig = LLAMA2_7B,
                          quant: QuantConfig = W4A16_KV8,
                          context: int = 1024) -> dict:
    """Fig. 1: weights / KV / free capacity of the 4 GB DDR."""
    image = build_memory_image(model, quant, context=context)
    dram = KV260.dram_bytes
    weights = image.weight_bytes()
    kv = image.kv_bytes()
    return {
        "weights_mib": weights / MIB,
        "kv_mib": kv / MIB,
        "free_mib": (dram - weights - kv) / MIB,
        "utilization": (weights + kv) / dram,
        "paper_weights_mib": 3556.0,
        "paper_kv_mib": 264.0,
        "paper_utilization": 0.933,
    }


def fig2_phase_breakdown(model: ModelConfig = LLAMA2_7B,
                         quant: QuantConfig = W4A16_KV8,
                         prompt_len: int = 64,
                         new_tokens: int = 64) -> dict:
    """Fig. 2: prefill (GEMM / TTFT) vs decode (GEMV / TOPT) structure."""
    cm = CycleModel(model, quant, KV260)
    prefill = cm.prefill_cycles(prompt_len)
    decode_steps = [cm.decode_step(prompt_len + i).cycles
                    for i in range(new_tokens)]
    freq = KV260.pl_freq_hz
    # Arithmetic-intensity contrast between the phases: in prefill every
    # streamed weight multiplies `prompt_len` activations, in decode one.
    return {
        "ttft_s": prefill / freq,
        "topt_s": sum(decode_steps) / len(decode_steps) / freq,
        "prefill_ops_per_weight": 2 * prompt_len,
        "decode_ops_per_weight": 2,
        "decode_tokens_per_s": freq / (sum(decode_steps) / len(decode_steps)),
    }


def fig3_pipeline_comparison(model: ModelConfig = LLAMA2_7B,
                             quant: QuantConfig = W4A16_KV8,
                             context: int = 512) -> dict:
    """Fig. 3: fused head-wise pipeline vs coarse-grained baseline."""
    pipe = AttentionPipeline(model, quant)
    fused = pipe.fused_schedule(context)
    coarse = pipe.coarse_schedule(context)
    return {
        "fused_cycles": fused.total_cycles,
        "coarse_cycles": coarse.total_cycles,
        "fused_exposed_misc": fused.exposed_misc_cycles,
        "coarse_exposed_misc": coarse.exposed_misc_cycles,
        "fused_all_hidden": fused.all_hidden(),
        "coarse_penalty": coarse.total_cycles / fused.total_cycles - 1.0,
        "fused_report": fused,
        "coarse_report": coarse,
    }


def fig4_arrangement_comparison(out_features: int = 4096,
                                in_features: int = 4096) -> dict:
    """Fig. 4A: interleaved vs naive-split weight fetch efficiency, and
    Fig. 4B: KV scale-zero FIFO vs per-pack writes."""
    from ..memory.ddr import DdrModel

    spec = WeightLayoutSpec()
    n_groups = out_features * (in_features // spec.group_size)

    inter = DdrModel()
    inter.run(interleaved_read_transactions(n_groups, spec=spec))
    naive = DdrModel()
    naive.run(naive_read_transactions(n_groups, spec=spec))

    # Fig. 4B: pack writes for 64 tokens of a 32-layer, 32-head model.
    tokens = 64
    fifo = KVScaleZeroFifo(num_layers=32, num_kv_heads=32)
    from ..quant.kv8 import KVQuantParams
    import numpy as np

    for _ in range(tokens):
        for layer in range(32):
            for head in range(32):
                for is_value in (False, True):
                    fifo.push(layer, head, is_value,
                              KVQuantParams(np.float16(1.0), 0))
    fifo.flush_all()  # end of generation: drain partial words too
    naive_writes = KVScaleZeroFifo.naive_write_count(32, 32, tokens)

    return {
        "interleaved_efficiency": inter.efficiency(),
        "naive_efficiency": naive.efficiency(),
        "efficiency_gain": inter.efficiency() / naive.efficiency(),
        "fifo_writes": fifo.fifo_write_count(),
        "naive_pack_writes": naive_writes,
        "write_reduction": naive_writes / max(1, fifo.fifo_write_count()),
        "fifo_buffer_bytes": fifo.buffer_bytes(),
    }


def fig5_component_throughput(context: int = 512) -> dict:
    """Fig. 5: are MCU, VPU, and SPU rate-matched at 300 MHz?"""
    from ..core.spu import SpuModel
    from ..core.vpu import VpuSpec

    vpu = VpuSpec()
    spu = SpuModel()
    m = LLAMA2_7B
    return {
        "mcu_bytes_per_cycle": KV260.bus_bytes_per_cycle,
        "vpu_weight_bytes_per_cycle": vpu.stream_bytes_per_cycle(4),
        "rate_matched": KV260.bus_bytes_per_cycle
        == vpu.stream_bytes_per_cycle(4),
        "vpu_lanes": vpu.lanes,
        "spu_softmax_cycles": spu.softmax_cycles(context + 1),
        "spu_rope_cycles": spu.rope_cycles(m.head_dim),
        "spu_rmsnorm_cycles": spu.rmsnorm_cycles(m.hidden_size),
        "spu_quant_cycles": spu.quant_cycles(m.head_dim),
    }


def ddr_burst_curve(burst_sizes=(4, 16, 64, 256, 1024, 4096, 16384, 65536,
                                 262144, 1048576)) -> dict:
    """Supporting series: DDR efficiency vs burst size (Sec. V-B's premise)."""
    scattered = {b: stream_efficiency(max(b * 64, 1 << 20), b,
                                      stride=b + 8192)
                 for b in burst_sizes}
    sequential = {b: stream_efficiency(max(b * 64, 1 << 20), b)
                  for b in burst_sizes}
    return {"scattered": scattered, "sequential": sequential}
