"""Renderers that regenerate the paper's tables and figure series."""

from .figures import (
    fig1_memory_breakdown,
    fig2_phase_breakdown,
    fig3_pipeline_comparison,
    fig4_arrangement_comparison,
    fig5_component_throughput,
)
from .cluster import replica_table, scaling_table
from .tables import format_table, table1_resources, table2_fpga, table3_edge

__all__ = [
    "fig1_memory_breakdown",
    "fig2_phase_breakdown",
    "fig3_pipeline_comparison",
    "fig4_arrangement_comparison",
    "fig5_component_throughput",
    "format_table",
    "replica_table",
    "scaling_table",
    "table1_resources",
    "table2_fpga",
    "table3_edge",
]
