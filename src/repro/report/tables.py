"""Text renderers for Tables I, II, and III, plus serving-stat tables.

Each function returns ``(rows, text)``: the raw row dictionaries for
programmatic checks and a formatted table string for humans.  Model-side
numbers come from the simulators; paper-side numbers are carried along for
side-by-side comparison.  :func:`window_stats_table` and
:func:`tenant_stats_table` render the serving reports' ``window_stats``
and ``tenant_stats`` sections — the CLI's ``serve-sim`` output and the
run store's ``obs show`` read through the same renderers.
"""

from __future__ import annotations

from ..baselines.entries import OUR_ENTRY, TABLE_II_ENTRIES, TABLE_III_ENTRIES
from ..config import KV260, LLAMA2_7B, W4A16_KV8
from ..core.cyclemodel import CycleModel
from ..core.power import estimate_power
from ..core.resources import PAPER_TABLE_I, estimate_resources


def format_table(headers: list[str], rows: list[list]) -> str:
    """Minimal fixed-width table formatter."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    def fmt(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths))
    line = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(headers), line] + [fmt(r) for r in cells])


def window_stats_table(stats: dict | None) -> tuple[list[dict], str]:
    """Fast-forward window counts and the break-reason histogram.

    ``stats`` is a report's ``window_stats`` dict (``n_windows`` /
    ``n_segments`` / ``folded_retirements`` / ``breaks``); rows are one
    dict per nonzero break reason with its share of all breaks.
    """
    if not stats or not stats.get("n_windows"):
        return [], "no fast-forward windows recorded"
    breaks = stats.get("breaks", {})
    total = sum(breaks.values())
    rows = [{"reason": reason, "count": count,
             "share": count / total if total else 0.0}
            for reason, count in breaks.items() if count]
    headers = ["Break reason", "Count", "Share"]
    body = [[r["reason"], r["count"], f"{r['share']:.1%}"] for r in rows]
    text = (f"{stats['n_windows']} windows, {stats['n_segments']} "
            f"segments, {stats['folded_retirements']} folded "
            f"retirements, {total} breaks\n")
    text += format_table(headers, body)
    return rows, text


def _ms(seconds) -> str:
    return "n/a" if seconds is None else f"{seconds * 1e3:.3f}"


def tenant_stats_table(stats: dict | None) -> tuple[list[dict], str]:
    """Per-tenant-class serving summary as one row per class.

    ``stats`` is a report's ``tenant_stats`` dict (class name ->
    summary); percentile cells render ``n/a`` when a class retired no
    requests.  Returned rows are the summaries with the class name
    folded in, so programmatic checks need no separate key.
    """
    if not stats:
        return [], "no tenant classes recorded"
    rows = [{"tenant": name, **summary}
            for name, summary in stats.items()]
    headers = ["Tenant", "Requests", "Rejected", "Goodput tok/s",
               "Mean TTFT ms", "p99 TTFT ms", "p99 e2e ms"]
    body = [[r["tenant"], r["n_requests"], r["n_rejected"],
             f"{r['goodput_tokens_per_s']:.3f}",
             _ms(r["mean_ttft_s"]), _ms(r["p99_ttft_s"]),
             _ms(r["p99_e2e_s"])] for r in rows]
    return rows, format_table(headers, body)


def table1_resources() -> tuple[list[dict], str]:
    """Table I: resource consumption breakdown, model vs paper."""
    report = estimate_resources()
    rows = []
    order = ["MemCtrl", "VPU", "SPU"]
    for name in order + ["Total"]:
        cost = report.total if name == "Total" else report.components[name]
        paper = PAPER_TABLE_I[name]
        rows.append({
            "component": name,
            "lut": round(cost.lut), "lut_paper": paper["lut"],
            "ff": round(cost.ff), "ff_paper": paper["ff"],
            "carry": round(cost.carry), "carry_paper": paper["carry"],
            "dsp": round(cost.dsp), "dsp_paper": paper["dsp"],
            "bram": round(cost.bram, 1), "bram_paper": paper["bram"],
            "uram": round(cost.uram), "uram_paper": paper["uram"],
        })
    util = report.utilization()
    headers = ["Component", "LUT (paper)", "FF (paper)", "CARRY (paper)",
               "DSP (paper)", "BRAM (paper)", "URAM (paper)"]
    body = [[r["component"],
             f"{r['lut']} ({r['lut_paper']})",
             f"{r['ff']} ({r['ff_paper']})",
             f"{r['carry']} ({r['carry_paper']})",
             f"{r['dsp']} ({r['dsp_paper']})",
             f"{r['bram']} ({r['bram_paper']})",
             f"{r['uram']} ({r['uram_paper']})"] for r in rows]
    text = format_table(headers, body)
    text += "\n\nDevice utilization: " + ", ".join(
        f"{k.upper()} {v:.0%}" for k, v in util.items())
    text += f"\nEstimated power: {estimate_power(report):.2f} W (paper: 6.57 W)"
    return rows, text


def _ours_row(context: int = 1023) -> dict:
    """Our row of Table II, measured by the cycle model."""
    cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)
    step = cm.decode_step(context, "fused")
    return {
        "name": "Ours (simulated)",
        "device": "KV260",
        "model": LLAMA2_7B.name,
        "bandwidth_gbps": KV260.bandwidth_gbps,
        "theoretical": OUR_ENTRY.theoretical_tokens_per_s,
        "tokens_per_s": step.tokens_per_s,
        "utilization": step.utilization,
    }


def table2_fpga(context: int = 1023) -> tuple[list[dict], str]:
    """Table II: comparison with existing FPGA research."""
    rows = []
    for e in TABLE_II_ENTRIES:
        rows.append({
            "name": e.name, "device": e.device, "model": e.model_name,
            "bandwidth_gbps": e.bandwidth_gbps,
            "theoretical": e.theoretical_tokens_per_s,
            "tokens_per_s": e.reported_tokens_per_s,
            "utilization": e.utilization,
            "paper_utilization": e.reported_utilization,
        })
    ours = _ours_row(context)
    ours["paper_utilization"] = OUR_ENTRY.reported_utilization
    rows.append(ours)
    headers = ["Work", "Device", "Model", "GB/s", "token/s^1", "token/s^2",
               "Util."]
    body = [[r["name"], r["device"], r["model"],
             f"{r['bandwidth_gbps']:g}",
             f"{r['theoretical']:.1f}", f"{r['tokens_per_s']:.2f}",
             f"{r['utilization']:.1%}"] for r in rows]
    return rows, format_table(headers, body)


def table3_edge(context: int = 1023) -> tuple[list[dict], str]:
    """Table III: comparison with embedded CPU/GPUs."""
    rows = []
    for e in TABLE_III_ENTRIES:
        rows.append({
            "name": e.name, "device": e.device, "framework": e.framework,
            "bandwidth_gbps": e.bandwidth_gbps,
            "theoretical": e.theoretical_tokens_per_s,
            "tokens_per_s": e.reported_tokens_per_s,
            "utilization": e.utilization,
        })
    ours = _ours_row(context)
    ours["framework"] = "ours"
    rows.append(ours)
    headers = ["Device", "GB/s", "Framework", "token/s^1", "token/s^2",
               "Util."]
    body = [[r["device"], f"{r['bandwidth_gbps']:g}",
             r.get("framework", ""),
             f"{r['theoretical']:.1f}", f"{r['tokens_per_s']:.2f}",
             f"{r['utilization']:.1%}"] for r in rows]
    return rows, format_table(headers, body)
