"""Text renderers for multi-accelerator scaling results.

Same conventions as :mod:`repro.report.tables`: each renderer returns
``(rows, text)`` — raw row dicts for programmatic checks plus a
formatted table, with an ASCII speedup bar per grid point (the offline
stand-in for a scaling plot).
"""

from __future__ import annotations

from ..errors import ReproError
from .tables import format_table


def scaling_table(points) -> tuple[list[dict], str]:
    """Render a TP x DP scaling sweep (:mod:`repro.cluster.sweep`)."""
    if not points:
        raise ReproError("scaling table needs at least one point")
    rows = []
    for p in points:
        rows.append({
            "tp": p.tp,
            "replicas": p.replicas,
            "boards": p.n_boards,
            "aggregate_tokens_per_s": p.aggregate_tokens_per_s,
            "speedup": p.speedup,
            "efficiency": p.efficiency,
            "comm_step_ms": p.comm_step_time_s * 1e3,
            "kv_budget_tokens": p.kv_budget_tokens,
        })
    headers = ["tp", "dp", "boards", "agg tok/s", "speedup", "eff",
               "comm/step", "KV budget", ""]
    peak = max(r["speedup"] for r in rows)
    width = 24
    body = []
    for r in rows:
        bar = "#" * max(1, round(r["speedup"] / peak * width))
        body.append([
            str(r["tp"]), str(r["replicas"]), str(r["boards"]),
            f"{r['aggregate_tokens_per_s']:9.3f}",
            f"{r['speedup']:6.2f}x",
            f"{r['efficiency']:5.1%}",
            f"{r['comm_step_ms']:7.3f} ms",
            f"{r['kv_budget_tokens']:6d} tok",
            bar,
        ])
    return rows, format_table(headers, body)


def replica_table(report) -> tuple[list[dict], str]:
    """Per-replica breakdown of a :class:`ClusterServeReport`."""
    if not report.replica_reports:
        raise ReproError("cluster report has no replicas")
    rows = []
    for idx, rep in enumerate(report.replica_reports):
        # n_requests (not len(results)) so summary-level streamed
        # replica reports — which keep no per-request results — render.
        served = rep.n_requests
        rows.append({
            "replica": idx,
            "requests": served,
            "new_tokens": rep.total_new_tokens,
            "time_s": rep.total_time_s,
            "tokens_per_s": (rep.aggregate_tokens_per_s
                             if rep.total_time_s > 0 and served else 0.0),
            "mean_ttft_s": rep.mean_ttft_s if served else 0.0,
            "preemptions": rep.preemptions,
        })
    headers = ["replica", "requests", "new tokens", "time", "tok/s",
               "mean TTFT", "preempt"]
    body = [[str(r["replica"]), str(r["requests"]), str(r["new_tokens"]),
             f"{r['time_s']:8.3f} s", f"{r['tokens_per_s']:9.3f}",
             f"{r['mean_ttft_s'] * 1e3:8.3f} ms", str(r["preemptions"])]
            for r in rows]
    return rows, format_table(headers, body)
