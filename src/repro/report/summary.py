"""Whole-reproduction summary: every headline number in one report.

``reproduction_summary()`` runs the capacity, timing, resource, power, and
pipeline models and returns a structured record plus a rendered markdown
block — the programmatic source for EXPERIMENTS.md's headline table and a
one-call health check that the reproduction still holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import KV260, LLAMA2_7B, ModelConfig, PlatformConfig, QuantConfig, W4A16_KV8
from ..core.analytical import theoretical_tokens_per_s
from ..core.cyclemodel import CycleModel
from ..core.pipeline import AttentionPipeline
from ..core.power import estimate_power
from ..core.resources import estimate_resources
from ..packing.memimage import build_memory_image
from ..runtime.baremetal import BareMetalSystem


@dataclass(frozen=True)
class HeadlineNumbers:
    """The reproduction contract, as one record."""

    theoretical_tokens_per_s: float
    decode_tokens_per_s: float
    utilization: float
    weights_mib: float
    kv_mib: float
    capacity_utilization: float
    linux_fits: bool
    exposed_misc_cycles: float
    lut: float
    dsp: float
    power_w: float

    def matches_paper(self) -> dict[str, bool]:
        """Per-claim pass/fail against the paper's published values."""
        return {
            "theoretical 5.8 token/s":
                abs(self.theoretical_tokens_per_s - 5.8) < 0.1,
            "decode ~4.9 token/s":
                abs(self.decode_tokens_per_s - 4.9) < 0.2,
            "utilization ~84.5%": abs(self.utilization - 0.845) < 0.02,
            "weights ~3556 MB": abs(self.weights_mib - 3556) < 40,
            "KV cache 264 MB": abs(self.kv_mib - 264) < 1,
            "capacity ~93.3%":
                abs(self.capacity_utilization - 0.933) < 0.01,
            "bare-metal required": not self.linux_fits,
            "no cycle penalties": self.exposed_misc_cycles == 0,
            "fits at ~2/3 LUT": self.lut < 0.70 * 117_120,
            "291 DSP": abs(self.dsp - 291) < 3,
            "6.57 W": abs(self.power_w - 6.57) < 0.15,
        }

    def all_match(self) -> bool:
        return all(self.matches_paper().values())


def reproduction_summary(model: ModelConfig = LLAMA2_7B,
                         quant: QuantConfig = W4A16_KV8,
                         platform: PlatformConfig = KV260,
                         context: int = 1023) -> HeadlineNumbers:
    """Run every model once and collect the headline record."""
    cm = CycleModel(model, quant, platform)
    step = cm.decode_step(context)
    image = build_memory_image(model, quant, context=model.max_context)
    system = BareMetalSystem(platform)
    pipe = AttentionPipeline(model, quant)
    resources = estimate_resources(axi_ports=platform.axi_ports)
    return HeadlineNumbers(
        theoretical_tokens_per_s=theoretical_tokens_per_s(
            model, platform, quant.weight_bits),
        decode_tokens_per_s=step.tokens_per_s,
        utilization=step.utilization,
        weights_mib=image.weight_mib(),
        kv_mib=image.kv_mib(),
        capacity_utilization=image.capacity_utilization(platform.dram_bytes),
        linux_fits=system.linux_would_fit(model, quant, model.max_context),
        exposed_misc_cycles=pipe.fused_schedule(context).exposed_misc_cycles,
        lut=resources.total.lut,
        dsp=resources.total.dsp,
        power_w=estimate_power(resources, platform.pl_freq_hz),
    )


def render_summary(numbers: HeadlineNumbers) -> str:
    """Markdown block for EXPERIMENTS.md / the CLI."""
    checks = numbers.matches_paper()
    lines = [
        "| Claim | Measured | Matches paper |",
        "|---|---|---|",
        f"| theoretical ceiling | {numbers.theoretical_tokens_per_s:.2f} "
        f"token/s | {checks['theoretical 5.8 token/s']} |",
        f"| decode speed | {numbers.decode_tokens_per_s:.2f} token/s | "
        f"{checks['decode ~4.9 token/s']} |",
        f"| bandwidth utilization | {numbers.utilization:.1%} | "
        f"{checks['utilization ~84.5%']} |",
        f"| weights | {numbers.weights_mib:.1f} MiB | "
        f"{checks['weights ~3556 MB']} |",
        f"| KV cache | {numbers.kv_mib:.1f} MiB | "
        f"{checks['KV cache 264 MB']} |",
        f"| capacity | {numbers.capacity_utilization:.1%} | "
        f"{checks['capacity ~93.3%']} |",
        f"| bare-metal required | {not numbers.linux_fits} | "
        f"{checks['bare-metal required']} |",
        f"| exposed misc cycles | {numbers.exposed_misc_cycles:.0f} | "
        f"{checks['no cycle penalties']} |",
        f"| LUT / DSP | {numbers.lut:.0f} / {numbers.dsp:.0f} | "
        f"{checks['fits at ~2/3 LUT'] and checks['291 DSP']} |",
        f"| power | {numbers.power_w:.2f} W | {checks['6.57 W']} |",
    ]
    return "\n".join(lines)
