"""ASCII chart helpers for examples and benchmark artifacts.

No plotting stack is available offline, so the figure-style outputs
(memory breakdown bars, utilization comparisons, efficiency curves) are
rendered as fixed-width text: horizontal bar charts and sparkline-ish
series tables.
"""

from __future__ import annotations

from ..errors import ReproError

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(items: dict[str, float], width: int = 48,
              fmt: str = "{:.2f}") -> str:
    """Horizontal bar chart: one labelled row per item."""
    if not items:
        raise ReproError("bar chart needs at least one item")
    peak = max(items.values())
    if peak <= 0:
        raise ReproError("bar chart needs a positive maximum")
    label_w = max(len(k) for k in items)
    rows = []
    for label, value in items.items():
        filled = value / peak * width
        whole = int(filled)
        frac = int((filled - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[frac] if frac else "")
        rows.append(f"{label:<{label_w}} |{bar:<{width}}| "
                    + fmt.format(value))
    return "\n".join(rows)


def series_table(x_label: str, y_label: str,
                 series: dict[float, float], width: int = 40,
                 x_fmt: str = "{:g}", y_fmt: str = "{:.3f}") -> str:
    """An x/y table with inline bars — a text stand-in for a line plot."""
    if not series:
        raise ReproError("series table needs at least one point")
    peak = max(series.values())
    if peak <= 0:
        raise ReproError("series needs a positive maximum")
    rows = [f"{x_label:>10}  {y_label}"]
    for x, y in series.items():
        bar = "█" * max(1, int(y / peak * width))
        rows.append(f"{x_fmt.format(x):>10}  {bar} " + y_fmt.format(y))
    return "\n".join(rows)


def stacked_capacity_bar(segments: dict[str, float], total: float,
                         width: int = 64) -> str:
    """One stacked bar (the Fig. 1 DDR occupancy graphic).

    ``segments`` are sized parts of ``total``; the remainder renders as
    free space.
    """
    if total <= 0:
        raise ReproError("total must be positive")
    used = sum(segments.values())
    if used > total * 1.001:
        raise ReproError("segments exceed the total")
    glyphs = "▓▒░"
    bar = ""
    legend = []
    for i, (name, size) in enumerate(segments.items()):
        n = round(size / total * width)
        glyph = glyphs[i % len(glyphs)]
        bar += glyph * n
        legend.append(f"{glyph} {name} ({size / total:.1%})")
    bar += "." * max(0, width - len(bar))
    legend.append(f". free ({(total - used) / total:.1%})")
    return f"[{bar[:width]}]\n" + "   ".join(legend)
