"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A model, quantization, or platform configuration is invalid."""


class QuantizationError(ReproError):
    """Quantization parameters or inputs are malformed."""


class LayoutError(ReproError):
    """A packed data layout is inconsistent (bad sizes, misaligned bus words)."""


class CapacityError(ReproError):
    """A memory image or allocation does not fit the platform's DRAM."""


class ScheduleError(ReproError):
    """The pipeline scheduler was given an inconsistent op sequence."""


class SimulationError(ReproError):
    """The cycle or functional simulation reached an invalid state."""
