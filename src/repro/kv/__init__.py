"""repro.kv — block-granular KV-cache management.

The paged counterpart of :class:`repro.model.kvcache.SlottedKVCache`:
a refcounted :class:`BlockPool`, a content-addressed :class:`PrefixCache`
over full blocks, and the engine-facing :class:`PagedKVCache` whose
:class:`PagedSequenceView` plugs into the functional pipeline wherever a
``QuantizedKVCache`` is expected.

Quickstart::

    from repro.config import TINY_MODEL
    from repro.kv import PagedKVCache

    kv = PagedKVCache(TINY_MODEL, n_blocks=32, block_size=16)
    a = kv.allocate(tokens=prompt)          # prefix-matched against cache
    skip = kv.cached_length(a)              # tokens whose prefill to skip
    ...                                     # prefill via kv.view(a)
    kv.commit_prefix(a, prompt)             # publish blocks for reuse
"""

from .blockpool import BlockPool
from .paged import (
    PagedKVCache,
    PagedSequenceView,
    blocks_for_budget,
    blocks_for_tokens,
)
from .prefix import PrefixCache, chain_hashes

__all__ = [
    "BlockPool",
    "PagedKVCache",
    "PagedSequenceView",
    "PrefixCache",
    "blocks_for_budget",
    "blocks_for_tokens",
    "chain_hashes",
]
