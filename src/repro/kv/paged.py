"""Paged KV cache: block tables, copy-on-write, and prefix reuse.

The vLLM/PagedAttention recipe carried to this repo's KV8 storage: a
sequence no longer reserves one contiguous max-length region; it holds a
*block table* of fixed-size physical blocks claimed on demand from a
shared :class:`repro.kv.blockpool.BlockPool`.  Admission is then gated
by free blocks rather than worst-case token counts, and identical
prompts map to identical physical blocks via the
:class:`repro.kv.prefix.PrefixCache`, skipping their prefill entirely.

:class:`PagedKVCache` is the engine-facing allocator (sequence ids in,
block accounting out) and works in two modes: with ``store_data=True``
it backs the functional pipeline through :class:`PagedSequenceView`
(the same interface as :class:`repro.model.kvcache.QuantizedKVCache`);
with ``store_data=False`` it is the accounting twin the timing-only
backends use, so all three engine backends make identical admission,
preemption, and prefix-reuse decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..config import ModelConfig
from ..errors import CapacityError, SimulationError
from ..quant.kv8 import kv_dequantize_batch, kv_quantize_batch
from .blockpool import BlockPool
from .prefix import PrefixCache, chain_hashes


def blocks_for_tokens(n_tokens: int, block_size: int) -> int:
    """Blocks needed to hold ``n_tokens`` positions."""
    return -(-n_tokens // block_size)


def blocks_for_budget(budget_tokens: int, block_size: int) -> int:
    """Pool size granting the same DRAM bytes as a KV *token* budget.

    Rounds down — a partial block would overcommit the budget — and
    refuses budgets below one block outright, so every slotted-vs-paged
    comparison built on this rule competes over equal storage (a silent
    one-block floor would hand the paged side extra DRAM).
    """
    if budget_tokens < block_size:
        raise SimulationError(
            f"KV budget of {budget_tokens} tokens is smaller than one "
            f"{block_size}-token block")
    return budget_tokens // block_size


@dataclass
class _Sequence:
    """Per-sequence state: the block table and its occupancy."""

    table: list[int] = field(default_factory=list)
    #: token positions written (or accounted) so far.
    length: int = 0
    #: prefix tokens inherited from the prefix cache at allocation.
    cached_length: int = 0
    #: memoized ``append_needs_block``: ((length, pool epoch), answer).
    needs_block_cache: tuple[tuple[int, int], bool] | None = None


class PagedKVCache:
    """Block-granular multi-sequence KV cache with shared-prefix reuse."""

    def __init__(self, config: ModelConfig, n_blocks: int,
                 block_size: int = 16, kv_bits: int = 8,
                 store_data: bool = True,
                 prefix_sharing: bool = True) -> None:
        self.config = config
        self.kv_bits = kv_bits
        self.pool = BlockPool(config, n_blocks, block_size,
                              store_data=store_data)
        self.prefix = PrefixCache(self.pool)
        self.prefix_sharing = prefix_sharing
        self.store_data = store_data
        self._seqs: dict[int, _Sequence] = {}
        self._next_seq = 0
        self.prefix_reused_tokens = 0
        self.cow_copies = 0

    # -- capacity ----------------------------------------------------------

    @property
    def block_size(self) -> int:
        return self.pool.block_size

    @property
    def n_total_blocks(self) -> int:
        return self.pool.n_blocks

    @property
    def n_free_blocks(self) -> int:
        return self.pool.n_free

    @property
    def n_reclaimable_blocks(self) -> int:
        """Prefix-cached blocks no live sequence holds (evictable)."""
        return self.prefix.n_reclaimable

    @property
    def n_available_blocks(self) -> int:
        """Blocks an admission could claim: free plus evictable."""
        return self.pool.n_free + self.prefix.n_reclaimable

    @property
    def n_sequences(self) -> int:
        return len(self._seqs)

    # -- sequence lifecycle ------------------------------------------------

    def allocate(self, tokens: Sequence[int] | None = None) -> int:
        """Open a sequence; with ``tokens``, reuse any cached prefix.

        Sharing covers whole blocks only and never the final prompt token
        (its forward pass produces the logits the first sample needs), so
        ``cached_length(seq) <= len(tokens) - 1`` always holds.
        """
        seq = _Sequence()
        if tokens is not None and self.prefix_sharing and len(tokens) > 1:
            shareable = (len(tokens) - 1) // self.block_size
            hashes = chain_hashes(tokens, self.block_size)[:shareable]
            matched = self.prefix.match(hashes)
            for bid in matched:
                self.pool.incref(bid)
            seq.table = list(matched)
            seq.length = seq.cached_length = \
                len(matched) * self.block_size
            self.prefix_reused_tokens += seq.cached_length
        seq_id = self._next_seq
        self._next_seq += 1
        self._seqs[seq_id] = seq
        return seq_id

    def free(self, seq_id: int) -> None:
        """Close a sequence; its private blocks return to the pool while
        prefix-cached ones stay resident for future reuse."""
        seq = self._get(seq_id)
        for bid in seq.table:
            self.pool.decref(bid)
        del self._seqs[seq_id]

    def fork(self, seq_id: int) -> int:
        """Clone a sequence copy-on-write: both share every block until
        one of them appends into a shared (partial) block."""
        seq = self._get(seq_id)
        for bid in seq.table:
            self.pool.incref(bid)
        new_id = self._next_seq
        self._next_seq += 1
        self._seqs[new_id] = _Sequence(table=list(seq.table),
                                       length=seq.length,
                                       cached_length=seq.cached_length)
        return new_id

    # -- occupancy ---------------------------------------------------------

    def length(self, seq_id: int) -> int:
        return self._get(seq_id).length

    def cached_length(self, seq_id: int) -> int:
        return self._get(seq_id).cached_length

    def block_table(self, seq_id: int) -> tuple[int, ...]:
        return tuple(self._get(seq_id).table)

    def total_tokens(self) -> int:
        """Logical cached tokens (shared prefixes counted per sequence)."""
        return sum(s.length for s in self._seqs.values())

    def resident_tokens(self) -> int:
        """Physical cached tokens: shared blocks counted once; includes
        prefix-cache-only blocks kept warm for reuse."""
        occupancy: dict[int, int] = {}
        for seq in self._seqs.values():
            for idx, bid in enumerate(seq.table):
                occ = min(seq.length - idx * self.block_size,
                          self.block_size)
                occupancy[bid] = max(occupancy.get(bid, 0), occ)
        for bid in self.prefix.entries().values():
            occupancy.setdefault(bid, self.block_size)
        return sum(occupancy.values())

    def payload_bytes(self) -> int:
        """Stored KV code bytes across all resident blocks."""
        return (2 * self.config.num_layers * self.resident_tokens()
                * self.config.kv_dim * self.kv_bits // 8)

    def sequence_payload_bytes(self, seq_id: int) -> int:
        """KV code bytes a checkpoint of one sequence ships: its full
        logical length.  A migration target holds none of this pool's
        blocks, so prefix-shared residency earns no transfer discount."""
        return (2 * self.config.num_layers * self.length(seq_id)
                * self.config.kv_dim * self.kv_bits // 8)

    # -- admission accounting ---------------------------------------------

    def admission_plan(self, tokens: Sequence[int]) -> tuple[int, int]:
        """``(fresh_blocks_needed, blocks_claimable)`` for admitting
        ``tokens`` plus one decode token.

        ``fresh_blocks_needed`` is what must come out of the pool after
        prefix reuse.  ``blocks_claimable`` is the free-plus-evictable
        supply *minus* the matched prefix blocks that are themselves only
        held by the cache — admission pins those, so counting them as
        evictable would overcommit the pool.
        """
        matched: list[int] = []
        if self.prefix_sharing and len(tokens) > 1:
            shareable = (len(tokens) - 1) // self.block_size
            matched = self.prefix.peek(
                chain_hashes(tokens, self.block_size)[:shareable])
        fresh = blocks_for_tokens(len(tokens) + 1, self.block_size) \
            - len(matched)
        pinned = sum(1 for bid in matched if self.pool.refcount(bid) == 1)
        return fresh, self.n_available_blocks - pinned

    def blocks_needed(self, tokens: Sequence[int]) -> int:
        """Fresh blocks a new sequence would claim to hold ``tokens`` plus
        one decode token, after prefix reuse."""
        return self.admission_plan(tokens)[0]

    def append_needs_block(self, seq_id: int) -> bool:
        """Whether the next one-token append must claim a fresh block
        (frontier crossing, or copy-on-write of a shared block).

        The answer is a function of the sequence's length and the
        frontier block's refcount, so it is memoized against (length,
        pool mutation epoch) — the scheduler asks several times per
        step, and the block-table walk only reruns after an append or a
        refcount change somewhere in the pool.
        """
        seq = self._get(seq_id)
        tag = (seq.length, self.pool.mutation_epoch)
        if seq.needs_block_cache is not None \
                and seq.needs_block_cache[0] == tag:
            return seq.needs_block_cache[1]
        idx = seq.length // self.block_size
        if idx >= len(seq.table):
            answer = True
        else:
            answer = self.pool.refcount(seq.table[idx]) > 1
        seq.needs_block_cache = (tag, answer)
        return answer

    def window_advance_cap(self, seq_ids: Sequence[int], n: int) -> int:
        """Largest ``k <= n`` such that advancing every listed sequence
        by ``k`` tokens claims only *free* pool blocks.

        This is the paged accounting behind multi-segment fast-forward
        windows: block-frontier crossings are pure arithmetic on context
        length as long as (a) no member's next append copies-on-write a
        shared block (the copy's cost depends on eviction state, so the
        window must break and let the eager step resolve it), and (b)
        the combined fresh-block demand fits in ``pool.n_free`` without
        touching the evictable prefix supply — guaranteeing the window
        triggers no eviction, no CapacityError, and no preemption the
        eager loop would not also have skipped.
        """
        if n <= 0:
            return 0
        bs = self.block_size
        frontiers: list[tuple[int, int]] = []
        for seq_id in seq_ids:
            seq = self._get(seq_id)
            idx = seq.length // bs
            if idx < len(seq.table) \
                    and self.pool.refcount(seq.table[idx]) > 1:
                return 0
            frontiers.append((seq.length, len(seq.table)))
        free = self.pool.n_free

        def fresh(k: int) -> int:
            return sum(max(0, blocks_for_tokens(length + k, bs) - have)
                       for length, have in frontiers)

        if fresh(n) <= free:
            return n
        lo, hi = 0, n  # invariant: fresh(lo) <= free < fresh(hi)
        if fresh(0) > free:
            return 0
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if fresh(mid) <= free:
                lo = mid
            else:
                hi = mid
        return lo

    # -- append paths ------------------------------------------------------

    def advance(self, seq_id: int, n: int = 1) -> None:
        """Account ``n`` appended tokens (timing backends: no data).

        O(blocks touched), not O(n): inside a block the write frontier
        needs no pool work (the first append COWs a shared partial
        block or claims a fresh one; later appends land in the now-
        private block), so the walk visits one position per block
        boundary and jumps over the rest.  Pool mutations happen in the
        identical order as ``n`` single-token appends.
        """
        seq = self._get(seq_id)
        overflow = seq.length + n > self.config.max_context
        target = min(seq.length + n, self.config.max_context)
        while seq.length < target:
            self._writable_block(seq, seq.length)
            boundary = (seq.length // self.block_size + 1) * self.block_size
            seq.length = min(target, boundary)
        if overflow:
            raise SimulationError(
                f"sequence {seq_id} exceeds context "
                f"{self.config.max_context}")

    def view(self, seq_id: int) -> "PagedSequenceView":
        """A QuantizedKVCache-compatible view of one sequence."""
        self._get(seq_id)
        if not self.store_data:
            raise SimulationError(
                "accounting-only paged cache has no data views")
        return PagedSequenceView(self, seq_id)

    # -- prefix registration ----------------------------------------------

    def commit_prefix(self, seq_id: int, tokens: Sequence[int]) -> None:
        """Publish this sequence's full blocks of ``tokens`` for reuse.

        Called once prefill has materialized the K/V (or, for accounting
        caches, once the positions are charged).  Full blocks only;
        re-registering content that is already cached keeps the incumbent
        physical block.
        """
        if not self.prefix_sharing:
            return
        seq = self._get(seq_id)
        covered = min(len(tokens), seq.length)
        for i, h in enumerate(chain_hashes(tokens[:covered],
                                           self.block_size)):
            self.prefix.register(h, seq.table[i])

    # -- batched fetch accounting ------------------------------------------

    def fetch_plan(self, seq_ids: Sequence[int],
                   contexts: Sequence[int]) -> list[int]:
        """Per-sequence KV tokens a batched step actually streams.

        Walks the batch in order and counts each physical block once: a
        shared prefix is charged to the first sequence that reads it and
        free for the rest — the DRAM saving of paging plus prefix reuse.
        """
        if len(seq_ids) != len(contexts):
            raise SimulationError("fetch plan needs one context per seq")
        seen: set[int] = set()
        plan: list[int] = []
        for seq_id, ctx in zip(seq_ids, contexts):
            seq = self._get(seq_id)
            if ctx > seq.length:
                raise SimulationError(
                    f"sequence {seq_id}: context {ctx} beyond its "
                    f"{seq.length} cached tokens")
            fetched = 0
            for idx in range(blocks_for_tokens(ctx, self.block_size)):
                bid = seq.table[idx]
                if bid in seen:
                    continue
                seen.add(bid)
                fetched += min(ctx - idx * self.block_size, self.block_size)
            plan.append(fetched)
        return plan

    # -- integrity ---------------------------------------------------------

    def audit(self) -> None:
        """Verify refcount and occupancy invariants; raises on corruption.

        Cheap enough for tests to call after every operation: every block
        reference in a table or the prefix cache is counted, and the per-
        block refcounts must match exactly (no leaks, no double frees).
        """
        expected: dict[int, int] = {}
        for seq_id, seq in self._seqs.items():
            if not 0 <= seq.cached_length <= seq.length:
                raise SimulationError(
                    f"sequence {seq_id}: cached {seq.cached_length} "
                    f"outside [0, {seq.length}]")
            if len(seq.table) < blocks_for_tokens(seq.length,
                                                  self.block_size):
                raise SimulationError(
                    f"sequence {seq_id}: table too short for "
                    f"{seq.length} tokens")
            for bid in seq.table:
                expected[bid] = expected.get(bid, 0) + 1
        for h, bid in self.prefix.entries().items():
            expected[bid] = expected.get(bid, 0) + 1
            if self.pool.content_hash(bid) != h:
                raise SimulationError(
                    f"block {bid}: content tag "
                    f"{self.pool.content_hash(bid)} does not match its "
                    f"prefix-cache entry {h}")
        for bid in range(self.pool.n_blocks):
            if self.pool.refcount(bid) != expected.get(bid, 0):
                raise SimulationError(
                    f"block {bid}: refcount {self.pool.refcount(bid)} != "
                    f"{expected.get(bid, 0)} references")

    # -- internals ---------------------------------------------------------

    def _get(self, seq_id: int) -> _Sequence:
        seq = self._seqs.get(seq_id)
        if seq is None:
            raise SimulationError(f"sequence {seq_id} is not allocated")
        return seq

    def _take_block(self) -> int:
        """Claim a block, evicting cold prefix-cache entries if needed."""
        while True:
            try:
                return self.pool.allocate()
            except CapacityError:
                if self.prefix.evict_one() is None:
                    raise

    def _writable_block(self, seq: _Sequence, position: int) -> int:
        """Block id that may be written at ``position`` (allocate/COW)."""
        idx = position // self.block_size
        if idx > len(seq.table):
            raise SimulationError(
                f"paged KV append at position {position} is not "
                f"contiguous with {seq.length} cached tokens")
        if idx == len(seq.table):
            seq.table.append(self._take_block())
            return seq.table[idx]
        bid = seq.table[idx]
        if self.pool.refcount(bid) > 1:
            new_bid = self._take_block()
            self.pool.copy_data(bid, new_bid)
            self.pool.decref(bid)
            seq.table[idx] = new_bid
            self.cow_copies += 1
            return new_bid
        return bid


class PagedSequenceView:
    """One sequence's cache, usable wherever a QuantizedKVCache is.

    Append/read semantics mirror :class:`QuantizedKVCache` exactly —
    per-head KV8 quantize on write, dequantize on read, reads gated on
    written scale-zero params — with the storage indirected through the
    sequence's block table.
    """

    def __init__(self, cache: PagedKVCache, seq_id: int) -> None:
        self.cache = cache
        self.seq_id = seq_id
        self.config = cache.config
        self.kv_bits = cache.kv_bits

    @property
    def length(self) -> int:
        return self.cache.length(self.seq_id)

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray,
               position: int) -> None:
        """Quantize and store one token's K/V head vectors."""
        cache = self.cache
        if position >= self.config.max_context:
            raise SimulationError(
                f"position {position} exceeds context "
                f"{self.config.max_context}")
        seq = cache._get(self.seq_id)
        bid = cache._writable_block(seq, position)
        block = cache.pool.storage(bid)
        offset = position % cache.block_size
        assert block.k_codes is not None and block.v_codes is not None
        k_codes, k_scales, k_zeros = kv_quantize_batch(keys, self.kv_bits)
        v_codes, v_scales, v_zeros = kv_quantize_batch(values, self.kv_bits)
        block.k_codes[layer, offset] = k_codes
        block.v_codes[layer, offset] = v_codes
        block.k_scales[layer, offset] = k_scales
        block.v_scales[layer, offset] = v_scales
        block.k_zeros[layer, offset] = k_zeros
        block.v_zeros[layer, offset] = v_zeros
        block.written[layer, offset] = True
        if layer == self.config.num_layers - 1:
            seq.length = max(seq.length, position + 1)

    def _gather(self, which: str, layer: int, length: int,
                head: int | None = None, dtype=np.float16) -> np.ndarray:
        """Dequantize positions ``[0, length)`` block by block.

        Returns ``(length, head_dim)`` for one head or ``(length,
        kv_heads, head_dim)`` for all heads; either way each entry is
        dequantized exactly as the scalar path does (elementwise), so
        the block-at-a-time vectorization is pure layout.
        """
        cache = self.cache
        seq = cache._get(self.seq_id)
        head_sel = slice(None) if head is None else head
        parts = []
        for start in range(0, length, cache.block_size):
            idx = start // cache.block_size
            if idx >= len(seq.table):
                raise SimulationError(
                    f"KV read beyond block table at pos={start}")
            occ = min(length - start, cache.block_size)
            block = cache.pool.storage(seq.table[idx])
            codes = block.k_codes if which == "k" else block.v_codes
            scales = block.k_scales if which == "k" else block.v_scales
            zeros = block.k_zeros if which == "k" else block.v_zeros
            assert codes is not None and block.written is not None
            written = block.written[layer, :occ, head_sel]
            if not written.all():
                pos = start + int(np.argmin(
                    written.reshape(occ, -1).all(axis=1)))
                raise SimulationError(
                    f"KV cache read of unwritten slot layer={layer} "
                    f"pos={pos} head={head if head is not None else 0}")
            parts.append(kv_dequantize_batch(codes[layer, :occ, head_sel],
                                             scales[layer, :occ, head_sel],
                                             zeros[layer, :occ, head_sel],
                                             dtype=dtype))
        if not parts:
            shape = (0, self.config.head_dim) if head is not None \
                else (0, self.config.kv_heads, self.config.head_dim)
            return np.zeros(shape, dtype=dtype)
        return np.concatenate(parts, axis=0)

    def keys(self, layer: int, head: int, length: int) -> np.ndarray:
        """Dequantized FP16 keys: (length, head_dim) for one head."""
        return self._gather("k", layer, length, head)

    def values(self, layer: int, head: int, length: int) -> np.ndarray:
        return self._gather("v", layer, length, head)

    def keys_batch(self, layer: int, length: int,
                   dtype=np.float16) -> np.ndarray:
        """Dequantized FP16 keys of every head: (kv_heads, length, head_dim).

        ``dtype=np.float32`` keeps the FP16-grid values in float32 (the
        attention kernels' native representation)."""
        return self._gather("k", layer, length,
                            dtype=dtype).transpose(1, 0, 2)

    def values_batch(self, layer: int, length: int,
                     dtype=np.float16) -> np.ndarray:
        return self._gather("v", layer, length,
                            dtype=dtype).transpose(1, 0, 2)

    def payload_bytes(self) -> int:
        """Stored code bytes for this sequence's logical length."""
        return (2 * self.config.num_layers * self.length
                * self.config.kv_dim * self.kv_bits // 8)
