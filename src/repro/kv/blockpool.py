"""Refcounted physical-block pool: the storage substrate of paged KV.

The pool owns ``n_blocks`` physical blocks, each holding ``block_size``
token positions of K/V for *every* layer and head of one sequence —
the same unit vLLM's PagedAttention allocates, sized here so that one
block maps to a whole-burst KV read per head in the DDR model.

Two operating modes share one accounting core:

* ``store_data=True`` — blocks carry real KV8 codes plus scale-zero
  params (the functional backend's storage).  Copying a block on
  copy-on-write duplicates the codes and params.
* ``store_data=False`` — pure accounting for the timing backends: the
  pool tracks allocation, refcounts, and content tags, but no arrays.

Blocks are reference counted.  A block may be referenced by any number
of sequence block tables plus (at most once) by the prefix cache; it
returns to the free list only when the last reference drops.
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..errors import CapacityError, SimulationError


class _Block:
    """One physical block: refcount, content tag, optional storage."""

    __slots__ = ("refcount", "content_hash", "k_codes", "v_codes",
                 "k_scales", "v_scales", "k_zeros", "v_zeros", "written")

    def __init__(self) -> None:
        self.refcount = 0
        #: chain hash of the token content, set once the block is
        #: registered in the prefix cache (None = private/unhashed).
        self.content_hash: int | None = None
        self.k_codes: np.ndarray | None = None
        self.v_codes: np.ndarray | None = None
        self.k_scales: np.ndarray | None = None
        self.v_scales: np.ndarray | None = None
        self.k_zeros: np.ndarray | None = None
        self.v_zeros: np.ndarray | None = None
        self.written: np.ndarray | None = None


class BlockPool:
    """Fixed pool of refcounted KV blocks with explicit allocate/release."""

    def __init__(self, config: ModelConfig, n_blocks: int, block_size: int,
                 store_data: bool = True) -> None:
        if n_blocks <= 0:
            raise SimulationError(
                f"block pool needs at least one block, got {n_blocks}")
        if block_size <= 0:
            raise SimulationError(
                f"block size must be positive, got {block_size}")
        self.config = config
        self.n_blocks = n_blocks
        self.block_size = block_size
        self.store_data = store_data
        self._blocks = [_Block() for _ in range(n_blocks)]
        self._free: list[int] = list(range(n_blocks - 1, -1, -1))
        #: bumped on every allocate/incref/decref — a cheap cache tag
        #: for derived per-sequence state (e.g. "does the next append
        #: need a fresh block"), which can only change when some
        #: refcount does.
        self.mutation_epoch = 0

    # -- capacity ----------------------------------------------------------

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_used(self) -> int:
        return self.n_blocks - len(self._free)

    # -- allocation --------------------------------------------------------

    def allocate(self) -> int:
        """Claim one free block (refcount 1); raises when the pool is dry."""
        if not self._free:
            raise CapacityError(
                f"all {self.n_blocks} KV blocks are allocated")
        bid = self._free.pop()
        block = self._blocks[bid]
        self.mutation_epoch += 1
        block.refcount = 1
        block.content_hash = None
        if self.store_data:
            self._init_storage(block)
        return bid

    def incref(self, bid: int) -> None:
        self._live(bid).refcount += 1
        self.mutation_epoch += 1

    def decref(self, bid: int) -> None:
        """Drop one reference; the block frees when the count hits zero."""
        block = self._live(bid)
        block.refcount -= 1
        self.mutation_epoch += 1
        if block.refcount == 0:
            block.content_hash = None
            # Storage is dropped with the block: a freed block must never
            # leak a previous sequence's K/V into its next owner.
            block.k_codes = block.v_codes = None
            block.k_scales = block.v_scales = None
            block.k_zeros = block.v_zeros = None
            block.written = None
            self._free.append(bid)

    def refcount(self, bid: int) -> int:
        self._check(bid)
        return self._blocks[bid].refcount

    def content_hash(self, bid: int) -> int | None:
        return self._live(bid).content_hash

    def set_content_hash(self, bid: int, value: int | None) -> None:
        self._live(bid).content_hash = value

    def copy_data(self, src_bid: int, dst_bid: int) -> None:
        """Copy-on-write support: clone ``src_bid``'s content into
        ``dst_bid`` (both must be live; a no-op in accounting mode)."""
        src, dst = self._live(src_bid), self._live(dst_bid)
        if not self.store_data:
            return
        assert src.k_codes is not None and dst.k_codes is not None
        dst.k_codes[...] = src.k_codes
        dst.v_codes[...] = src.v_codes
        assert src.k_scales is not None and dst.k_scales is not None
        dst.k_scales[...] = src.k_scales
        dst.v_scales[...] = src.v_scales
        dst.k_zeros[...] = src.k_zeros
        dst.v_zeros[...] = src.v_zeros
        dst.written[...] = src.written

    # -- storage access (store_data only) ----------------------------------

    def storage(self, bid: int) -> _Block:
        if not self.store_data:
            raise SimulationError(
                "block pool is accounting-only (store_data=False)")
        return self._live(bid)

    # -- internals ---------------------------------------------------------

    def _init_storage(self, block: _Block) -> None:
        cfg = self.config
        shape = (cfg.num_layers, self.block_size, cfg.kv_heads, cfg.head_dim)
        params = shape[:-1]
        block.k_codes = np.zeros(shape, dtype=np.uint8)
        block.v_codes = np.zeros(shape, dtype=np.uint8)
        block.k_scales = np.zeros(params, dtype=np.float16)
        block.v_scales = np.zeros(params, dtype=np.float16)
        block.k_zeros = np.zeros(params, dtype=np.int64)
        block.v_zeros = np.zeros(params, dtype=np.int64)
        block.written = np.zeros(params, dtype=bool)

    def _check(self, bid: int) -> None:
        if not 0 <= bid < self.n_blocks:
            raise SimulationError(
                f"block {bid} outside pool of {self.n_blocks}")

    def _live(self, bid: int) -> _Block:
        self._check(bid)
        block = self._blocks[bid]
        if block.refcount <= 0:
            raise SimulationError(f"block {bid} is not allocated")
        return block
