"""Content-addressed prefix cache over full KV blocks.

Requests that share a system prompt should map to the same physical
blocks and skip the prefill work for them.  The cache keys each *full*
block of a token sequence by a chain hash — the hash of the block's
tokens combined with the parent block's hash — so a lookup walks the
prompt block by block and stops at the first miss.  Chaining makes two
blocks equal only when their entire history of tokens is equal, which
is what makes sharing safe (position-dependent RoPE is baked into the
cached K/V).

The cache holds one pool reference per registered block, so cached
prefixes survive the retirement of the request that computed them.
When the pool runs dry, the least recently used block that only the
cache still references is evicted to make room.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Sequence

from ..errors import SimulationError
from .blockpool import BlockPool

#: Seed of the chain hash: the hash of the empty prefix.
_CHAIN_ROOT = 0x9E3779B97F4A7C15


def chain_hashes(tokens: Sequence[int], block_size: int) -> list[int]:
    """Chain hash of every *full* block prefix of ``tokens``.

    ``chain_hashes(t, bs)[i]`` identifies the content ``t[: (i + 1) * bs]``;
    partial trailing blocks are never hashed (they are still mutable).

    Memoized: a request blocked at the queue head has its prompt
    re-hashed by every scheduler step's admission check, so repeat
    lookups must not redo the per-block work.
    """
    if block_size <= 0:
        raise SimulationError(f"block size must be positive: {block_size}")
    return list(_chain_hashes_cached(tuple(tokens), block_size))


@lru_cache(maxsize=512)
def _chain_hashes_cached(tokens: tuple[int, ...],
                         block_size: int) -> tuple[int, ...]:
    hashes = []
    parent = _CHAIN_ROOT
    for start in range(0, len(tokens) - block_size + 1, block_size):
        parent = hash((parent, tokens[start:start + block_size]))
        hashes.append(parent)
    return tuple(hashes)


class PrefixCache:
    """LRU map from chain hash to the physical block holding that prefix."""

    def __init__(self, pool: BlockPool) -> None:
        self.pool = pool
        self._entries: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def n_reclaimable(self) -> int:
        """Cached blocks no live sequence references (evictable)."""
        return sum(1 for bid in self._entries.values()
                   if self.pool.refcount(bid) == 1)

    # -- lookup ------------------------------------------------------------

    def match(self, hashes: Sequence[int]) -> list[int]:
        """Block ids of the longest cached prefix of ``hashes`` (LRU touch)."""
        matched: list[int] = []
        for h in hashes:
            bid = self._entries.get(h)
            if bid is None:
                self.misses += 1
                break
            self._entries.move_to_end(h)
            matched.append(bid)
            self.hits += 1
        return matched

    def peek(self, hashes: Sequence[int]) -> list[int]:
        """Block ids of the longest cached prefix, with no LRU or stat
        effects.

        Used by admission accounting, which must not disturb eviction
        order before the request actually claims its blocks.
        """
        matched: list[int] = []
        for h in hashes:
            bid = self._entries.get(h)
            if bid is None:
                break
            matched.append(bid)
        return matched

    # -- registration ------------------------------------------------------

    def register(self, h: int, bid: int) -> None:
        """Publish ``bid`` as the block holding prefix ``h``.

        The cache takes its own pool reference; re-registering a hash that
        is already cached (the same content computed twice concurrently)
        keeps the incumbent block.
        """
        if h in self._entries:
            self._entries.move_to_end(h)
            return
        self.pool.incref(bid)
        self.pool.set_content_hash(bid, h)
        self._entries[h] = bid

    # -- eviction ----------------------------------------------------------

    def evict_one(self) -> int | None:
        """Drop the LRU entry whose block only the cache references.

        Eviction walks from cold to hot; chained children of an evicted
        block remain cached (their hashes still identify their content —
        they just can no longer be *reached* by a fresh prompt walk, and
        age out of the LRU in turn).
        """
        for h, bid in self._entries.items():  # insertion order == LRU order
            if self.pool.refcount(bid) == 1:
                del self._entries[h]
                self.pool.decref(bid)
                self.evictions += 1
                return bid
        return None

    def clear(self) -> None:
        """Drop every cache reference (test/teardown helper)."""
        for bid in self._entries.values():
            self.pool.decref(bid)
        self._entries.clear()

    # -- introspection -----------------------------------------------------

    def entries(self) -> dict[int, int]:
        """Snapshot of hash -> block id (for audits and tests)."""
        return dict(self._entries)
