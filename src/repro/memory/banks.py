"""Detailed multi-bank DDR4 state-machine model.

The first-order model in :mod:`repro.memory.ddr` charges a flat bubble per
sequential row crossing.  This module justifies that abstraction with a
bank-level state machine: 4 bank groups x 4 banks, per-bank open rows,
and the JEDEC timing constraints that matter at this granularity
(tRCD/tRP/tRAS for a bank, tRRD between activates, tFAW over any four,
tCCD_L/S between column commands).  Sequential streams interleave across
bank groups, so activates pipeline behind data transfers — which is where
the small "sequential crossing" bubble of the simple model comes from.

The cross-validation tests assert the two models agree on the streaming
ceiling within a couple of percent, and that both collapse identically
for scattered access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass(frozen=True)
class DdrBankParams:
    """DDR4-2400 timing, in nanoseconds unless noted."""

    clock_ns: float = 1 / 1.2          # 1200 MHz I/O clock (2400 MT/s)
    burst_bytes: int = 64              # BL8 x 64-bit
    burst_ns: float = 4 / 1.2          # 4 clocks per BL8
    t_rcd_ns: float = 13.32            # activate -> read
    t_rp_ns: float = 13.32             # precharge
    t_ras_ns: float = 32.0             # activate -> precharge
    t_rrd_ns: float = 4.9              # activate -> activate (diff banks)
    t_faw_ns: float = 21.0             # four-activate window
    t_ccd_l_ns: float = 5.0            # column-to-column, same bank group
    t_ccd_s_ns: float = 4 / 1.2        # column-to-column, diff group
    n_bank_groups: int = 4
    banks_per_group: int = 4
    row_bytes: int = 2048              # per-bank page x chip width share
    refresh_overhead: float = 0.035

    @property
    def n_banks(self) -> int:
        return self.n_bank_groups * self.banks_per_group


@dataclass
class _BankState:
    open_row: int | None = None
    ready_ns: float = 0.0       # earliest next activate completion
    activated_ns: float = -1e9  # for tRAS


class BankedDdrModel:
    """Cycle-approximate multi-bank DDR4 with open-page policy.

    Addresses map as: column bits (row_bytes) -> bank group -> bank ->
    row, i.e. consecutive rows of the address space land in different
    bank groups — the interleave real controllers use so streams
    pipeline their activates.
    """

    def __init__(self, params: DdrBankParams | None = None) -> None:
        self.params = params if params is not None else DdrBankParams()
        self.reset()

    def reset(self) -> None:
        p = self.params
        self._banks = [_BankState() for _ in range(p.n_banks)]
        self._bus_free_ns = 0.0
        self._activate_times: list[float] = []
        self._last_activate_ns = -1e9
        self.data_bytes = 0
        self.activates = 0

    # -- address mapping -------------------------------------------------------

    def _decode(self, address: int) -> tuple[int, int]:
        """address -> (bank index, row index within bank)."""
        p = self.params
        page = address // p.row_bytes
        bank = page % p.n_banks
        row = page // p.n_banks
        return bank, row

    # -- command timing ----------------------------------------------------------

    def _activate(self, bank: _BankState, row: int, at_ns: float) -> float:
        """Issue precharge+activate; returns when the row is usable."""
        p = self.params
        start = max(at_ns, bank.ready_ns, self._last_activate_ns + p.t_rrd_ns)
        # tFAW: at most 4 activates in any rolling window.
        recent = [t for t in self._activate_times if t > start - p.t_faw_ns]
        if len(recent) >= 4:
            start = max(start, recent[-4] + p.t_faw_ns)
        if bank.open_row is not None:
            # Respect tRAS before precharging the old row.
            start = max(start, bank.activated_ns + p.t_ras_ns)
            start += p.t_rp_ns
        ready = start + p.t_rcd_ns
        bank.open_row = row
        bank.activated_ns = start
        bank.ready_ns = ready
        self._last_activate_ns = start
        self._activate_times.append(start)
        if len(self._activate_times) > 16:
            self._activate_times = self._activate_times[-16:]
        self.activates += 1
        return ready

    def read_burst(self, address: int) -> float:
        """One BL8 read; returns its completion time in ns."""
        p = self.params
        bank_idx, row = self._decode(address)
        bank = self._banks[bank_idx]
        t = self._bus_free_ns
        if bank.open_row != row:
            t = self._activate(bank, row, t)
        else:
            # A prefetched activate may still be completing (tRCD).
            t = max(t, bank.ready_ns)
        start = max(t, self._bus_free_ns)
        end = start + p.burst_ns
        self._bus_free_ns = end
        self.data_bytes += p.burst_bytes
        return end

    def prefetch(self, address: int) -> None:
        """Open the row for ``address`` ahead of time (controller lookahead).

        Issued during another bank's data phase, the precharge + activate
        overlap the transfer — this is what makes sequential streams fast
        on a banked DRAM.
        """
        bank_idx, row = self._decode(address)
        bank = self._banks[bank_idx]
        if bank.open_row != row:
            self._activate(bank, row, self._bus_free_ns)

    def stream(self, start_address: int, n_bytes: int) -> float:
        """Sequential read of ``n_bytes``; returns total ns (with refresh).

        Walks the stream page by page, prefetch-activating the next page's
        bank while the current page streams.
        """
        if n_bytes <= 0:
            raise SimulationError("stream size must be positive")
        p = self.params
        end_address = start_address + n_bytes
        end = 0.0
        page_start = start_address
        while page_start < end_address:
            page_end = min((page_start // p.row_bytes + 1) * p.row_bytes,
                           end_address)
            next_page = page_end
            if next_page < end_address:
                self.prefetch(next_page)
            address = page_start
            while address < page_end:
                end = self.read_burst(address)
                address += p.burst_bytes
            page_start = page_end
        return end / (1.0 - p.refresh_overhead)

    def scattered(self, n_accesses: int, stride: int) -> float:
        """``n_accesses`` single bursts, ``stride`` bytes apart."""
        if n_accesses <= 0:
            raise SimulationError("need at least one access")
        end = 0.0
        for i in range(n_accesses):
            end = self.read_burst(i * stride)
        return end / (1.0 - self.params.refresh_overhead)

    # -- reporting ---------------------------------------------------------------

    def efficiency(self, elapsed_ns: float) -> float:
        """Data moved / peak capability over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            raise SimulationError("elapsed time must be positive")
        peak_rate = self.params.burst_bytes / self.params.burst_ns
        return self.data_bytes / (elapsed_ns * peak_rate)
