"""DDR4 burst-efficiency timing model.

The paper's central bandwidth argument (Sec. V-B): "large consecutive burst
transfers can achieve significantly higher bandwidth efficiency compared to
short bursts with discontinuous addresses."  This model quantifies that
with first-order DDR4 timing:

* data moves at the peak rate (64-bit x 2400 MT/s = 19.2 GB/s) while a
  burst streams within an open row;
* every row miss stalls the bus for ``t_row_miss_ns`` (precharge +
  activate + CAS, ~45 ns for DDR4-2400);
* discontinuous transactions always begin with a row miss; sequential
  ones only miss when they cross a row boundary;
* refresh steals a fixed fraction of time (tRFC/tREFI, ~3-4%);
* transactions shorter than one BL8 burst (64 B on a 64-bit bus) still
  occupy a full burst slot.

The numbers are DDR4 data-sheet typical, not board-measured; what the
reproduction relies on is the *shape* — efficiency rising from ~10% for
scattered 4 B reads to ~93% for megabyte streams — which first-order
timing captures well.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class Transaction:
    """One memory transaction: ``address`` in bytes, ``size`` in bytes."""

    address: int
    size: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError(f"transaction size must be positive: {self}")
        if self.address < 0:
            raise SimulationError(f"negative address: {self}")


@dataclass(frozen=True)
class DdrTimingParams:
    """First-order DDR4 timing for one 64-bit channel."""

    peak_bytes_per_s: float = 19.2e9
    row_bytes: int = 8192          # page size across the 64-bit rank
    t_row_miss_ns: float = 45.0    # tRP + tRCD + CAS for a random access
    t_seq_row_cross_ns: float = 4.0  # bank-interleaved sequential crossing
    refresh_overhead: float = 0.035  # tRFC / tREFI
    min_burst_bytes: int = 64      # BL8 on a 64-bit bus
    t_turnaround_ns: float = 7.5   # read<->write bus turnaround

    @property
    def bytes_per_ns(self) -> float:
        return self.peak_bytes_per_s / 1e9


DDR4_2400_64BIT = DdrTimingParams()


class DdrModel:
    """Accumulates transaction timing and reports achieved bandwidth."""

    def __init__(self, params: DdrTimingParams = DDR4_2400_64BIT) -> None:
        self.params = params
        self.reset()

    def reset(self) -> None:
        self.busy_ns = 0.0
        self.data_bytes = 0
        self.row_misses = 0
        self.seq_crossings = 0
        self.turnarounds = 0
        self._next_address: int | None = None
        self._last_was_write: bool | None = None

    # -- core timing ---------------------------------------------------------

    def access(self, txn: Transaction) -> float:
        """Account one transaction; returns its bus-busy time in ns."""
        p = self.params
        ns = 0.0

        if self._last_was_write is not None and \
                self._last_was_write != txn.is_write:
            ns += p.t_turnaround_ns
            self.turnarounds += 1
        self._last_was_write = txn.is_write

        first_row = txn.address // p.row_bytes
        last_row = (txn.address + txn.size - 1) // p.row_bytes
        crossings = last_row - first_row

        contiguous = self._next_address == txn.address
        if not contiguous:
            # Discontinuous start: full precharge + activate latency.
            self.row_misses += 1
            ns += p.t_row_miss_ns
        # Row crossings inside a streaming burst are pipelined across banks
        # and cost only a small bubble each.
        self.seq_crossings += crossings
        ns += crossings * p.t_seq_row_cross_ns
        self._next_address = txn.address + txn.size

        # Data time: short transactions still burn a whole BL8 slot.
        effective = max(txn.size, p.min_burst_bytes)
        wasted_slots = -(-txn.size // p.min_burst_bytes) * p.min_burst_bytes
        effective = max(effective, wasted_slots)
        ns += effective / p.bytes_per_ns

        self.busy_ns += ns
        self.data_bytes += txn.size
        return ns

    def run(self, transactions) -> float:
        """Account a sequence of transactions; returns total ns including
        the refresh overhead derate."""
        for txn in transactions:
            self.access(txn)
        return self.total_ns

    # -- reporting -------------------------------------------------------------

    @property
    def total_ns(self) -> float:
        """Busy time inflated by the refresh duty cycle."""
        return self.busy_ns / (1.0 - self.params.refresh_overhead)

    def achieved_bytes_per_s(self) -> float:
        if self.total_ns == 0:
            raise SimulationError("no transactions accounted yet")
        return self.data_bytes / (self.total_ns * 1e-9)

    def efficiency(self) -> float:
        """Achieved / peak bandwidth for everything accounted so far."""
        return self.achieved_bytes_per_s() / self.params.peak_bytes_per_s


def stream_efficiency(total_bytes: int, burst_bytes: int,
                      params: DdrTimingParams = DDR4_2400_64BIT,
                      stride: int | None = None) -> float:
    """Efficiency of reading ``total_bytes`` in ``burst_bytes`` chunks.

    ``stride`` (bytes between burst start addresses) defaults to
    contiguous; pass a larger stride to model scattered accesses.
    Convenience wrapper used by the Fig. 4 benchmarks.
    """
    if burst_bytes <= 0 or total_bytes <= 0:
        raise SimulationError("sizes must be positive")
    model = DdrModel(params)
    step = stride if stride is not None else burst_bytes
    address = 0
    remaining = total_bytes
    while remaining > 0:
        size = min(burst_bytes, remaining)
        model.access(Transaction(address=address, size=size))
        address += max(step, size)
        remaining -= size
    return model.efficiency()
