"""AXI HP port aggregation (paper Sec. VI-A, Fig. 5A).

The Zynq UltraScale+ PS exposes 128-bit AXI HP ports to the PL.  One port
at 300 MHz moves 4.8 GB/s — a quarter of the DDR bandwidth — so the MCU
uses four ports, splits each command four ways, synchronizes the four
128-bit return streams, and concatenates them into one 512-bit stream.

This model answers two questions the paper's design hinges on: how many
ports are needed to saturate DDR (4), and what the PL-side ceiling is for
a given port count / frequency (the ablation benchmark sweeps both).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class AxiPortGroup:
    """A set of synchronized AXI ports feeding the accelerator."""

    n_ports: int = 4
    port_bits: int = 128
    freq_hz: float = 300e6

    def __post_init__(self) -> None:
        if self.n_ports <= 0:
            raise ConfigError("need at least one AXI port")
        if self.port_bits % 8:
            raise ConfigError("port width must be a whole number of bytes")
        if self.freq_hz <= 0:
            raise ConfigError("frequency must be positive")

    @property
    def bus_bits(self) -> int:
        """Width of the concatenated stream (512 for the paper's design)."""
        return self.n_ports * self.port_bits

    @property
    def bytes_per_cycle(self) -> float:
        return self.bus_bits / 8

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bytes_per_cycle * self.freq_hz

    def is_bandwidth_matched(self, ddr_bytes_per_s: float,
                             tolerance: float = 0.01) -> bool:
        """True when PL-side bandwidth is within ``tolerance`` of DDR's.

        The paper picks 4 ports x 128 bit x 300 MHz = 19.2 GB/s precisely
        because it equals the DDR4 peak: fewer ports leave DDR bandwidth
        stranded, more cannot be filled.
        """
        ratio = self.bandwidth_bytes_per_s / ddr_bytes_per_s
        return ratio >= 1.0 - tolerance

    def transfer_cycles(self, n_bytes: float) -> float:
        """PL cycles to move ``n_bytes`` through the concatenated stream."""
        if n_bytes < 0:
            raise ConfigError("byte count must be non-negative")
        return n_bytes / self.bytes_per_cycle

    def split_command(self, address: int, size: int) -> list[tuple[int, int]]:
        """Split one MCU command into per-port (address, size) subcommands.

        The command splitter hands each port an interleaved quarter of the
        transfer; we model the split at ``port_bits/8``-byte granularity.
        """
        beat = self.port_bits // 8
        if size % (beat * self.n_ports):
            raise ConfigError(
                f"command size {size} not divisible by the {self.n_ports}-port "
                f"interleave unit {beat * self.n_ports}"
            )
        share = size // self.n_ports
        return [(address + i * beat, share) for i in range(self.n_ports)]
