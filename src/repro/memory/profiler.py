"""Traffic profiler: where a decode step's time actually goes.

Feeds a :class:`repro.core.commands.CommandGenerator` descriptor stream
through the DDR timing model and buckets bus time by region class —
weight streams, KV reads, KV writes, embedding, metadata — producing the
"who uses the 19.2 GB/s" breakdown behind the utilization numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .ddr import DdrModel, DdrTimingParams, Transaction


def _bucket(region: str, is_write: bool) -> str:
    if region.startswith("weights."):
        return "weights"
    if region == "embedding":
        return "embedding"
    if region == "norms":
        return "norms"
    if region == "kv.scale_zero":
        return "kv packs"
    if region.startswith("kv."):
        return "kv write" if is_write else "kv read"
    return "other"


@dataclass
class TrafficProfile:
    """Per-bucket bytes and bus nanoseconds for one decode step."""

    bytes_by_bucket: dict[str, float] = field(default_factory=dict)
    ns_by_bucket: dict[str, float] = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        return sum(self.ns_by_bucket.values())

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_by_bucket.values())

    def time_fraction(self, bucket: str) -> float:
        if self.total_ns <= 0:
            raise SimulationError("empty profile")
        return self.ns_by_bucket.get(bucket, 0.0) / self.total_ns

    def render(self) -> str:
        rows = [f"{'bucket':<12}{'bytes':>14}{'bus ms':>10}{'share':>8}"]
        for bucket in sorted(self.ns_by_bucket,
                             key=self.ns_by_bucket.get, reverse=True):
            rows.append(
                f"{bucket:<12}{self.bytes_by_bucket[bucket]:>14,.0f}"
                f"{self.ns_by_bucket[bucket] / 1e6:>10.2f}"
                f"{self.time_fraction(bucket):>8.1%}")
        rows.append(f"{'total':<12}{self.total_bytes:>14,.0f}"
                    f"{self.total_ns / 1e6:>10.2f}{1.0:>8.1%}")
        return "\n".join(rows)


def profile_decode_step(descriptors,
                        params: DdrTimingParams | None = None,
                        ) -> TrafficProfile:
    """Time a descriptor stream on the DDR model, bucketed by region."""
    if not descriptors:
        raise SimulationError("empty descriptor stream")
    model = DdrModel(params if params is not None else DdrTimingParams())
    profile = TrafficProfile()
    for desc in descriptors:
        before = model.busy_ns
        model.access(Transaction(address=desc.address, size=desc.size,
                                 is_write=desc.is_write))
        elapsed = model.busy_ns - before
        bucket = _bucket(desc.region, desc.is_write)
        profile.bytes_by_bucket[bucket] = \
            profile.bytes_by_bucket.get(bucket, 0.0) + desc.size
        profile.ns_by_bucket[bucket] = \
            profile.ns_by_bucket.get(bucket, 0.0) + elapsed
    # Spread the refresh derate proportionally over the buckets.
    derate = 1.0 / (1.0 - model.params.refresh_overhead)
    for bucket in profile.ns_by_bucket:
        profile.ns_by_bucket[bucket] *= derate
    return profile
