"""Memory-system substrate: address map, DDR4 timing, AXI ports, traffic.

* :mod:`repro.memory.memmap` — the KV260's 4 GB address space with the
  paper's high/low 2 GB split and bare-metal reservation (Sec. VII-A).
* :mod:`repro.memory.ddr` — DDR4 burst-efficiency timing model: why large
  consecutive bursts matter (Sec. V-B).
* :mod:`repro.memory.axi` — the 4 x 128-bit AXI HP port aggregation
  (Sec. VI-A).
* :mod:`repro.memory.traffic` — per-token byte accounting of weights,
  metadata, and KV cache.
"""

from .axi import AxiPortGroup
from .ddr import DdrTimingParams, DdrModel, Transaction
from .memmap import AddressMap, Allocation, kv260_address_map
from .traffic import DecodeTraffic, decode_traffic

__all__ = [
    "AxiPortGroup",
    "DdrTimingParams",
    "DdrModel",
    "Transaction",
    "AddressMap",
    "Allocation",
    "kv260_address_map",
    "DecodeTraffic",
    "decode_traffic",
]
