"""The 4 GB address map of the bare-metal system (paper Sec. VII-A).

The KV260's address space is split by the Zynq architecture into a lower
2 GB (0x0000_0000-0x7FFF_FFFF) and an upper 2 GB (0x8000_0000-0xFFFF_FFFF).
The paper reserves 1 MB at the top of the lower region for the bare-metal
compiler, places the embedding table, model weights, and the KV cache of
the first 16 layers in the upper region, and everything else in the lower
region.  :class:`AddressMap` reproduces that allocator and refuses
allocations that spill out of a region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapacityError

LOW_BASE = 0x0000_0000
LOW_LIMIT = 0x7FF0_0000  # 1 MB below 2 GB is compiler-reserved
HIGH_BASE = 0x8000_0000
HIGH_LIMIT = 0x1_0000_0000


@dataclass(frozen=True)
class Allocation:
    """One named, placed region of DDR."""

    name: str
    start: int
    size: int
    region: str  # "low" | "high"

    @property
    def end(self) -> int:
        return self.start + self.size


@dataclass
class _Region:
    name: str
    base: int
    limit: int
    cursor: int = field(init=False)

    def __post_init__(self) -> None:
        self.cursor = self.base

    @property
    def capacity(self) -> int:
        return self.limit - self.base

    @property
    def free(self) -> int:
        return self.limit - self.cursor

    def allocate(self, name: str, size: int, align: int) -> Allocation:
        start = (self.cursor + align - 1) // align * align
        if start + size > self.limit:
            raise CapacityError(
                f"allocation {name!r} ({size} B) does not fit in region "
                f"{self.name!r}: {self.limit - start} B free"
            )
        self.cursor = start + size
        return Allocation(name=name, start=start, size=size, region=self.name)


class AddressMap:
    """Bump allocator over the low/high DDR regions."""

    def __init__(self, low_base: int = LOW_BASE, low_limit: int = LOW_LIMIT,
                 high_base: int = HIGH_BASE, high_limit: int = HIGH_LIMIT,
                 align: int = 64) -> None:
        if low_limit <= low_base or high_limit <= high_base:
            raise CapacityError("region limits must exceed bases")
        self.align = align  # 512-bit bus alignment by default
        self._regions = {
            "low": _Region("low", low_base, low_limit),
            "high": _Region("high", high_base, high_limit),
        }
        self.allocations: list[Allocation] = []

    def allocate(self, name: str, size: int, region: str = "high",
                 ) -> Allocation:
        """Place ``size`` bytes in ``region``; raises CapacityError if full."""
        if region not in self._regions:
            raise CapacityError(f"unknown region {region!r}")
        if size < 0:
            raise CapacityError(f"allocation {name!r} has negative size")
        alloc = self._regions[region].allocate(name, size, self.align)
        self.allocations.append(alloc)
        return alloc

    def free_bytes(self, region: str) -> int:
        return self._regions[region].free

    def total_capacity(self) -> int:
        return sum(r.capacity for r in self._regions.values())

    def allocated_bytes(self) -> int:
        return sum(a.size for a in self.allocations)

    def utilization(self) -> float:
        """Fraction of the *full* 4 GB used (the paper's 93.3% metric
        counts against the raw DRAM size, reservation included)."""
        raw = HIGH_LIMIT - LOW_BASE if self._is_default_span() else \
            self.total_capacity()
        return self.allocated_bytes() / raw

    def _is_default_span(self) -> bool:
        low = self._regions["low"]
        high = self._regions["high"]
        return low.base == LOW_BASE and high.limit == HIGH_LIMIT

    def overlaps(self) -> list[tuple[str, str]]:
        """Sanity check: any pair of allocations that overlap (should be none)."""
        bad = []
        allocs = sorted(self.allocations, key=lambda a: a.start)
        for first, second in zip(allocs, allocs[1:]):
            if first.end > second.start:
                bad.append((first.name, second.name))
        return bad


def kv260_address_map() -> AddressMap:
    """The exact map of the paper: low 2 GB minus 1 MB, high 2 GB."""
    return AddressMap()
