"""Per-token DRAM traffic accounting for the decode phase.

Everything the accelerator touches per decoded token, in bytes:

* quantized weight codes of every streamed projection (all layers + head),
* their interleaved scale/zero metadata (Fig. 4A overhead),
* one embedding-table row (FP16),
* norm weights (FP16, streamed with the layer),
* KV cache reads: all cached K and V codes plus their scale-zero packs,
* KV cache writes: the freshly quantized K/V of this token plus its packs.

These byte counts drive both the analytical model and the cycle model;
they are also what the paper's "utilization" metric divides against
(weights only, Sec. VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig, QuantConfig
from ..errors import SimulationError


@dataclass(frozen=True)
class DecodeTraffic:
    """Byte breakdown of one decode step at a given context length."""

    weight_code_bytes: float
    weight_meta_bytes: float
    embedding_row_bytes: float
    norm_bytes: float
    kv_read_bytes: float
    kv_read_pack_bytes: float
    kv_write_bytes: float
    kv_write_pack_bytes: float
    context: int

    @property
    def weight_bytes(self) -> float:
        """Weight traffic including metadata (what actually crosses the bus)."""
        return self.weight_code_bytes + self.weight_meta_bytes

    @property
    def kv_bytes(self) -> float:
        return (self.kv_read_bytes + self.kv_read_pack_bytes
                + self.kv_write_bytes + self.kv_write_pack_bytes)

    @property
    def total_bytes(self) -> float:
        return (self.weight_bytes + self.embedding_row_bytes
                + self.norm_bytes + self.kv_bytes)

    @property
    def read_bytes(self) -> float:
        return self.total_bytes - self.write_bytes

    @property
    def write_bytes(self) -> float:
        return self.kv_write_bytes + self.kv_write_pack_bytes


def decode_traffic(model: ModelConfig, quant: QuantConfig,
                   context: int, tp: int = 1) -> DecodeTraffic:
    """Traffic of decoding one token when ``context`` tokens are cached.

    ``context`` is the number of previously cached tokens whose K/V must
    be read (the new token's K/V are produced on-chip and only written).

    ``tp > 1`` accounts ONE shard of a tensor-parallel group: every
    streamed projection and the KV cache are divided ``tp`` ways, while
    the embedding row and the (replicated) norm weights still cross each
    shard's bus in full.
    """
    if tp < 1:
        raise SimulationError(f"tensor-parallel degree must be >= 1: {tp}")
    streamed = (model.decode_stream_params() - model.norm_params()) / tp
    code_bytes = streamed * quant.weight_bits / 8
    meta_bytes = streamed * quant.weight_overhead_bits_per_weight / 8

    embedding_row = model.hidden_size * quant.activation_bits / 8
    norm_bytes = model.norm_params() * 2  # FP16 norm weights

    kv_elems_per_token = 2 * model.num_layers * model.kv_dim / tp
    kv_read = context * kv_elems_per_token * quant.kv_bits / 8
    packs_per_token = 2 * model.num_layers * model.kv_heads / tp
    kv_read_packs = context * packs_per_token * quant.kv_pack_bits / 8

    kv_write = kv_elems_per_token * quant.kv_bits / 8
    kv_write_packs = packs_per_token * quant.kv_pack_bits / 8

    return DecodeTraffic(
        weight_code_bytes=code_bytes,
        weight_meta_bytes=meta_bytes,
        embedding_row_bytes=embedding_row,
        norm_bytes=norm_bytes,
        kv_read_bytes=kv_read,
        kv_read_pack_bytes=kv_read_packs,
        kv_write_bytes=kv_write,
        kv_write_pack_bytes=kv_write_packs,
        context=context,
    )


@dataclass(frozen=True)
class BatchDecodeTraffic:
    """Byte breakdown of one *batched* decode step.

    Weights, their metadata, and the norm reads cross the bus once for
    the whole batch; embedding rows and KV writes are per member.  KV reads
    are charged per *fetched* token: under a paged cache, blocks shared
    between batch members stream from DRAM once and the other members
    read them from on-chip staging, so ``kv_read_bytes`` shrinks with
    prefix sharing while every member still attends over its full
    context.
    """

    weight_bytes: float
    embedding_row_bytes: float
    norm_bytes: float
    kv_read_bytes: float
    #: what the KV reads would cost with every member fetching privately
    #: (slotted behaviour); the sharing saving is the difference.
    kv_read_private_bytes: float
    kv_write_bytes: float
    contexts: tuple[int, ...]
    fetched: tuple[int, ...]

    @property
    def batch(self) -> int:
        return len(self.contexts)

    @property
    def total_bytes(self) -> float:
        return (self.weight_bytes + self.embedding_row_bytes
                + self.norm_bytes + self.kv_read_bytes
                + self.kv_write_bytes)

    @property
    def shared_savings_bytes(self) -> float:
        """DRAM bytes per step that block sharing removed."""
        return self.kv_read_private_bytes - self.kv_read_bytes


def batched_decode_traffic(model: ModelConfig, quant: QuantConfig,
                           contexts: "list[int] | tuple[int, ...]",
                           fetched: "list[int] | tuple[int, ...] | None"
                           = None, tp: int = 1) -> BatchDecodeTraffic:
    """Traffic of one decode step shared by ``len(contexts)`` sequences.

    ``fetched[i]`` (default: ``contexts[i]``) is the number of member
    *i*'s cached tokens whose K/V must actually stream from DRAM — the
    per-resident-block accounting of the paged KV cache, where a block
    already fetched for an earlier member this step is free.  ``tp``
    accounts one tensor-parallel shard (see :func:`decode_traffic`).
    """
    if not contexts:
        raise SimulationError(
            "batched traffic needs at least one context")
    if fetched is None:
        fetched = list(contexts)
    if len(fetched) != len(contexts):
        raise SimulationError(
            f"fetched has {len(fetched)} entries for "
            f"{len(contexts)} contexts")
    base = decode_traffic(model, quant, 0, tp)
    batch = len(contexts)
    kv_read = 0.0
    kv_read_private = 0.0
    for ctx, fetch in zip(contexts, fetched):
        if not 0 <= fetch <= ctx:
            raise SimulationError(
                f"fetched tokens {fetch} outside [0, {ctx}]")
        t = decode_traffic(model, quant, fetch, tp)
        kv_read += t.kv_read_bytes + t.kv_read_pack_bytes
        p = t if fetch == ctx else decode_traffic(model, quant, ctx, tp)
        kv_read_private += p.kv_read_bytes + p.kv_read_pack_bytes
    return BatchDecodeTraffic(
        weight_bytes=base.weight_bytes,
        embedding_row_bytes=batch * base.embedding_row_bytes,
        norm_bytes=base.norm_bytes,
        kv_read_bytes=kv_read,
        kv_read_private_bytes=kv_read_private,
        kv_write_bytes=batch * (base.kv_write_bytes
                                + base.kv_write_pack_bytes),
        contexts=tuple(contexts),
        fetched=tuple(fetched),
    )


def prefill_traffic(model: ModelConfig, quant: QuantConfig,
                    prompt_len: int) -> float:
    """Total weight bytes for a prefill pass (weights stream once for the
    whole prompt batch — the GEMM reuse of Fig. 2A)."""
    single = decode_traffic(model, quant, context=0)
    kv_writes = prompt_len * (single.kv_write_bytes + single.kv_write_pack_bytes)
    return single.weight_bytes + single.embedding_row_bytes * prompt_len \
        + single.norm_bytes + kv_writes
