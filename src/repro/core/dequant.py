"""On-the-fly weight dequantizer (Fig. 5B: "512b -> 2048b Dequant").

Each cycle the demultiplexer hands the dequantizer one 512-bit bus word of
4-bit codes plus the current group's scale and zero point; it emits 128
FP16 values (2048 bits) straight into the DOT engine's multiplier lanes.

The functional path here is bit-faithful: codes come from the packed
stream exactly as :mod:`repro.packing.weight_layout` stores them, and the
output matches ``(q - zero) * scale`` rounded to FP16.
"""

from __future__ import annotations

import numpy as np

from ..errors import LayoutError
from ..numerics.fp16 import fp16
from ..quant.groupquant import unpack_codes


class Dequantizer:
    """512-bit word -> 128 FP16 weights, one word per cycle."""

    LATENCY_CYCLES = 3  # subtract, multiply, round

    def __init__(self, lanes: int = 128, weight_bits: int = 4) -> None:
        if lanes * weight_bits != 512:
            raise LayoutError(
                f"{lanes} lanes x {weight_bits} bits must fill a 512-bit word"
            )
        self.lanes = lanes
        self.weight_bits = weight_bits
        self.words_processed = 0

    def dequantize_word(self, word: bytes, scale: float,
                        zero: int) -> np.ndarray:
        """One bus word of codes -> ``lanes`` FP16 weights."""
        if len(word) != 512 // 8:
            raise LayoutError(f"expected 64-byte word, got {len(word)}")
        codes = unpack_codes(word, self.weight_bits, self.lanes)
        self.words_processed += 1
        centered = codes.astype(np.float32) - np.float32(zero)
        return fp16(centered * np.float32(np.float16(scale)))

    def throughput_weights_per_cycle(self) -> int:
        """The dequantizer matches the bus: 128 weights every cycle."""
        return self.lanes
