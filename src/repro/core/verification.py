"""Datapath self-verification (BIST-style).

``verify_datapath`` proves, for a quantized model, that the *stored
bytes* drive the same arithmetic as the functional pipeline: every
projection is encoded to its interleaved stream, decoded through the
bit-true stream reader + dequantizer, and matvec'd against a probe
vector; the result must match the :class:`QuantizedModel`'s own matvec to
FP16 tolerance.  This is the check a bring-up engineer runs before
trusting a board — and the check our tests run before trusting the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..model.weights import QuantizedModelWeights
from ..numerics.fp16 import fp16, fp16_matvec
from ..packing.weight_layout import WeightLayoutSpec, encode_weight_stream
from .stream import StreamingMatvec


@dataclass
class VerificationReport:
    """Outcome of one datapath verification run."""

    checked: int = 0
    failures: list[str] = field(default_factory=list)
    worst_error: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"datapath verification: {status} "
                 f"({self.checked} projections, worst |err| "
                 f"{self.worst_error:.3g})"]
        lines += [f"  FAILED: {name}" for name in self.failures]
        return "\n".join(lines)


def verify_datapath(qweights: QuantizedModelWeights, seed: int = 0,
                    tolerance: float = 0.02,
                    streams: dict[str, bytes] | None = None,
                    ) -> VerificationReport:
    """Encode->stream->dequant->DOT for every projection; compare.

    Without ``streams`` this verifies the encode/decode/compute path
    itself (re-encoding the known-good parameters).  Pass ``streams`` —
    e.g. ``{"layer0.wq": image.data["weights.layer0.wq"], ...}`` from a
    loaded memory image or checkpoint — to verify that *stored bytes*
    still compute the right answers, which is how a corrupted load shows
    up.
    """
    cfg = qweights.config
    quant = qweights.quant
    if cfg.hidden_size % quant.weight_group_size:
        raise SimulationError(
            "model hidden size not divisible by the quantization group"
        )
    spec = WeightLayoutSpec(weight_bits=quant.weight_bits,
                            scale_bits=quant.weight_scale_bits,
                            zero_bits=quant.weight_zero_bits,
                            group_size=quant.weight_group_size)
    sm = StreamingMatvec(spec)
    rng = np.random.default_rng(seed)
    report = VerificationReport()

    def check(name: str, result) -> None:
        out_f, in_f = result.params.codes.shape
        x = rng.standard_normal(in_f)
        if streams is not None and name in streams:
            data = streams[name]
        else:
            data = encode_weight_stream(result.params, spec)
        via_stream = sm.matvec(data, x, out_f, in_f,
                               channel_scales=result.channel_scales)
        direct = fp16_matvec(fp16(result.effective_weight()),
                             fp16(x / result.channel_scales), lanes=sm.lanes)
        err = float(np.max(np.abs(via_stream.astype(np.float64)
                                  - direct.astype(np.float64))))
        report.checked += 1
        report.worst_error = max(report.worst_error, err)
        if err > tolerance:
            report.failures.append(f"{name} (|err| {err:.3g})")

    for layer_idx, layer in enumerate(qweights.layers):
        for proj_name, result in layer.items():
            check(f"layer{layer_idx}.{proj_name}", result)
    check("lm_head", qweights.lm_head)
    return report
