"""FIFO primitives of the accelerator (Fig. 5: szFIFO, kvFIFO, operand FIFO).

A simple bounded FIFO with occupancy statistics.  The cycle model uses the
occupancy high-water mark to size on-chip buffers (URAM/BRAM in the
resource model); the functional model uses it to check that the dataflow
never overflows the hardware depth.
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError


class HardwareFifo:
    """Bounded FIFO with push/pop accounting."""

    def __init__(self, name: str, depth: int) -> None:
        if depth <= 0:
            raise SimulationError(f"FIFO {name!r} needs positive depth")
        self.name = name
        self.depth = depth
        self._queue: deque = deque()
        self.pushes = 0
        self.pops = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, item) -> None:
        if self.full:
            raise SimulationError(
                f"FIFO {self.name!r} overflow at depth {self.depth}"
            )
        self._queue.append(item)
        self.pushes += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))

    def pop(self):
        if self.empty:
            raise SimulationError(f"FIFO {self.name!r} underflow")
        self.pops += 1
        return self._queue.popleft()

    def drain(self) -> list:
        """Pop everything (end-of-op cleanup)."""
        out = list(self._queue)
        self.pops += len(self._queue)
        self._queue.clear()
        return out
