"""Bandwidth-bound analytical performance model (Table II's arithmetic).

Decoding is bandwidth-bound, so the hard ceiling on token rate is

    tokens/s = bandwidth / weight_bytes_per_token

where ``weight_bytes_per_token`` counts every parameter except the
embedding table at the quantized bit-width (Table II note 1: "the number
of model weight transfers possible within one second").  Bandwidth
*utilization* — the paper's comparison metric — is measured speed divided
by this ceiling.
"""

from __future__ import annotations

from ..config import ModelConfig, PlatformConfig, QuantConfig
from ..errors import ConfigError


def weight_bytes_per_token(model: ModelConfig, weight_bits: float) -> float:
    """Bytes of model weights streamed per decoded token."""
    if weight_bits <= 0:
        raise ConfigError(f"weight_bits must be positive, got {weight_bits}")
    return model.decode_stream_params() * weight_bits / 8


def theoretical_tokens_per_s(model: ModelConfig, platform: PlatformConfig,
                             weight_bits: float = 4.0) -> float:
    """The bandwidth-bound decode ceiling of ``model`` on ``platform``."""
    return platform.bandwidth_bytes_per_s / weight_bytes_per_token(
        model, weight_bits)


def utilization(measured_tokens_per_s: float, model: ModelConfig,
                platform: PlatformConfig, weight_bits: float = 4.0) -> float:
    """Measured speed as a fraction of the bandwidth-bound ceiling."""
    if measured_tokens_per_s < 0:
        raise ConfigError("measured speed must be non-negative")
    return measured_tokens_per_s / theoretical_tokens_per_s(
        model, platform, weight_bits)


def effective_bandwidth_demand(model: ModelConfig, quant: QuantConfig,
                               context: int) -> float:
    """Total bytes per token including metadata and KV traffic.

    The gap between this and :func:`weight_bytes_per_token` is the
    *intrinsic* utilization loss — even a perfect memory system cannot
    reach 100% on the paper's metric because scales, zeros, and the KV
    cache also ride the bus.
    """
    from ..memory.traffic import decode_traffic

    return decode_traffic(model, quant, context).total_bytes


def intrinsic_utilization_ceiling(model: ModelConfig, quant: QuantConfig,
                                  context: int) -> float:
    """Best possible utilization at a context length, before DDR losses."""
    return weight_bytes_per_token(model, quant.weight_bits) / \
        effective_bandwidth_demand(model, quant, context)


def batched_decode_rate(model: ModelConfig, platform: PlatformConfig,
                        quant: QuantConfig, batch: int, context: int,
                        compute_macs_per_s: float,
                        ddr_efficiency: float = 0.95) -> dict:
    """Aggregate token rate for multi-batch decoding (Chen et al.'s trade).

    Batching reuses each streamed weight across ``batch`` sequences, so
    aggregate throughput rises until the platform's compute rate (MACs/s)
    becomes the wall; KV traffic is *not* shared and grows per sequence.
    The paper targets single-batch edge decoding where none of this
    applies — this helper quantifies why cloud FPGAs care and the KV260
    does not (its DOT engine has exactly single-batch compute).
    """
    if batch <= 0:
        raise ConfigError("batch must be positive")
    if compute_macs_per_s <= 0:
        raise ConfigError("compute rate must be positive")
    from ..memory.traffic import decode_traffic

    single = decode_traffic(model, quant, context)
    bytes_per_step = single.weight_bytes + single.embedding_row_bytes \
        + single.norm_bytes + batch * single.kv_bytes
    bandwidth_time = bytes_per_step / (platform.bandwidth_bytes_per_s
                                       * ddr_efficiency)
    macs_per_step = batch * model.decode_stream_params()
    compute_time = macs_per_step / compute_macs_per_s
    step_time = max(bandwidth_time, compute_time)
    return {
        "aggregate_tokens_per_s": batch / step_time,
        "per_sequence_tokens_per_s": 1.0 / step_time,
        "compute_bound": compute_time > bandwidth_time,
        "bytes_per_step": bytes_per_step,
    }


def decode_roofline(model: ModelConfig, platform: PlatformConfig,
                    quant: QuantConfig, context: int,
                    ddr_efficiency: float = 1.0) -> dict:
    """A small roofline summary for one operating point."""
    ceiling = theoretical_tokens_per_s(model, platform, quant.weight_bits)
    demand = effective_bandwidth_demand(model, quant, context)
    achievable = platform.bandwidth_bytes_per_s * ddr_efficiency / demand
    return {
        "theoretical_tokens_per_s": ceiling,
        "achievable_tokens_per_s": achievable,
        "bytes_per_token": demand,
        "utilization_ceiling": achievable / ceiling,
        "intrinsic_ceiling": intrinsic_utilization_ceiling(
            model, quant, context),
    }
