"""Scalar Processing Unit: miscellaneous-function latency models (Fig. 5C).

Each submodule processes one element per cycle (serial streams from the
VPU / serial-to-parallel adapters), so latencies are pass-count times
vector length plus a small fixed pipeline depth:

* RoPE      — 1 pass over the head vector (pairs processed in parallel
              with the cached half), Fig. 5C1;
* RMSNorm   — 2 passes (square-sum pass skippable when the DOT engine
              already produced it), Fig. 5C2;
* Softmax   — 3 passes over the score vector (max, normalizer, divide),
              Fig. 5C4;
* SiLU      — 1 pass over the gate output, Fig. 5C5;
* Quant     — 2 passes over the K/V head vector (min/max, quantize),
              Fig. 5C6.

The functional implementations live in :mod:`repro.numerics`; this module
pairs them with cycle counts so the pipeline model can check the paper's
"no cycle penalty" claim stage by stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class SpuLatencyParams:
    """Fixed pipeline depths of the SPU submodules (cycles)."""

    rope_depth: int = 8        # rotator + 2 muls + add
    rmsnorm_depth: int = 24    # rsqrt pipeline
    softmax_depth: int = 12    # exp + divider
    silu_depth: int = 14       # exp + add + divider
    quant_depth: int = 6       # min/max compare + scale divide
    residual_depth: int = 2


class SpuModel:
    """Cycle counts for every miscellaneous operation."""

    def __init__(self, params: SpuLatencyParams | None = None) -> None:
        self.params = params if params is not None else SpuLatencyParams()

    def _check(self, n: int, what: str) -> None:
        if n <= 0:
            raise ConfigError(f"{what} length must be positive, got {n}")

    def rope_cycles(self, head_dim: int) -> int:
        """Rotate one head vector: half the pairs stream while the other
        half is read from the rotator cache — one cycle per pair."""
        self._check(head_dim, "rope")
        return head_dim // 2 + self.params.rope_depth

    def rmsnorm_cycles(self, hidden: int, square_sum_free: bool = True) -> int:
        """Normalize one hidden vector; pass 1 skipped when the square sum
        came from the DOT engine (the paper's default)."""
        self._check(hidden, "rmsnorm")
        passes = 1 if square_sum_free else 2
        return passes * hidden + self.params.rmsnorm_depth

    def softmax_cycles(self, length: int) -> int:
        """Three passes over the attention-score vector."""
        self._check(length, "softmax")
        return 3 * length + self.params.softmax_depth

    def online_softmax_cycles(self, length: int) -> int:
        """Two passes: the online normalizer (Milakov & Gimelshein, which
        the paper cites) fuses the max and normalizer passes, leaving only
        the accumulate pass plus the divide pass."""
        self._check(length, "softmax")
        return 2 * length + self.params.softmax_depth

    def silu_cycles(self, length: int) -> int:
        self._check(length, "silu")
        return length + self.params.silu_depth

    def quant_cycles(self, length: int) -> int:
        """Two passes to quantize one freshly generated K/V head vector."""
        self._check(length, "quant")
        return 2 * length + self.params.quant_depth

    def residual_cycles(self, hidden: int) -> int:
        self._check(hidden, "residual")
        return hidden + self.params.residual_depth
