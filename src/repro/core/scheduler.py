"""Whole-token decode schedule (Fig. 2C's per-layer breakdown).

Builds the sequence of dense segments for one decoded token:

    embedding fetch
    for each layer:
        attention (via :mod:`repro.core.pipeline`, fused or coarse)
        MLP: gate proj -> up proj -> down proj, with SiLU + elementwise
             multiply hidden under the up/down streams (fused) or
             serialized (coarse)
    final RMSNorm
    LM head projection

and reports per-segment cycles so the cycle model can sum them.  RMSNorms
are charged through the pipeline reports (attention) and the MLP segment
(post-attention norm); their square-sum pass rides the DOT engine, so in
fused mode only the normalization pass can ever be exposed — and it hides
under the next projection's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ModelConfig, QuantConfig
from ..errors import ScheduleError
from .mcu import Mcu
from .pipeline import AttentionPipeline, MiscPlacement, Stage
from .spu import SpuModel
from .vpu import VpuSpec


@dataclass(frozen=True)
class Segment:
    """One schedulable chunk of the token's work."""

    name: str
    cycles: float
    transfer_bytes: float
    exposed_misc_cycles: float = 0.0


@dataclass
class TokenSchedule:
    """All segments of one decoded token."""

    mode: str
    context: int
    segments: list[Segment] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(s.cycles for s in self.segments)

    @property
    def total_transfer_bytes(self) -> float:
        return sum(s.transfer_bytes for s in self.segments)

    @property
    def exposed_misc_cycles(self) -> float:
        return sum(s.exposed_misc_cycles for s in self.segments)

    def segment(self, name: str) -> Segment:
        for s in self.segments:
            if s.name == name:
                return s
        raise ScheduleError(f"no segment named {name!r}")


class TokenScheduler:
    """Builds :class:`TokenSchedule` objects for decode steps."""

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 mcu: Mcu | None = None, vpu: VpuSpec | None = None,
                 spu: SpuModel | None = None) -> None:
        self.model = model
        self.quant = quant
        self.mcu = mcu if mcu is not None else Mcu()
        self.vpu = vpu if vpu is not None else VpuSpec()
        self.spu = spu if spu is not None else SpuModel()
        self.pipeline = AttentionPipeline(model, quant, self.mcu, self.vpu,
                                          self.spu)

    # -- helpers ---------------------------------------------------------------

    def _tiles(self, length: int) -> int:
        return -(-length // self.vpu.lanes)

    def _proj_segment(self, name: str, out_rows: int, in_cols: int,
                      hidden_misc: float = 0.0, mode: str = "fused",
                      ) -> Segment:
        n_bytes = out_rows * in_cols * self.quant.effective_weight_bits / 8
        transfer = self.mcu.stream_transfer(n_bytes).cycles
        compute = out_rows * self._tiles(in_cols)
        dense = max(transfer, compute)
        if mode == "fused":
            exposed = max(0.0, hidden_misc - dense)
        else:
            exposed = hidden_misc
        return Segment(name, dense + exposed, n_bytes, exposed)

    # -- public API --------------------------------------------------------------

    def attention_segment(self, layer: int, context: int,
                          mode: str) -> Segment:
        report = self.pipeline.schedule(context, mode)
        m, q = self.model, self.quant
        weight_bytes = m.attention_params() * q.effective_weight_bits / 8
        kv_read = 2 * context * m.kv_dim * q.kv_bits / 8 \
            + 2 * context * m.kv_heads * q.kv_pack_bits / 8
        kv_write = 2 * m.kv_dim * q.kv_bits / 8 \
            + 2 * m.kv_heads * q.kv_pack_bits / 8
        return Segment(f"layer{layer}.attn", report.total_cycles,
                       weight_bytes + kv_read + kv_write,
                       report.exposed_misc_cycles)

    def mlp_segments(self, layer: int, mode: str) -> list[Segment]:
        m = self.model
        h, inter = m.hidden_size, m.intermediate_size
        segs = []
        # Post-attention RMSNorm: square sum came from the DOT engine; the
        # normalize pass hides under the gate/up weight stream.
        norm = self.spu.rmsnorm_cycles(h, square_sum_free=True)
        if m.gated_mlp:
            segs.append(self._proj_segment(f"layer{layer}.mlp.gate", inter, h,
                                           hidden_misc=norm, mode=mode))
            silu = self.spu.silu_cycles(inter)
            segs.append(self._proj_segment(f"layer{layer}.mlp.up", inter, h,
                                           hidden_misc=silu, mode=mode))
        else:
            segs.append(self._proj_segment(f"layer{layer}.mlp.up", inter, h,
                                           hidden_misc=norm, mode=mode))
            silu = self.spu.silu_cycles(inter)
        down_misc = self.spu.residual_cycles(h)
        if not m.gated_mlp:
            down_misc += silu
        segs.append(self._proj_segment(f"layer{layer}.mlp.down", h, inter,
                                       hidden_misc=down_misc, mode=mode))
        return segs

    def build(self, context: int, mode: str = "fused") -> TokenSchedule:
        """Schedule one decode step with ``context`` cached tokens."""
        if mode not in ("fused", "coarse"):
            raise ScheduleError(f"unknown mode {mode!r}")
        m, q = self.model, self.quant
        sched = TokenSchedule(mode=mode, context=context)

        # Embedding row fetch (one row, FP16) — a short burst.
        row_bytes = m.hidden_size * q.activation_bits / 8
        emb = self.mcu.stream_transfer(row_bytes)
        sched.segments.append(Segment("embedding", emb.cycles, row_bytes))

        for layer in range(m.num_layers):
            sched.segments.append(self.attention_segment(layer, context, mode))
            sched.segments.extend(self.mlp_segments(layer, mode))

        # Final RMSNorm is serial before the LM head in both modes (the
        # logits projection cannot start without the normalized vector).
        final_norm = self.spu.rmsnorm_cycles(m.hidden_size,
                                             square_sum_free=True)
        sched.segments.append(Segment("final_norm", final_norm, 0.0,
                                      exposed_misc_cycles=final_norm))

        sched.segments.append(self._proj_segment(
            "lm_head", m.vocab_size, m.hidden_size, mode=mode))
        return sched


def build_token_schedule(model: ModelConfig, quant: QuantConfig,
                         context: int, mode: str = "fused") -> TokenSchedule:
    """Convenience wrapper: schedule one decode step with default units."""
    return TokenScheduler(model, quant).build(context, mode)
