"""Whole-token decode schedule (Fig. 2C's per-layer breakdown).

Builds the sequence of dense segments for one decoded token:

    embedding fetch
    for each layer:
        attention (via :mod:`repro.core.pipeline`, fused or coarse)
        MLP: gate proj -> up proj -> down proj, with SiLU + elementwise
             multiply hidden under the up/down streams (fused) or
             serialized (coarse)
    final RMSNorm
    LM head projection

and reports per-segment cycles so the cycle model can sum them.  RMSNorms
are charged through the pipeline reports (attention) and the MLP segment
(post-attention norm); their square-sum pass rides the DOT engine, so in
fused mode only the normalization pass can ever be exposed — and it hides
under the next projection's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..config import ModelConfig, QuantConfig
from ..errors import ScheduleError
from .mcu import Mcu
from .pipeline import AttentionPipeline, MiscPlacement, Stage
from .spu import SpuModel
from .vpu import VpuSpec


@dataclass(frozen=True)
class Segment:
    """One schedulable chunk of the token's work."""

    name: str
    cycles: float
    transfer_bytes: float
    exposed_misc_cycles: float = 0.0


@dataclass
class TokenSchedule:
    """All segments of one decoded token."""

    mode: str
    context: int
    segments: list[Segment] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(s.cycles for s in self.segments)

    @property
    def total_transfer_bytes(self) -> float:
        return sum(s.transfer_bytes for s in self.segments)

    @property
    def exposed_misc_cycles(self) -> float:
        return sum(s.exposed_misc_cycles for s in self.segments)

    def segment(self, name: str) -> Segment:
        for s in self.segments:
            if s.name == name:
                return s
        raise ScheduleError(f"no segment named {name!r}")


@dataclass
class BatchSchedule:
    """All segments of one *batched* decode step.

    Weight-streaming segments appear once (the stream is shared by every
    sequence in the batch); attention KV segments appear per member, each
    at that sequence's own context.  ``contexts[i]`` is the number of
    cached tokens of batch member ``i``.
    """

    mode: str
    contexts: tuple[int, ...]
    segments: list[Segment] = field(default_factory=list)

    @property
    def batch(self) -> int:
        return len(self.contexts)

    @property
    def total_cycles(self) -> float:
        return sum(s.cycles for s in self.segments)

    @property
    def total_transfer_bytes(self) -> float:
        return sum(s.transfer_bytes for s in self.segments)

    @property
    def exposed_misc_cycles(self) -> float:
        return sum(s.exposed_misc_cycles for s in self.segments)

    def segment(self, name: str) -> Segment:
        for s in self.segments:
            if s.name == name:
                return s
        raise ScheduleError(f"no segment named {name!r}")


class TokenScheduler:
    """Builds :class:`TokenSchedule` objects for decode steps.

    ``tp > 1`` schedules ONE shard of a tensor-parallel group
    (Megatron-style): Q/K/V, gate and up are column-parallel (heads and
    intermediate channels divided across shards), O and down are
    row-parallel (their input dimension divided), and the LM head is
    split over vocabulary rows.  Norm weights and the embedding row are
    replicated, so only ``1/tp`` of the streamed weights — but the full
    misc/norm work — lands on each shard.  Interconnect time for the
    partial-sum reductions is charged separately by
    :mod:`repro.cluster.interconnect`.
    """

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 mcu: Mcu | None = None, vpu: VpuSpec | None = None,
                 spu: SpuModel | None = None, tp: int = 1) -> None:
        if tp < 1:
            raise ScheduleError(f"tensor-parallel degree must be >= 1: {tp}")
        if tp > 1 and (model.num_heads % tp or model.kv_heads % tp
                       or model.hidden_size % tp
                       or model.intermediate_size % tp
                       or model.vocab_size % tp):
            raise ScheduleError(
                f"{model.name}: heads {model.num_heads}/{model.kv_heads}, "
                f"hidden {model.hidden_size}, intermediate "
                f"{model.intermediate_size} and vocab {model.vocab_size} "
                f"must all divide tp={tp}")
        self.model = model
        self.quant = quant
        self.tp = tp
        self.mcu = mcu if mcu is not None else Mcu()
        self.vpu = vpu if vpu is not None else VpuSpec()
        self.spu = spu if spu is not None else SpuModel()
        self.pipeline = AttentionPipeline(model, quant, self.mcu, self.vpu,
                                          self.spu, tp=tp)

    # -- helpers ---------------------------------------------------------------

    def _tiles(self, length: int) -> int:
        return -(-length // self.vpu.lanes)

    def _proj_segment(self, name: str, out_rows: int, in_cols: int,
                      hidden_misc: float = 0.0, mode: str = "fused",
                      batch: int = 1) -> Segment:
        """Weight-streamed projection: the stream is charged once, the
        per-token compute and hidden misc once per batch member."""
        n_bytes = out_rows * in_cols * self.quant.effective_weight_bits / 8
        transfer = self.mcu.stream_transfer(n_bytes).cycles
        compute = batch * out_rows * self._tiles(in_cols)
        dense = max(transfer, compute)
        misc = batch * hidden_misc
        if mode == "fused":
            exposed = max(0.0, misc - dense)
        else:
            exposed = misc
        return Segment(name, dense + exposed, n_bytes, exposed)

    # -- public API --------------------------------------------------------------

    def attention_segment(self, layer: int, context: int,
                          mode: str) -> Segment:
        report = self.pipeline.schedule(context, mode)
        m, q = self.model, self.quant
        weight_bytes = m.attention_params() * q.effective_weight_bits / 8 \
            / self.tp
        kv_read = (2 * context * m.kv_dim * q.kv_bits / 8
                   + 2 * context * m.kv_heads * q.kv_pack_bits / 8) / self.tp
        kv_write = (2 * m.kv_dim * q.kv_bits / 8
                    + 2 * m.kv_heads * q.kv_pack_bits / 8) / self.tp
        return Segment(f"layer{layer}.attn", report.total_cycles,
                       weight_bytes + kv_read + kv_write,
                       report.exposed_misc_cycles)

    def mlp_segments(self, layer: int, mode: str,
                     batch: int = 1) -> list[Segment]:
        m = self.model
        h, inter = m.hidden_size, m.intermediate_size // self.tp
        segs = []
        # Post-attention RMSNorm: square sum came from the DOT engine; the
        # normalize pass hides under the gate/up weight stream.
        norm = self.spu.rmsnorm_cycles(h, square_sum_free=True)
        if m.gated_mlp:
            segs.append(self._proj_segment(f"layer{layer}.mlp.gate", inter, h,
                                           hidden_misc=norm, mode=mode,
                                           batch=batch))
            silu = self.spu.silu_cycles(inter)
            segs.append(self._proj_segment(f"layer{layer}.mlp.up", inter, h,
                                           hidden_misc=silu, mode=mode,
                                           batch=batch))
        else:
            segs.append(self._proj_segment(f"layer{layer}.mlp.up", inter, h,
                                           hidden_misc=norm, mode=mode,
                                           batch=batch))
            silu = self.spu.silu_cycles(inter)
        down_misc = self.spu.residual_cycles(h)
        if not m.gated_mlp:
            down_misc += silu
        segs.append(self._proj_segment(f"layer{layer}.mlp.down", h, inter,
                                       hidden_misc=down_misc, mode=mode,
                                       batch=batch))
        return segs

    def batched_attention_segment(self, layer: int, contexts: Sequence[int],
                                  mode: str,
                                  fetched: Sequence[int] | None = None,
                                  ) -> Segment:
        """One layer's attention for a whole batch (Fig. 2 split, batched).

        The Q/K/V/O weight slices stream from DRAM once and serve every
        sequence (compute scales with the batch); the KV-history DOT
        stages are inherently per sequence, each at its own context, and
        so is the misc exposure.

        ``fetched[i]`` is the number of sequence *i*'s context tokens that
        must actually stream from DRAM this step.  Under a paged cache
        with shared prefixes, blocks resident for an earlier batch member
        are served from the on-chip staging buffer, so the sharing member
        fetches fewer tokens than it attends over (``fetched[i] <=
        contexts[i]``); the QK/AV compute still covers the full context.
        """
        m, q = self.model, self.quant
        batch = len(contexts)
        d = m.head_dim
        group = m.num_heads // m.kv_heads
        tiles_d = self._tiles(d)

        def weight_stage(out_rows: int, copies: int,
                         in_cols: int | None = None) -> float:
            if in_cols is None:
                in_cols = m.hidden_size
            n_bytes = out_rows * in_cols * q.effective_weight_bits / 8
            transfer = self.mcu.stream_transfer(n_bytes).cycles
            compute = batch * out_rows * self._tiles(in_cols)
            return copies * max(transfer, compute)

        cycles = 0.0
        if mode == "fused":
            # Head-wise slices: Q per local head, K/V per local KV head,
            # the (row-parallel) O slice once.
            cycles += weight_stage(d, m.num_heads // self.tp)
            cycles += 2 * weight_stage(d, m.kv_heads // self.tp)
            cycles += weight_stage(m.hidden_size, 1,
                                   in_cols=m.hidden_size // self.tp)
        else:
            # Coarse: whole-matrix projections (this shard's slices).
            cycles += weight_stage(m.hidden_size // self.tp, 1)
            cycles += 2 * weight_stage(m.kv_dim // self.tp, 1)
            cycles += weight_stage(m.hidden_size, 1,
                                   in_cols=m.hidden_size // self.tp)

        if fetched is None:
            fetched = contexts
        if len(fetched) != len(contexts):
            raise ScheduleError(
                f"fetched has {len(fetched)} entries for "
                f"{len(contexts)} contexts")
        weight_bytes = m.attention_params() * q.effective_weight_bits / 8 \
            / self.tp
        kv_bytes = 0.0
        exposed = 0.0
        for ctx, fetch in zip(contexts, fetched):
            if not 0 <= fetch <= ctx:
                raise ScheduleError(
                    f"fetched tokens {fetch} outside [0, {ctx}]")
            if fetch > 0:
                payload = fetch * d * q.kv_bits / 8
                packs = fetch * q.kv_pack_bits / 8
                kv_tx = self.mcu.stream_transfer(payload + packs).cycles \
                    / group
            else:
                kv_tx = 0.0
            # QK dot + weighted-V accumulation for every local head of
            # this sequence; heads of one GQA group share the history
            # stream and the compute always spans the full context.
            cycles += 2 * (m.num_heads // self.tp) \
                * max(kv_tx, (ctx + 1) * tiles_d)
            exposed += self.pipeline.schedule(ctx, mode).exposed_misc_cycles
            kv_bytes += (2 * fetch * m.kv_dim * q.kv_bits / 8
                         + 2 * fetch * m.kv_heads * q.kv_pack_bits / 8
                         + 2 * m.kv_dim * q.kv_bits / 8
                         + 2 * m.kv_heads * q.kv_pack_bits / 8) / self.tp
        return Segment(f"layer{layer}.attn", cycles + exposed,
                       weight_bytes + kv_bytes, exposed)

    def build(self, context: int, mode: str = "fused") -> TokenSchedule:
        """Schedule one decode step with ``context`` cached tokens."""
        if mode not in ("fused", "coarse"):
            raise ScheduleError(f"unknown mode {mode!r}")
        m, q = self.model, self.quant
        sched = TokenSchedule(mode=mode, context=context)

        # Embedding row fetch (one row, FP16) — a short burst.
        row_bytes = m.hidden_size * q.activation_bits / 8
        emb = self.mcu.stream_transfer(row_bytes)
        sched.segments.append(Segment("embedding", emb.cycles, row_bytes))

        for layer in range(m.num_layers):
            sched.segments.append(self.attention_segment(layer, context, mode))
            sched.segments.extend(self.mlp_segments(layer, mode))

        # Final RMSNorm is serial before the LM head in both modes (the
        # logits projection cannot start without the normalized vector).
        final_norm = self.spu.rmsnorm_cycles(m.hidden_size,
                                             square_sum_free=True)
        sched.segments.append(Segment("final_norm", final_norm, 0.0,
                                      exposed_misc_cycles=final_norm))

        sched.segments.append(self._proj_segment(
            "lm_head", m.vocab_size // self.tp, m.hidden_size, mode=mode))
        return sched

    def build_batched(self, contexts: Sequence[int],
                      mode: str = "fused",
                      fetched: Sequence[int] | None = None) -> BatchSchedule:
        """Schedule one decode step for a batch of concurrent sequences.

        Each entry of ``contexts`` is one sequence's cached-token count.
        The quantized weight stream — the dominant cost of embedded decode
        — is charged once for the whole batch; per-sequence work (KV
        history, misc ops, embedding row, final norm) is charged per
        member.  ``build_batched([ctx])`` totals equal ``build(ctx)``.

        ``fetched`` (optional, defaults to ``contexts``) gives the KV
        tokens each member actually streams from DRAM — see
        :meth:`batched_attention_segment` for the paged/shared-prefix
        semantics.
        """
        if mode not in ("fused", "coarse"):
            raise ScheduleError(f"unknown mode {mode!r}")
        if not contexts:
            raise ScheduleError("batched schedule needs at least one context")
        if any(c < 0 for c in contexts):
            raise ScheduleError(f"negative context in batch: {list(contexts)}")
        m, q = self.model, self.quant
        batch = len(contexts)
        sched = BatchSchedule(mode=mode, contexts=tuple(contexts))

        # One embedding row fetch per sequence.
        row_bytes = m.hidden_size * q.activation_bits / 8
        emb = self.mcu.stream_transfer(row_bytes)
        sched.segments.append(Segment("embedding", batch * emb.cycles,
                                      batch * row_bytes))

        for layer in range(m.num_layers):
            sched.segments.append(
                self.batched_attention_segment(layer, contexts, mode,
                                               fetched))
            sched.segments.extend(self.mlp_segments(layer, mode, batch=batch))

        # The final RMSNorm stays serial per sequence (each logits
        # projection input must be normalized before its head pass).
        final_norm = self.spu.rmsnorm_cycles(m.hidden_size,
                                             square_sum_free=True)
        sched.segments.append(Segment("final_norm", batch * final_norm, 0.0,
                                      exposed_misc_cycles=batch * final_norm))

        sched.segments.append(self._proj_segment(
            "lm_head", m.vocab_size // self.tp, m.hidden_size, mode=mode,
            batch=batch))
        return sched


def build_token_schedule(model: ModelConfig, quant: QuantConfig,
                         context: int, mode: str = "fused") -> TokenSchedule:
    """Convenience wrapper: schedule one decode step with default units."""
    return TokenScheduler(model, quant).build(context, mode)
