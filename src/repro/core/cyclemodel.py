"""Per-token cycle model: token/s and bandwidth utilization vs context.

Combines the token scheduler (dense segments, hidden/exposed misc) with
the platform clock to produce the numbers of Table II's "Ours" row:
decode speed around 4.9 token/s and ~85% bandwidth utilization on the
KV260, decaying slowly with context as KV traffic grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..errors import SimulationError
from .analytical import theoretical_tokens_per_s
from .mcu import Mcu
from .scheduler import TokenScheduler, TokenSchedule
from .spu import SpuModel
from .vpu import VpuSpec


@dataclass(frozen=True)
class TokenCycles:
    """Cycle-model output for one decode step."""

    context: int
    mode: str
    cycles: float
    tokens_per_s: float
    utilization: float
    transfer_bytes: float
    exposed_misc_cycles: float


class CycleModel:
    """Evaluates decode performance across contexts and pipeline modes."""

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260,
                 vpu: VpuSpec | None = None,
                 spu: SpuModel | None = None,
                 mcu: Mcu | None = None) -> None:
        if platform.pl_freq_hz <= 0:
            raise SimulationError(
                f"platform {platform.name} has no PL clock; cycle model "
                "needs an FPGA platform"
            )
        self.model = model
        self.quant = quant
        self.platform = platform
        if mcu is None:
            from ..memory.axi import AxiPortGroup
            from ..memory.ddr import DdrTimingParams

            axi = AxiPortGroup(n_ports=platform.axi_ports,
                               port_bits=platform.axi_port_bits,
                               freq_hz=platform.pl_freq_hz)
            ddr = DdrTimingParams(
                peak_bytes_per_s=platform.bandwidth_bytes_per_s)
            mcu = Mcu(axi, ddr)
        self.scheduler = TokenScheduler(model, quant, mcu, vpu, spu)

    def token_schedule(self, context: int,
                       mode: str = "fused") -> TokenSchedule:
        return self.scheduler.build(context, mode)

    def decode_step(self, context: int, mode: str = "fused") -> TokenCycles:
        """Cycle-model one decode step with ``context`` cached tokens."""
        sched = self.token_schedule(context, mode)
        cycles = sched.total_cycles
        tps = self.platform.pl_freq_hz / cycles
        ceiling = theoretical_tokens_per_s(self.model, self.platform,
                                           self.quant.weight_bits)
        return TokenCycles(
            context=context,
            mode=mode,
            cycles=cycles,
            tokens_per_s=tps,
            utilization=tps / ceiling,
            transfer_bytes=sched.total_transfer_bytes,
            exposed_misc_cycles=sched.exposed_misc_cycles,
        )

    def context_sweep(self, contexts, mode: str = "fused",
                      ) -> list[TokenCycles]:
        return [self.decode_step(ctx, mode) for ctx in contexts]

    def average_decode(self, prompt_len: int, n_tokens: int,
                       mode: str = "fused") -> TokenCycles:
        """Average over a generation run (context grows every step)."""
        if n_tokens <= 0:
            raise SimulationError("n_tokens must be positive")
        steps = [self.decode_step(prompt_len + i, mode)
                 for i in range(n_tokens)]
        cycles = sum(s.cycles for s in steps) / n_tokens
        tps = self.platform.pl_freq_hz / cycles
        ceiling = theoretical_tokens_per_s(self.model, self.platform,
                                           self.quant.weight_bits)
        return TokenCycles(
            context=prompt_len + n_tokens // 2,
            mode=mode,
            cycles=cycles,
            tokens_per_s=tps,
            utilization=tps / ceiling,
            transfer_bytes=sum(s.transfer_bytes for s in steps) / n_tokens,
            exposed_misc_cycles=sum(s.exposed_misc_cycles
                                    for s in steps) / n_tokens,
        )

    def prefill_cycles(self, prompt_len: int) -> float:
        """TTFT cycles for the bandwidth-area-balanced engine.

        The simple DOT engine has no weight reuse across tokens, so the
        prefill streams the full weight set once per prompt token — the
        deliberate prefill sacrifice of Sec. VI-B.
        """
        if prompt_len <= 0:
            raise SimulationError("prompt_len must be positive")
        return sum(self.token_schedule(pos, "fused").total_cycles
                   for pos in range(prompt_len))
