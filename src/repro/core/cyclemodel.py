"""Per-token cycle model: token/s and bandwidth utilization vs context.

Combines the token scheduler (dense segments, hidden/exposed misc) with
the platform clock to produce the numbers of Table II's "Ours" row:
decode speed around 4.9 token/s and ~85% bandwidth utilization on the
KV260, decaying slowly with context as KV traffic grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..errors import SimulationError
from .analytical import theoretical_tokens_per_s
from .mcu import Mcu
from .scheduler import BatchSchedule, TokenScheduler, TokenSchedule
from .spu import SpuModel
from .vpu import VpuSpec


@dataclass(frozen=True)
class TokenCycles:
    """Cycle-model output for one decode step."""

    context: int
    mode: str
    cycles: float
    tokens_per_s: float
    utilization: float
    transfer_bytes: float
    exposed_misc_cycles: float


@dataclass(frozen=True)
class BatchCycles:
    """Cycle-model output for one *batched* decode step.

    ``aggregate_tokens_per_s`` counts one token per batch member per step;
    ``utilization`` compares it against the single-sequence bandwidth
    ceiling, so it exceeds 1.0 exactly when weight-stream amortization
    pays off.
    """

    contexts: tuple[int, ...]
    mode: str
    cycles: float
    aggregate_tokens_per_s: float
    per_sequence_tokens_per_s: float
    utilization: float
    transfer_bytes: float
    exposed_misc_cycles: float

    @property
    def batch(self) -> int:
        return len(self.contexts)


class CycleModel:
    """Evaluates decode performance across contexts and pipeline modes."""

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260,
                 vpu: VpuSpec | None = None,
                 spu: SpuModel | None = None,
                 mcu: Mcu | None = None, tp: int = 1) -> None:
        if platform.pl_freq_hz <= 0:
            raise SimulationError(
                f"platform {platform.name} has no PL clock; cycle model "
                "needs an FPGA platform"
            )
        self.model = model
        self.quant = quant
        self.platform = platform
        self.tp = tp
        if mcu is None:
            from ..memory.axi import AxiPortGroup
            from ..memory.ddr import DdrTimingParams

            axi = AxiPortGroup(n_ports=platform.axi_ports,
                               port_bits=platform.axi_port_bits,
                               freq_hz=platform.pl_freq_hz)
            ddr = DdrTimingParams(
                peak_bytes_per_s=platform.bandwidth_bytes_per_s)
            mcu = Mcu(axi, ddr)
        self.scheduler = TokenScheduler(model, quant, mcu, vpu, spu, tp=tp)

    def token_schedule(self, context: int,
                       mode: str = "fused") -> TokenSchedule:
        return self.scheduler.build(context, mode)

    def decode_step(self, context: int, mode: str = "fused") -> TokenCycles:
        """Cycle-model one decode step with ``context`` cached tokens."""
        sched = self.token_schedule(context, mode)
        cycles = sched.total_cycles
        tps = self.platform.pl_freq_hz / cycles
        ceiling = theoretical_tokens_per_s(self.model, self.platform,
                                           self.quant.weight_bits)
        return TokenCycles(
            context=context,
            mode=mode,
            cycles=cycles,
            tokens_per_s=tps,
            utilization=tps / ceiling,
            transfer_bytes=sched.total_transfer_bytes,
            exposed_misc_cycles=sched.exposed_misc_cycles,
        )

    def batched_token_schedule(self, contexts: Sequence[int],
                               mode: str = "fused",
                               fetched: Sequence[int] | None = None,
                               ) -> BatchSchedule:
        return self.scheduler.build_batched(contexts, mode, fetched)

    def batched_decode_step(self, contexts: Sequence[int],
                            mode: str = "fused",
                            fetched: Sequence[int] | None = None,
                            ) -> BatchCycles:
        """Cycle-model one decode step shared by concurrent sequences.

        The quantized weight stream is read once per step regardless of
        batch size (the paper's dominant cost, amortized); KV traffic and
        misc work scale per member.  ``fetched`` caps each member's KV
        stream at its *resident-block* traffic (paged KV with shared
        prefixes fetches a shared block once per batch).
        """
        sched = self.batched_token_schedule(contexts, mode, fetched)
        cycles = sched.total_cycles
        per_seq = self.platform.pl_freq_hz / cycles
        aggregate = sched.batch * per_seq
        ceiling = theoretical_tokens_per_s(self.model, self.platform,
                                           self.quant.weight_bits)
        return BatchCycles(
            contexts=sched.contexts,
            mode=mode,
            cycles=cycles,
            aggregate_tokens_per_s=aggregate,
            per_sequence_tokens_per_s=per_seq,
            utilization=aggregate / ceiling,
            transfer_bytes=sched.total_transfer_bytes,
            exposed_misc_cycles=sched.exposed_misc_cycles,
        )

    def batch_sweep(self, batches: Sequence[int], context: int,
                    mode: str = "fused") -> list[BatchCycles]:
        """Throughput-vs-batch curve at a fixed per-sequence context."""
        return [self.batched_decode_step([context] * b, mode)
                for b in batches]

    def context_sweep(self, contexts, mode: str = "fused",
                      ) -> list[TokenCycles]:
        return [self.decode_step(ctx, mode) for ctx in contexts]

    def average_decode(self, prompt_len: int, n_tokens: int,
                       mode: str = "fused") -> TokenCycles:
        """Average over a generation run (context grows every step)."""
        if n_tokens <= 0:
            raise SimulationError("n_tokens must be positive")
        steps = [self.decode_step(prompt_len + i, mode)
                 for i in range(n_tokens)]
        cycles = sum(s.cycles for s in steps) / n_tokens
        tps = self.platform.pl_freq_hz / cycles
        ceiling = theoretical_tokens_per_s(self.model, self.platform,
                                           self.quant.weight_bits)
        return TokenCycles(
            context=prompt_len + n_tokens // 2,
            mode=mode,
            cycles=cycles,
            tokens_per_s=tps,
            utilization=tps / ceiling,
            transfer_bytes=sum(s.transfer_bytes for s in steps) / n_tokens,
            exposed_misc_cycles=sum(s.exposed_misc_cycles
                                    for s in steps) / n_tokens,
        )

    def prefill_cycles(self, prompt_len: int, start: int = 0) -> float:
        """TTFT cycles for the bandwidth-area-balanced engine.

        The simple DOT engine has no weight reuse across tokens, so the
        prefill streams the full weight set once per prompt token — the
        deliberate prefill sacrifice of Sec. VI-B.  ``start`` skips the
        leading positions whose K/V a shared prefix already provides.
        """
        if prompt_len <= 0:
            raise SimulationError("prompt_len must be positive")
        if not 0 <= start < prompt_len:
            raise SimulationError(
                f"prefill start {start} outside prompt of {prompt_len}")
        return sum(self.token_schedule(pos, "fused").total_cycles
                   for pos in range(start, prompt_len))
