"""Prefill engines: the deliberate trade of Sec. VI-B, quantified.

The paper implements a "bandwidth-area balanced" DOT engine that has no
weight reuse: during prefill it restreams the full weight set once per
prompt token, so TTFT grows linearly with prompt length.  The rejected
alternative — a matrix/systolic engine (the paper cites its own FPL'24
work) — would reuse each streamed weight across the whole prompt batch at
the cost of more DSPs and buffers, but gains nothing in the decode phase
where bandwidth is the wall.

Both engines are modelled here so the trade is a number, not an argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..errors import SimulationError
from .cyclemodel import CycleModel
from .resources import FP16_MULTIPLIER, FP16_TREE_ADDER, UnitCost, estimate_vpu


@dataclass(frozen=True)
class PrefillReport:
    """TTFT and engine cost for one prefill strategy."""

    engine: str
    prompt_len: int
    ttft_s: float
    decode_tokens_per_s: float
    extra_dsp: float


class DotEnginePrefill:
    """The paper's engine: token-serial prefill, perfect decode balance."""

    name = "dot-engine (paper)"

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260) -> None:
        self.model = model
        self.platform = platform
        self.cycles = CycleModel(model, quant, platform)

    def report(self, prompt_len: int, decode_context: int = 512,
               ) -> PrefillReport:
        if prompt_len <= 0:
            raise SimulationError("prompt_len must be positive")
        ttft = self.cycles.prefill_cycles(prompt_len) / self.platform.pl_freq_hz
        decode = self.cycles.decode_step(decode_context).tokens_per_s
        return PrefillReport(self.name, prompt_len, ttft, decode, 0.0)


class BatchEnginePrefill:
    """Hypothetical weight-reuse engine: streams weights once per prefill.

    Modelled as the same 128-lane stream consumer with a ``batch``-wide
    activation register file: every dequantized weight multiplies
    ``batch`` activations, so prefill needs one weight pass per
    ceil(prompt / batch) and roughly ``batch`` times the multipliers.
    Decode speed is unchanged — it is bandwidth-bound either way, which
    is exactly why the paper refuses to pay the area.
    """

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, batch: int = 8) -> None:
        if batch <= 0:
            raise SimulationError("batch must be positive")
        self.model = model
        self.platform = platform
        self.batch = batch
        self.cycles = CycleModel(model, quant, platform)
        self.name = f"batch-{batch} matrix engine"

    def extra_dsp(self) -> float:
        """DSPs beyond the paper's VPU: (batch-1) more MAC columns."""
        lanes = 128
        one_column = FP16_MULTIPLIER.scaled(lanes) + \
            FP16_TREE_ADDER.scaled(lanes - 1)
        return (self.batch - 1) * one_column.dsp

    def report(self, prompt_len: int, decode_context: int = 512,
               ) -> PrefillReport:
        if prompt_len <= 0:
            raise SimulationError("prompt_len must be positive")
        passes = -(-prompt_len // self.batch)
        single_pass = self.cycles.token_schedule(0).total_cycles
        # KV traffic still accumulates across prefill positions.
        kv_extra = sum(
            self.cycles.token_schedule(pos).total_cycles - single_pass
            for pos in range(0, prompt_len, max(1, prompt_len // 8))
        ) * max(1, prompt_len // 8) / self.batch
        ttft = (passes * single_pass + kv_extra) / self.platform.pl_freq_hz
        decode = self.cycles.decode_step(decode_context).tokens_per_s
        return PrefillReport(self.name, prompt_len, ttft, decode,
                             self.extra_dsp())


def compare_prefill_engines(model: ModelConfig, quant: QuantConfig,
                            prompt_len: int = 64, batch: int = 8,
                            platform: PlatformConfig = KV260,
                            ) -> dict[str, PrefillReport]:
    """The Sec. VI-B trade in numbers: TTFT gain vs DSP cost."""
    dot = DotEnginePrefill(model, quant, platform).report(prompt_len)
    batch_engine = BatchEnginePrefill(model, quant, platform, batch)
    batched = batch_engine.report(prompt_len)
    return {"dot": dot, "batch": batched}


def dsp_budget_exceeded(batch: int, device_dsp: int = 1248) -> bool:
    """Would a batch engine's multiplier array blow the XCK26's DSPs?"""
    base = estimate_vpu(128)
    one_column: UnitCost = FP16_MULTIPLIER.scaled(128) + \
        FP16_TREE_ADDER.scaled(127)
    total = base.dsp + (batch - 1) * one_column.dsp
    return total > device_dsp
