"""Design-space exploration: the PPA trade the paper navigates.

Sweeps the accelerator's structural parameters — VPU lanes, AXI ports, PL
frequency — and evaluates each point for decode speed (cycle model), FPGA
resources (Table I model), power, and feasibility on the device budget.
The paper's configuration (128 lanes, 4 ports, 300 MHz) should fall on the
Pareto frontier: the slowest configuration that still saturates DDR.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..errors import ConfigError
from .cyclemodel import CycleModel
from .power import estimate_power
from .resources import ResourceReport, estimate_resources
from .vpu import VpuSpec


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    lanes: int
    axi_ports: int
    freq_mhz: float
    tokens_per_s: float
    utilization: float
    power_w: float
    lut_util: float
    dsp_util: float
    fits: bool

    @property
    def tokens_per_joule(self) -> float:
        return self.tokens_per_s / self.power_w


def evaluate_design(model: ModelConfig, quant: QuantConfig,
                    lanes: int = 128, axi_ports: int = 4,
                    freq_hz: float = 300e6, context: int = 512,
                    base_platform: PlatformConfig = KV260) -> DesignPoint:
    """Evaluate one (lanes, ports, frequency) configuration."""
    if freq_hz <= 0:
        raise ConfigError("frequency must be positive")
    platform = replace(base_platform,
                       name=f"{base_platform.name}-{lanes}l{axi_ports}p",
                       pl_freq_hz=freq_hz, axi_ports=axi_ports)
    cm = CycleModel(model, quant, platform, vpu=VpuSpec(lanes=lanes))
    step = cm.decode_step(context)

    resources: ResourceReport = estimate_resources(lanes=lanes,
                                                   axi_ports=axi_ports)
    util = resources.utilization()
    return DesignPoint(
        lanes=lanes,
        axi_ports=axi_ports,
        freq_mhz=freq_hz / 1e6,
        tokens_per_s=step.tokens_per_s,
        utilization=step.utilization,
        power_w=estimate_power(resources, freq_hz),
        lut_util=util["lut"],
        dsp_util=util["dsp"],
        fits=resources.fits(),
    )


def sweep_design_space(model: ModelConfig, quant: QuantConfig,
                       lanes_options=(64, 128, 256),
                       port_options=(2, 4),
                       freq_options=(200e6, 300e6),
                       context: int = 512) -> list[DesignPoint]:
    """Full-factorial sweep."""
    points = []
    for lanes in lanes_options:
        for ports in port_options:
            for freq in freq_options:
                points.append(evaluate_design(
                    model, quant, lanes=lanes, axi_ports=ports,
                    freq_hz=freq, context=context))
    return points


def pareto_frontier(points: list[DesignPoint]) -> list[DesignPoint]:
    """Feasible points not dominated on (tokens/s up, power down).

    A point is dominated when another feasible point is at least as fast
    and at least as frugal, and strictly better on one axis.
    """
    feasible = [p for p in points if p.fits]
    frontier = []
    for p in feasible:
        dominated = any(
            q is not p
            and q.tokens_per_s >= p.tokens_per_s
            and q.power_w <= p.power_w
            and (q.tokens_per_s > p.tokens_per_s or q.power_w < p.power_w)
            for q in feasible
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.tokens_per_s)


def paper_design_point(model: ModelConfig, quant: QuantConfig,
                       context: int = 512) -> DesignPoint:
    """The configuration the paper ships: 128 lanes, 4 ports, 300 MHz."""
    return evaluate_design(model, quant, lanes=128, axi_ports=4,
                           freq_hz=300e6, context=context)
