"""MCU command-stream generation (Fig. 5A's CmdGen + Cmd Split).

For each decode step the PS writes ``(token_index, is_prefill)`` over
AXI-Lite; the MCU's command generator then walks the memory image in
stream order and emits one MM2S descriptor per region read (weights, KV
history) and S2MM descriptors for KV writebacks, splitting each four ways
across the AXI ports.

This module produces that descriptor list from a :class:`MemoryImage`,
which lets tests assert two fidelity properties the design depends on:

* coverage — the descriptors read exactly the bytes the traffic model
  says a token needs, each region exactly once;
* sequentiality — within every region the stream is one consecutive
  burst (the premise of the Fig. 4 formats).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig, QuantConfig
from ..errors import ScheduleError
from ..packing.memimage import MemoryImage


@dataclass(frozen=True)
class Descriptor:
    """One datamover command."""

    region: str
    address: int
    size: int
    is_write: bool = False


class CommandGenerator:
    """Generates the per-token descriptor stream from a memory image."""

    def __init__(self, image: MemoryImage) -> None:
        self.image = image
        self.model: ModelConfig = image.model
        self.quant: QuantConfig = image.quant

    def _alloc(self, name: str):
        try:
            return self.image.allocations[name]
        except KeyError:
            raise ScheduleError(f"memory image has no region {name!r}") from None

    def _layer_projections(self) -> list[str]:
        names = ["wq", "wk", "wv", "wo"]
        if self.model.gated_mlp:
            names.append("w_gate")
        names += ["w_up", "w_down"]
        return names

    def decode_step_descriptors(self, token_index: int,
                                context: int) -> list[Descriptor]:
        """All descriptors for decoding one token.

        ``context`` cached tokens are read back; the new token's K/V codes
        are written.  Scale-zero pack writes are batched by the FIFO and
        only leave the chip every 16 tokens, so they appear only when
        ``token_index % 16 == 0`` (and non-zero).
        """
        if context >= self.image.context:
            raise ScheduleError(
                f"context {context} exceeds the image's KV reservation "
                f"{self.image.context}"
            )
        m, q = self.model, self.quant
        out: list[Descriptor] = []

        emb = self._alloc("embedding")
        row_bytes = m.hidden_size * q.activation_bits // 8
        out.append(Descriptor("embedding", emb.start + token_index * row_bytes,
                              row_bytes))

        kv_token_bytes = 2 * m.kv_dim * q.kv_bits // 8
        for layer in range(m.num_layers):
            for proj in self._layer_projections():
                name = f"weights.layer{layer}.{proj}"
                alloc = self._alloc(name)
                out.append(Descriptor(name, alloc.start, alloc.size))
            kv = self._alloc(f"kv.layer{layer}")
            if context > 0:
                out.append(Descriptor(f"kv.layer{layer}", kv.start,
                                      context * kv_token_bytes))
            out.append(Descriptor(f"kv.layer{layer}",
                                  kv.start + context * kv_token_bytes,
                                  kv_token_bytes, is_write=True))

        head = self._alloc("weights.lm_head")
        out.append(Descriptor("weights.lm_head", head.start, head.size))
        norms = self._alloc("norms")
        out.append(Descriptor("norms", norms.start, norms.size))

        if token_index and token_index % 16 == 0:
            packs = self._alloc("kv.scale_zero")
            word_bytes = 64
            n_streams = 2 * m.num_layers * m.kv_heads
            out.append(Descriptor("kv.scale_zero",
                                  packs.start
                                  + (token_index // 16 - 1)
                                  * n_streams * word_bytes,
                                  n_streams * word_bytes, is_write=True))
        return out

    def prefill_descriptors(self, prompt_len: int) -> list[list[Descriptor]]:
        """Descriptor streams for a whole prefill pass.

        The DOT engine restreams the weight set per prompt token
        (Sec. VI-B's prefill sacrifice), so prefill is ``prompt_len``
        decode-shaped steps with growing context.
        """
        if prompt_len <= 0:
            raise ScheduleError("prompt_len must be positive")
        if prompt_len > self.image.context:
            raise ScheduleError(
                f"prompt of {prompt_len} exceeds the KV reservation "
                f"{self.image.context}"
            )
        return [self.decode_step_descriptors(pos, pos)
                for pos in range(prompt_len)]

    # -- fidelity checks -----------------------------------------------------

    def read_bytes(self, descriptors: list[Descriptor]) -> int:
        return sum(d.size for d in descriptors if not d.is_write)

    def write_bytes(self, descriptors: list[Descriptor]) -> int:
        return sum(d.size for d in descriptors if d.is_write)

    def check_bounds(self, descriptors: list[Descriptor]) -> None:
        """Every descriptor must stay inside its region's allocation."""
        for d in descriptors:
            alloc = self._alloc(d.region)
            if d.address < alloc.start or d.address + d.size > alloc.end:
                raise ScheduleError(
                    f"descriptor for {d.region!r} "
                    f"[{d.address:#x}, {d.address + d.size:#x}) escapes "
                    f"allocation [{alloc.start:#x}, {alloc.end:#x})"
                )
