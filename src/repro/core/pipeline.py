"""The fused head-wise attention pipeline (paper Fig. 3 and Sec. V-A).

The attention layer is where all the miscellaneous operations live, so it
is where the paper's "hide everything inside the dense computation" claim
must be demonstrated.  This module builds the per-head stage schedule:

    Q proj -> K proj -> DOT(Q, K-cache) -> V proj -> scaled-DOT(probs, V)

with the misc operations placed in their hiding windows:

* RoPE(Q) on the fly while Q streams out of the DOT engine,
* RoPE(K) likewise during the K projection,
* KV8 quantization of K and V as they are generated,
* softmax between the QK DOT and the weighted-V accumulation (its window
  is the V projection, which streams a full weight slice and is therefore
  long), and
* the residual add + square-sum during the output projection.

Every stage's duration is the max of its weight/KV transfer time (from the
MCU model) and its VPU issue time.  A misc op whose latency exceeds its
window contributes *exposed* cycles — the quantity the paper drives to
zero.  The coarse-grained mode (DFX-style: whole-matrix projections before
multi-head attention, misc ops serialized between stages) is the baseline
the Fig. 3 benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ModelConfig, QuantConfig
from ..errors import ScheduleError
from .mcu import Mcu
from .spu import SpuModel
from .vpu import VpuSpec


@dataclass(frozen=True)
class Stage:
    """One dense-compute stage of the pipeline."""

    name: str
    start: float
    transfer_cycles: float
    compute_cycles: float

    @property
    def duration(self) -> float:
        return max(self.transfer_cycles, self.compute_cycles)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class MiscPlacement:
    """A miscellaneous op and the dense window meant to hide it."""

    name: str
    cycles: float
    window_start: float
    window_end: float

    @property
    def window(self) -> float:
        return self.window_end - self.window_start

    @property
    def hidden(self) -> bool:
        return self.cycles <= self.window

    @property
    def exposed_cycles(self) -> float:
        return max(0.0, self.cycles - self.window)


@dataclass
class AttentionLayerReport:
    """Schedule and cycle totals for one attention layer at one context."""

    mode: str
    context: int
    stages: list[Stage] = field(default_factory=list)
    misc: list[MiscPlacement] = field(default_factory=list)

    @property
    def dense_cycles(self) -> float:
        return sum(s.duration for s in self.stages)

    @property
    def exposed_misc_cycles(self) -> float:
        return sum(m.exposed_cycles for m in self.misc)

    @property
    def serialized_misc_cycles(self) -> float:
        """All misc latency, as paid when nothing is overlapped."""
        return sum(m.cycles for m in self.misc)

    @property
    def total_cycles(self) -> float:
        return self.dense_cycles + self.exposed_misc_cycles

    @property
    def transfer_cycles(self) -> float:
        return sum(s.transfer_cycles for s in self.stages)

    def all_hidden(self) -> bool:
        return all(m.hidden for m in self.misc)


class AttentionPipeline:
    """Builds fused (Fig. 3) and coarse attention-layer schedules.

    ``tp > 1`` schedules ONE shard of a tensor-parallel group: the shard
    owns ``num_heads / tp`` query heads and ``kv_heads / tp`` KV heads
    (Megatron-style column-parallel Q/K/V), and its output projection is
    the row-parallel slice ``(hidden, hidden / tp)``.  The residual add
    still spans the full hidden vector — partial sums are combined by
    the interconnect (charged by :mod:`repro.cluster.interconnect`, not
    here).
    """

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 mcu: Mcu | None = None, vpu: VpuSpec | None = None,
                 spu: SpuModel | None = None,
                 online_softmax: bool = False, tp: int = 1) -> None:
        if tp < 1:
            raise ScheduleError(f"tensor-parallel degree must be >= 1: {tp}")
        if model.num_heads % tp or model.kv_heads % tp \
                or model.hidden_size % tp:
            raise ScheduleError(
                f"{model.name}: heads {model.num_heads}/{model.kv_heads} "
                f"and hidden {model.hidden_size} must divide tp={tp}")
        self.model = model
        self.quant = quant
        self.tp = tp
        self.mcu = mcu if mcu is not None else Mcu()
        self.vpu = vpu if vpu is not None else VpuSpec()
        self.spu = spu if spu is not None else SpuModel()
        # The three-pass softmax hides comfortably behind MHA's per-head
        # V-projection slices.  GQA models have no V slice on most heads,
        # so their softmax needs the online (two-pass) variant to vanish.
        self.online_softmax = online_softmax

    def _softmax_cycles(self, length: int) -> int:
        if self.online_softmax:
            return self.spu.online_softmax_cycles(length)
        return self.spu.softmax_cycles(length)

    # -- shared helpers -------------------------------------------------------

    def _tiles(self, length: int) -> int:
        return -(-length // self.vpu.lanes)

    def _weight_transfer(self, out_rows: int, in_cols: int) -> float:
        """Transfer cycles for a weight slice in the interleaved stream."""
        n_bytes = out_rows * in_cols * self.quant.effective_weight_bits / 8
        return self.mcu.stream_transfer(n_bytes).cycles

    def _kv_transfer(self, context: int) -> float:
        """Transfer cycles for one head's K (or V) history + packs."""
        if context == 0:
            return 0.0
        d = self.model.head_dim
        payload = context * d * self.quant.kv_bits / 8
        packs = context * self.quant.kv_pack_bits / 8
        return self.mcu.stream_transfer(payload + packs).cycles

    # -- fused schedule (Fig. 3) ------------------------------------------------

    def fused_schedule(self, context: int) -> AttentionLayerReport:
        """The paper's head-wise fused pipeline for one layer.

        ``context`` is the number of cached tokens (history length); the
        current token makes the attention span ``context + 1``.
        """
        if context < 0:
            raise ScheduleError(f"negative context {context}")
        m, q = self.model, self.quant
        d = m.head_dim
        group = m.num_heads // m.kv_heads
        report = AttentionLayerReport(mode="fused", context=context)

        # Heads of one GQA group share a K/V history; the history is read
        # once per group and buffered, so each head is charged its share.
        kv_tx = self._kv_transfer(context) / group if context else 0.0

        t = 0.0
        for head in range(m.num_heads // self.tp):
            leads_kv_group = head % group == 0

            q_proj = Stage("q_proj", t, self._weight_transfer(d, m.hidden_size),
                           d * self._tiles(m.hidden_size))
            t = q_proj.end
            report.stages.append(q_proj)

            if leads_kv_group:
                k_proj = Stage("k_proj", t,
                               self._weight_transfer(d, m.hidden_size),
                               d * self._tiles(m.hidden_size))
                t = k_proj.end
                report.stages.append(k_proj)
                # RoPE(Q) hides under the K projection; RoPE(K) and the K
                # quantization stream alongside K's own generation.
                report.misc.append(MiscPlacement(
                    "rope_q", self.spu.rope_cycles(d), q_proj.end, k_proj.end))
                report.misc.append(MiscPlacement(
                    "rope_k", self.spu.rope_cycles(d), q_proj.end, k_proj.end))
            else:
                # GQA: this head reuses the group's K; RoPE(Q) hides under
                # the history DOT below.
                k_proj = None

            qk = Stage("qk_dot", t, kv_tx,
                       (context + 1) * self._tiles(d))
            t = qk.end
            report.stages.append(qk)
            if k_proj is not None:
                # Quantization pass 1 (min/max) streams with K's own
                # generation; only pass 2 trails into the QK window.
                report.misc.append(MiscPlacement(
                    "quant_k", self.spu.quant_cycles(d), k_proj.start, qk.end))
            else:
                report.misc.append(MiscPlacement(
                    "rope_q", self.spu.rope_cycles(d), qk.start, qk.end))

            if leads_kv_group:
                v_proj = Stage("v_proj", t,
                               self._weight_transfer(d, m.hidden_size),
                               d * self._tiles(m.hidden_size))
                t = v_proj.end
                report.stages.append(v_proj)
                report.misc.append(MiscPlacement(
                    "quant_v", self.spu.quant_cycles(d), v_proj.start,
                    v_proj.end + context))

            av = Stage("av_dot", t, kv_tx,
                       (context + 1) * self._tiles(d))
            t = av.end
            report.stages.append(av)
            # Softmax passes stream with the pipeline: scores arrive
            # serially during the QK DOT (max/normalizer passes) and the
            # AV accumulation consumes probabilities serially (divide
            # pass), so the hiding window spans QK start to AV end plus
            # the submodule's fill depth (which overlaps the AV drain).
            report.misc.append(MiscPlacement(
                "softmax", self._softmax_cycles(context + 1),
                qk.start, av.end + self.spu.params.softmax_depth))

        o_proj = Stage("o_proj", t,
                       self._weight_transfer(m.hidden_size,
                                             m.hidden_size // self.tp),
                       m.hidden_size * self._tiles(m.hidden_size // self.tp))
        t = o_proj.end
        report.stages.append(o_proj)
        # Residual add + square-sum for the next RMSNorm stream with the
        # O-projection outputs (Sec. V-A, last stage of Fig. 3).
        report.misc.append(MiscPlacement(
            "residual_sqsum", self.spu.residual_cycles(m.hidden_size),
            o_proj.start, o_proj.end))
        return report

    # -- coarse schedule (DFX-style baseline) -----------------------------------

    def coarse_schedule(self, context: int) -> AttentionLayerReport:
        """Whole-matrix projections, then attention; misc serialized.

        Misc ops get zero-width windows: every cycle is exposed, which is
        how a coarse pipeline actually behaves between its stages.
        """
        if context < 0:
            raise ScheduleError(f"negative context {context}")
        m, q = self.model, self.quant
        d = m.head_dim
        report = AttentionLayerReport(mode="coarse", context=context)

        def misc(name: str, cycles: float, at: float) -> None:
            report.misc.append(MiscPlacement(name, cycles, at, at))

        t = 0.0
        for name, rows in (("q_proj", m.hidden_size // self.tp),
                           ("k_proj", m.kv_dim // self.tp),
                           ("v_proj", m.kv_dim // self.tp)):
            stage = Stage(name, t, self._weight_transfer(rows, m.hidden_size),
                          rows * self._tiles(m.hidden_size))
            t = stage.end
            report.stages.append(stage)

        misc("rope_q", m.num_heads // self.tp * self.spu.rope_cycles(d), t)
        misc("rope_k", m.kv_heads // self.tp * self.spu.rope_cycles(d), t)
        misc("quant_k", m.kv_heads // self.tp * self.spu.quant_cycles(d), t)
        misc("quant_v", m.kv_heads // self.tp * self.spu.quant_cycles(d), t)
        t += sum(p.cycles for p in report.misc)

        for head in range(m.num_heads // self.tp):
            qk = Stage("qk_dot", t, self._kv_transfer(context) /
                       (m.num_heads // m.kv_heads),
                       (context + 1) * self._tiles(d))
            t = qk.end
            report.stages.append(qk)
            misc("softmax", self._softmax_cycles(context + 1), t)
            t += self._softmax_cycles(context + 1)
            av = Stage("av_dot", t, self._kv_transfer(context) /
                       (m.num_heads // m.kv_heads),
                       (context + 1) * self._tiles(d))
            t = av.end
            report.stages.append(av)

        o_proj = Stage("o_proj", t,
                       self._weight_transfer(m.hidden_size,
                                             m.hidden_size // self.tp),
                       m.hidden_size * self._tiles(m.hidden_size // self.tp))
        t = o_proj.end
        report.stages.append(o_proj)
        misc("residual_sqsum", self.spu.residual_cycles(m.hidden_size), t)
        return report

    def schedule(self, context: int, mode: str = "fused",
                 ) -> AttentionLayerReport:
        if mode == "fused":
            return self.fused_schedule(context)
        if mode == "coarse":
            return self.coarse_schedule(context)
        raise ScheduleError(f"unknown pipeline mode {mode!r}")
