"""Top-level accelerator: functional pipeline + cycle model in one device.

:class:`Accelerator` is what the examples and the runtime session drive.
It pairs the hardware-equivalent functional model (exact tokens, for
models small enough to run) with the cycle model (exact timing, for any
model size), so a call to :meth:`decode` returns both the generated tokens
and a :class:`DecodePerf` with token/s and bandwidth utilization.

For LLaMA2-7B the functional side is optional (no checkpoint, and a 7B
numpy forward pass is pointless); ``Accelerator.analytical`` builds a
timing-only instance that reproduces the paper's headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..errors import SimulationError
from .cyclemodel import CycleModel, TokenCycles
from .resources import ResourceReport, estimate_resources
from .power import estimate_power


@dataclass
class DecodePerf:
    """Timing summary of one generation run."""

    prompt_len: int
    new_tokens: int
    prefill_cycles: float
    decode_cycles: list[float] = field(default_factory=list)
    freq_hz: float = 300e6
    theoretical_tokens_per_s: float = 0.0

    @property
    def ttft_s(self) -> float:
        """Time to first token (prefill latency, Fig. 2A)."""
        return self.prefill_cycles / self.freq_hz

    @property
    def mean_decode_cycles(self) -> float:
        if not self.decode_cycles:
            raise SimulationError("no decode steps recorded")
        return sum(self.decode_cycles) / len(self.decode_cycles)

    @property
    def tokens_per_s(self) -> float:
        return self.freq_hz / self.mean_decode_cycles

    def latency_percentile_s(self, percentile: float) -> float:
        """Per-token latency percentile (context growth skews the tail)."""
        from ..stats import percentile_nearest_rank

        if not self.decode_cycles:
            raise SimulationError("no decode steps recorded")
        return percentile_nearest_rank(self.decode_cycles, percentile) \
            / self.freq_hz

    @property
    def utilization(self) -> float:
        if self.theoretical_tokens_per_s <= 0:
            raise SimulationError("theoretical rate not set")
        return self.tokens_per_s / self.theoretical_tokens_per_s


class Accelerator:
    """The simulated KV260 LLM decode accelerator."""

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260,
                 functional_model=None, mode: str = "fused") -> None:
        self.model_config = model_config
        self.quant = quant
        self.platform = platform
        self.functional = functional_model
        self.mode = mode
        self.cycles = CycleModel(model_config, quant, platform)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def analytical(cls, model_config: ModelConfig, quant: QuantConfig,
                   platform: PlatformConfig = KV260,
                   mode: str = "fused") -> "Accelerator":
        """Timing-only instance (no functional weights)."""
        return cls(model_config, quant, platform, None, mode)

    @classmethod
    def from_quantized_weights(cls, qweights, platform: PlatformConfig = KV260,
                               mode: str = "fused") -> "Accelerator":
        """Full instance: functional pipeline + timing."""
        from ..model.quantized import QuantizedModel

        functional = QuantizedModel(qweights)
        return cls(qweights.config, qweights.quant, platform, functional, mode)

    # -- timing-only API ---------------------------------------------------------

    def decode_perf(self, context: int) -> TokenCycles:
        """Cycle-model one decode step at a context length."""
        return self.cycles.decode_step(context, self.mode)

    def theoretical_tokens_per_s(self) -> float:
        from .analytical import theoretical_tokens_per_s

        return theoretical_tokens_per_s(self.model_config, self.platform,
                                        self.quant.weight_bits)

    def resources(self) -> ResourceReport:
        """PL resource estimate for *this* platform's geometry.

        Lane count is derived from the platform's AXI bus and the weight
        bit-width (the bandwidth-matched engine of Sec. VI-B), so
        non-KV260 platforms report their own resources rather than the
        KV260's.
        """
        if self.platform.kind != "fpga" or self.platform.axi_ports <= 0:
            raise SimulationError(
                f"{self.platform.name} is not an FPGA platform; no PL "
                "resources to estimate")
        from .vpu import bandwidth_matched_lanes

        return estimate_resources(
            lanes=bandwidth_matched_lanes(self.platform,
                                          self.quant.weight_bits),
            axi_ports=self.platform.axi_ports)

    def power_w(self) -> float:
        return estimate_power(self.resources(), self.platform.pl_freq_hz)

    # -- functional + timing API ---------------------------------------------------

    def decode(self, prompt: list[int], max_new_tokens: int,
               sampler=None, eos_id: int | None = None,
               ) -> tuple[list[int], DecodePerf]:
        """Generate tokens on the functional model while timing each step.

        Requires a functional model (small synthetic configs); for
        timing-only studies of big models use :meth:`decode_perf`.

        When ``eos_id`` is given, a sampled EOS ends the run immediately:
        the EOS token is returned but never forwarded, so no decode step
        is charged for it — callers that strip EOS from the tokens see a
        perf record consistent with the text they kept.
        """
        if self.functional is None:
            raise SimulationError(
                "no functional model attached; build the accelerator with "
                "from_quantized_weights() or use decode_perf()"
            )
        if not prompt:
            raise SimulationError("prompt must not be empty")

        perf = DecodePerf(
            prompt_len=len(prompt),
            new_tokens=0,
            prefill_cycles=self.cycles.prefill_cycles(len(prompt)),
            freq_hz=self.platform.pl_freq_hz,
            theoretical_tokens_per_s=self.theoretical_tokens_per_s(),
        )

        logits, cache = self.functional.prefill(prompt)
        out: list[int] = []
        position = len(prompt)
        for _ in range(max_new_tokens):
            if position >= self.model_config.max_context:
                break
            token = (int(np.argmax(logits)) if sampler is None
                     else sampler.sample(logits))
            out.append(token)
            if eos_id is not None and token == eos_id:
                break
            step = self.cycles.decode_step(position, self.mode)
            perf.decode_cycles.append(step.cycles)
            logits = self.functional.decode_step(token, cache, position)
            position += 1
        perf.new_tokens = len(out)
        return out, perf
