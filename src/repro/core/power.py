"""Power model (paper Sec. VII-B: 6.57 W at 300 MHz from Vivado).

A first-order Vivado-style estimate: PS static + PL static + per-resource
dynamic coefficients scaled by clock frequency.  Coefficients are
calibrated so the Table I resource mix at 300 MHz lands on the paper's
6.57 W; the ablation value of the model is the *trend* (fewer lanes or a
slower clock -> proportionally less dynamic power).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .resources import ResourceReport, UnitCost

REFERENCE_FREQ_HZ = 300e6


@dataclass(frozen=True)
class PowerParams:
    """Calibrated power coefficients (watts, at 300 MHz)."""

    ps_static_w: float = 2.25       # A53 cluster + DDR controller/PHY
    pl_static_w: float = 0.45
    ddr_io_w: float = 0.30          # DDR4 interface activity
    lut_w: float = 25e-6
    ff_w: float = 6e-6
    dsp_w: float = 2.2e-3
    bram_w: float = 7e-3
    uram_w: float = 12e-3


def estimate_power(resources: ResourceReport | UnitCost,
                   freq_hz: float = REFERENCE_FREQ_HZ,
                   params: PowerParams | None = None) -> float:
    """Total watts for a resource mix at a clock frequency."""
    if freq_hz <= 0:
        raise ConfigError("frequency must be positive")
    p = params if params is not None else PowerParams()
    total = resources.total if isinstance(resources, ResourceReport) \
        else resources
    scale = freq_hz / REFERENCE_FREQ_HZ
    dynamic = (total.lut * p.lut_w + total.ff * p.ff_w + total.dsp * p.dsp_w
               + total.bram * p.bram_w + total.uram * p.uram_w) * scale
    return p.ps_static_w + p.pl_static_w + p.ddr_io_w * scale + dynamic


def tokens_per_joule(tokens_per_s: float, watts: float) -> float:
    """Energy efficiency of decoding."""
    if watts <= 0:
        raise ConfigError("power must be positive")
    return tokens_per_s / watts
