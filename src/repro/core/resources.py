"""FPGA resource model (paper Table I).

A bottom-up parametric estimate: each hardware unit (FP16 multiplier, tree
adder, AXI datamover, SPU submodule, ...) carries per-instance LUT / FF /
CARRY / DSP / BRAM / URAM costs, calibrated so the default configuration
(128 lanes, 4 AXI ports, full SPU) reproduces Table I.  Because the model
is structural, the ablation benchmarks can vary lane count or port count
and get the right *trends* (e.g. halving the lanes removes ~half the VPU
DSPs but not the MCU's BRAM).

Costs are calibration constants, not Vivado measurements; the reproduced
quantity is the breakdown's shape and the utilization percentages against
the KV260's XCK26 budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..errors import ConfigError


@dataclass(frozen=True)
class UnitCost:
    """Resource cost of one unit instance (or one fixed block)."""

    lut: float = 0.0
    ff: float = 0.0
    carry: float = 0.0
    dsp: float = 0.0
    bram: float = 0.0  # BRAM36 equivalents
    uram: float = 0.0

    def scaled(self, n: float) -> "UnitCost":
        return UnitCost(**{f.name: getattr(self, f.name) * n
                           for f in fields(self)})

    def __add__(self, other: "UnitCost") -> "UnitCost":
        return UnitCost(**{f.name: getattr(self, f.name) + getattr(other, f.name)
                           for f in fields(self)})


# XCK26 (KV260) device budget.
KV260_BUDGET = UnitCost(lut=117_120, ff=234_240, carry=14_640, dsp=1_248,
                        bram=144, uram=64)

# -- calibrated per-unit costs ------------------------------------------------

FP16_MULTIPLIER = UnitCost(lut=100, ff=150, carry=8, dsp=1)
FP16_TREE_ADDER = UnitCost(lut=120, ff=180, carry=8, dsp=1)
VPU_SCALER = UnitCost(lut=220, ff=320, carry=12, dsp=1)
VPU_ACCUMULATOR = UnitCost(lut=260, ff=340, carry=16, dsp=1)
VPU_DEQUANT = UnitCost(lut=3_000, ff=2_500, carry=60, dsp=9)
VPU_CONTROL = UnitCost(lut=2_360, ff=250, carry=2)

AXI_DATAMOVER = UnitCost(lut=2_500, ff=4_000, carry=120, bram=6)
MCU_SYNC_DEMUX = UnitCost(lut=2_800, ff=3_600, carry=80, bram=6)
MCU_CMDGEN = UnitCost(lut=1_200, ff=1_400, carry=40, dsp=1, uram=7)

SPU_ROPE = UnitCost(lut=2_500, ff=3_500, carry=150, dsp=4, bram=2.5)
SPU_SOFTMAX = UnitCost(lut=6_000, ff=8_000, carry=250, dsp=6, bram=1)
SPU_RMSNORM = UnitCost(lut=4_500, ff=6_000, carry=200, dsp=4)
SPU_SILU = UnitCost(lut=5_500, ff=7_500, carry=220, dsp=6)
SPU_QUANT = UnitCost(lut=3_000, ff=4_500, carry=130, dsp=4, bram=1)
SPU_FIFOS = UnitCost(lut=7_500, ff=10_500, carry=150, bram=2, uram=3)


@dataclass
class ResourceReport:
    """Per-component and total resource usage plus device utilization."""

    components: dict[str, UnitCost] = field(default_factory=dict)
    budget: UnitCost = KV260_BUDGET

    @property
    def total(self) -> UnitCost:
        total = UnitCost()
        for cost in self.components.values():
            total = total + cost
        return total

    def utilization(self) -> dict[str, float]:
        total = self.total
        out = {}
        for f in fields(UnitCost):
            cap = getattr(self.budget, f.name)
            out[f.name] = getattr(total, f.name) / cap if cap else 0.0
        return out

    def fits(self) -> bool:
        return all(u <= 1.0 for u in self.utilization().values())


def estimate_vpu(lanes: int = 128) -> UnitCost:
    """VPU: multipliers, adder tree, scaler, accumulator, dequantizer."""
    if lanes <= 0 or lanes & (lanes - 1):
        raise ConfigError(f"lanes must be a power of two, got {lanes}")
    cost = FP16_MULTIPLIER.scaled(lanes)
    cost = cost + FP16_TREE_ADDER.scaled(lanes - 1)
    cost = cost + VPU_SCALER + VPU_ACCUMULATOR
    cost = cost + VPU_DEQUANT.scaled(lanes / 128)
    return cost + VPU_CONTROL


def estimate_mcu(axi_ports: int = 4) -> UnitCost:
    """MCU: one datamover per port plus synchronizer/demux/command logic."""
    if axi_ports <= 0:
        raise ConfigError("need at least one AXI port")
    return AXI_DATAMOVER.scaled(axi_ports) + MCU_SYNC_DEMUX + MCU_CMDGEN


def estimate_spu(with_gate: bool = True) -> UnitCost:
    """SPU: all miscellaneous submodules plus the FIFO/adapters."""
    cost = SPU_ROPE + SPU_SOFTMAX + SPU_RMSNORM + SPU_QUANT + SPU_FIFOS
    if with_gate:
        cost = cost + SPU_SILU
    return cost


def estimate_resources(lanes: int = 128, axi_ports: int = 4,
                       budget: UnitCost = KV260_BUDGET) -> ResourceReport:
    """Full-accelerator estimate; defaults reproduce Table I."""
    report = ResourceReport(budget=budget)
    report.components["MemCtrl"] = estimate_mcu(axi_ports)
    report.components["VPU"] = estimate_vpu(lanes)
    report.components["SPU"] = estimate_spu()
    return report


# Paper Table I, for validation and table rendering.
PAPER_TABLE_I = {
    "Total": {"lut": 78_000, "ff": 105_000, "carry": 3_800, "dsp": 291,
              "uram": 10, "bram": 36.5},
    "MemCtrl": {"lut": 14_000, "ff": 21_000, "carry": 600, "dsp": 1,
                "uram": 7, "bram": 30},
    "VPU": {"lut": 34_000, "ff": 44_000, "carry": 2_100, "dsp": 266,
            "uram": 0, "bram": 0},
    "SPU": {"lut": 29_000, "ff": 40_000, "carry": 1_000, "dsp": 24,
            "uram": 3, "bram": 6.5},
}
