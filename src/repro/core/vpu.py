"""Vector Processing Unit: the bandwidth-area balanced DOT engine (Fig. 5B).

The VPU is deliberately *not* a matrix engine: 128 FP16 multipliers (one
per dequantized weight), a 7-level FP16 adder tree, a scaling multiplier,
and an accumulator.  128 weights arrive per cycle from the dequantizer, so
the engine consumes exactly the memory bandwidth — no more compute than
the decode stream can feed (Sec. VI-B's PPA argument).

Cycle model: a matvec of ``out_f x in_f`` takes ``out_f * ceil(in_f/128)``
issue cycles plus the pipeline depth to drain.  Functional model: defers
to :func:`repro.numerics.fp16.fp16_matvec`, which rounds exactly like the
tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..numerics.fp16 import fp16_matvec


@dataclass(frozen=True)
class VpuSpec:
    """Geometry of the DOT engine."""

    lanes: int = 128
    mul_latency: int = 4
    tree_levels_latency: int = 7 * 2  # 7 FP16 add stages, 2 cycles each
    accumulate_latency: int = 2

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.lanes & (self.lanes - 1):
            raise ConfigError(f"lanes must be a power of two, got {self.lanes}")

    @property
    def pipeline_depth(self) -> int:
        return self.mul_latency + self.tree_levels_latency \
            + self.accumulate_latency

    def weights_per_cycle(self) -> int:
        return self.lanes

    def stream_bytes_per_cycle(self, weight_bits: int = 4) -> float:
        """Quantized-weight bytes the engine consumes per cycle."""
        return self.lanes * weight_bits / 8


def bandwidth_matched_lanes(platform, weight_bits: int = 4) -> int:
    """DOT-engine width that exactly consumes the platform's AXI stream.

    The paper's PPA argument (Sec. VI-B): one dequantized weight per lane
    per cycle, sized so the engine eats precisely what the concatenated
    AXI ports deliver.  ``ports x port_bits / weight_bits`` weights arrive
    per cycle; the lane count is that figure rounded down to a power of
    two (the adder tree is binary).  KV260 at W4: 4 x 128 / 4 = 128.
    """
    if weight_bits <= 0:
        raise ConfigError(f"weight_bits must be positive, got {weight_bits}")
    if platform.axi_ports <= 0 or platform.axi_port_bits <= 0:
        raise ConfigError(
            f"{platform.name} has no AXI ports; not an FPGA platform")
    raw = platform.axi_ports * platform.axi_port_bits // weight_bits
    if raw < 1:
        raise ConfigError(
            f"{platform.name}: bus narrower than one {weight_bits}-bit "
            "weight per cycle")
    lanes = 1
    while lanes * 2 <= raw:
        lanes *= 2
    return lanes


class DotEngine:
    """Functional + cycle model of the VPU."""

    def __init__(self, spec: VpuSpec | None = None) -> None:
        self.spec = spec if spec is not None else VpuSpec()
        self.issue_cycles = 0
        self.ops = 0

    # -- cycle model ----------------------------------------------------------

    def matvec_cycles(self, out_features: int, in_features: int) -> int:
        """Issue cycles for a GEMV (one output element per tile pass)."""
        if out_features <= 0 or in_features <= 0:
            raise ConfigError("matvec dimensions must be positive")
        tiles = -(-in_features // self.spec.lanes)
        cycles = out_features * tiles
        self.issue_cycles += cycles
        self.ops += 1
        return cycles

    def dot_cycles(self, length: int) -> int:
        """Issue cycles for one dot product of ``length`` elements."""
        return max(1, -(-length // self.spec.lanes))

    def drain_cycles(self) -> int:
        return self.spec.pipeline_depth

    # -- functional model ------------------------------------------------------

    def matvec(self, weights: np.ndarray, x: np.ndarray) -> np.ndarray:
        """FP16 matvec with the engine's exact rounding schedule."""
        return fp16_matvec(weights, x, lanes=self.spec.lanes)
