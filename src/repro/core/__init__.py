"""The paper's contribution: the KV260 LLM decode accelerator model.

Functional units (Fig. 5):

* :mod:`repro.core.mcu` — Memory Control Unit: command generation, 4-way
  AXI split, stream demultiplexing.
* :mod:`repro.core.vpu` — Vector Processing Unit: the 128-lane FP16 DOT
  engine with dequantizer.
* :mod:`repro.core.spu` — Scalar Processing Unit: RoPE / RMSNorm /
  Softmax / SiLU / Quantization submodule latency + functional models.
* :mod:`repro.core.fifo` — operand and scale-zero FIFOs.

System models:

* :mod:`repro.core.pipeline` — the fused head-wise attention dataflow
  (Fig. 3) and the coarse-grained baseline.
* :mod:`repro.core.scheduler` — the full per-token op schedule.
* :mod:`repro.core.cyclemodel` — per-token cycle counts, token/s, and
  bandwidth utilization.
* :mod:`repro.core.analytical` — bandwidth-bound theoretical ceilings.
* :mod:`repro.core.resources` — FPGA resource model (Table I).
* :mod:`repro.core.power` — power estimate (Sec. VII-B).
* :mod:`repro.core.accelerator` — ties the functional pipeline and the
  cycle model into one simulated device.
"""

from .accelerator import Accelerator, DecodePerf
from .analytical import (
    batched_decode_rate,
    theoretical_tokens_per_s,
    utilization,
)
from .commands import CommandGenerator, Descriptor
from .cyclemodel import CycleModel, TokenCycles
from .eventsim import BeatSimulator, EventQueue
from .explore import evaluate_design, pareto_frontier, sweep_design_space
from .pipeline import AttentionPipeline
from .prefill import compare_prefill_engines
from .resources import ResourceReport, estimate_resources
from .scheduler import build_token_schedule
from .stream import StreamingMatvec, WeightStreamReader

__all__ = [
    "Accelerator",
    "DecodePerf",
    "batched_decode_rate",
    "theoretical_tokens_per_s",
    "utilization",
    "CommandGenerator",
    "Descriptor",
    "CycleModel",
    "TokenCycles",
    "BeatSimulator",
    "EventQueue",
    "evaluate_design",
    "pareto_frontier",
    "sweep_design_space",
    "AttentionPipeline",
    "compare_prefill_engines",
    "ResourceReport",
    "estimate_resources",
    "build_token_schedule",
    "StreamingMatvec",
    "WeightStreamReader",
]
