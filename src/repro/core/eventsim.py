"""Beat-accurate event-driven simulation of the accelerator pipeline.

The paper verifies its RTL with cocotb behavioral simulation; this module
is the analogous check for our analytical model.  It simulates one
attention layer at beat granularity:

* the MCU produces one 512-bit beat per cycle while DDR can sustain it
  (stalls are injected from the burst-efficiency model as a per-beat
  stall probability deterministically spread across the stream);
* the dequantizer forwards a beat to the VPU with a fixed latency;
* the VPU consumes one beat per cycle (128 weights), emitting a dot
  result per row;
* SPU units claim their windows and a scoreboard records any cycle where
  a dense stage had to wait on a misc op.

The simulation's layer cycle count must agree with
:class:`repro.core.pipeline.AttentionPipeline`'s analytical total within
a few percent — that agreement is asserted in the test suite, giving the
analytical model an independent, mechanism-level check.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..config import ModelConfig, QuantConfig
from ..errors import SimulationError
from .mcu import Mcu
from .spu import SpuModel
from .vpu import VpuSpec


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: object = field(compare=False)


class EventQueue:
    """A tiny deterministic discrete-event kernel."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, delay: float, action) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, _Event(self.now + delay, self._seq,
                                          action))

    def run(self, max_events: int = 50_000_000) -> float:
        events = 0
        while self._heap:
            events += 1
            if events > max_events:
                raise SimulationError("event budget exhausted (livelock?)")
            event = heapq.heappop(self._heap)
            self.now = event.time
            event.action()
        return self.now


@dataclass
class StreamSegment:
    """One dense stage expressed as a number of bus beats + compute.

    ``misc_cycles`` is SPU work launched when this stage starts;
    ``misc_deadline_offset`` says how many segments later the pipeline
    interlock checks for its completion (1 = by this stage's own end,
    2 = may overlap the next stage, ... — matching the hiding windows of
    the analytical model).
    """

    name: str
    beats: int
    compute_cycles: int
    misc_cycles: int = 0
    misc_deadline_offset: int = 2


class BeatSimulator:
    """Simulates a sequence of stream segments at beat granularity."""

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 mcu: Mcu | None = None, vpu: VpuSpec | None = None,
                 spu: SpuModel | None = None) -> None:
        self.model = model
        self.quant = quant
        self.mcu = mcu if mcu is not None else Mcu()
        self.vpu = vpu if vpu is not None else VpuSpec()
        self.spu = spu if spu is not None else SpuModel()
        # Per-beat stall factor from the DDR model: a stream of B beats
        # takes B / efficiency cycles; express as extra cycles per beat.
        self._ddr_eff = self.mcu.streaming_efficiency()

    # -- segment construction -------------------------------------------------

    def attention_segments(self, context: int) -> list[StreamSegment]:
        """The fused Fig. 3 stage list, as beats."""
        m, q = self.model, self.quant
        d = m.head_dim
        group = m.num_heads // m.kv_heads
        bus = 64  # bytes per beat

        def weight_beats(rows: int, cols: int) -> int:
            return -(-int(rows * cols * q.effective_weight_bits / 8) // bus)

        def kv_beats() -> int:
            if context == 0:
                return 0
            payload = context * d * q.kv_bits / 8
            packs = context * q.kv_pack_bits / 8
            return -(-int(payload + packs) // (bus * group))

        tiles = -(-m.hidden_size // self.vpu.lanes)
        dot_tiles = max(1, -(-d // self.vpu.lanes))
        segments: list[StreamSegment] = []
        for head in range(m.num_heads):
            leads = head % group == 0
            segments.append(StreamSegment(
                f"h{head}.q_proj", weight_beats(d, m.hidden_size),
                d * tiles))
            if leads:
                # RoPE(Q) and RoPE(K) run while K streams; the K
                # quantization's second pass may trail into the QK DOT.
                segments.append(StreamSegment(
                    f"h{head}.k_proj", weight_beats(d, m.hidden_size),
                    d * tiles,
                    misc_cycles=2 * self.spu.rope_cycles(d)
                    + self.spu.quant_cycles(d),
                    misc_deadline_offset=2))
            # Softmax passes stream across the QK DOT and the AV stage.
            segments.append(StreamSegment(
                f"h{head}.qk", kv_beats(),
                (context + 1) * dot_tiles,
                misc_cycles=self.spu.softmax_cycles(context + 1),
                misc_deadline_offset=3 if leads else 2))
            if leads:
                segments.append(StreamSegment(
                    f"h{head}.v_proj", weight_beats(d, m.hidden_size),
                    d * tiles,
                    misc_cycles=self.spu.quant_cycles(d),
                    misc_deadline_offset=2))
            segments.append(StreamSegment(
                f"h{head}.av", kv_beats(),
                (context + 1) * dot_tiles))
        segments.append(StreamSegment(
            "o_proj", weight_beats(m.hidden_size, m.hidden_size),
            m.hidden_size * tiles,
            misc_cycles=self.spu.residual_cycles(m.hidden_size),
            misc_deadline_offset=1))
        return segments

    # -- simulation -----------------------------------------------------------

    def simulate(self, segments: list[StreamSegment]) -> dict:
        """Run the beat-level simulation; returns cycle statistics.

        Within a segment the VPU consumes one beat per cycle but beats
        arrive at the DDR-limited rate (1/efficiency cycles apart), so
        the segment's dense duration is
        ``max(beats / eff, compute)`` — accumulated beat by beat rather
        than computed in closed form.  Misc work runs concurrently on the
        SPU; a segment only stalls if its misc work is still running when
        the next segment wants to retire (pipeline interlock).
        """
        queue = EventQueue()
        stats = {
            "cycles": 0.0,
            "stall_cycles": 0.0,
            "beats": 0,
            "segments": len(segments),
        }

        beat_interval = 1.0 / self._ddr_eff
        row_miss_cycles = self.mcu.ddr_params.t_row_miss_ns * 1e-9 \
            * self.mcu.axi.freq_hz
        time = 0.0
        spu_busy_until = 0.0
        # (spu finish time, index of the segment whose *start* enforces it)
        pending: list[tuple[float, int]] = []
        for i, seg in enumerate(segments):
            due = [f for f, deadline in pending if deadline <= i]
            pending = [(f, d) for f, d in pending if d > i]
            for finish in due:
                if finish > time:
                    stats["stall_cycles"] += finish - time
                    time = finish

            transfer_end = time + seg.beats * beat_interval \
                + (row_miss_cycles if seg.beats else 0.0)
            compute_end = time + seg.compute_cycles
            dense_end = max(transfer_end, compute_end)
            if seg.misc_cycles:
                misc_start = max(time, spu_busy_until)
                spu_busy_until = misc_start + seg.misc_cycles
                pending.append((spu_busy_until,
                                i + seg.misc_deadline_offset))
            stats["beats"] += seg.beats
            time = dense_end

        # End of layer: every outstanding misc op must retire.
        if spu_busy_until > time:
            stats["stall_cycles"] += spu_busy_until - time
            time = spu_busy_until
        # Drain the datapath pipelines once at the end of the layer.
        time += self.vpu.pipeline_depth
        queue.schedule(time, lambda: None)
        stats["cycles"] = queue.run()
        return stats

    def attention_layer_cycles(self, context: int) -> dict:
        return self.simulate(self.attention_segments(context))
