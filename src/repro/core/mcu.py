"""Memory Control Unit (Fig. 5A).

The MCU makes the full DDR bandwidth visible to the PL: the PS sends the
token index over AXI-Lite, the command generator turns the current op into
MM2S/S2MM descriptors, the command splitter fans each descriptor out to
four 128-bit AXI HP ports, and the data synchronizer re-assembles four
streams into one 512-bit stream for the demultiplexer.

For the cycle model the MCU answers one question per op: *how many PL
cycles does this transfer occupy?* — the maximum of the AXI-side streaming
time (bytes / 64 per cycle) and the DDR-side time from the burst-
efficiency model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..memory.axi import AxiPortGroup
from ..memory.ddr import DdrModel, DdrTimingParams, Transaction

DEFAULT_BURST_BYTES = 1 << 20  # the datamover's maximal descriptor chunk


@dataclass(frozen=True)
class TransferReport:
    """Timing of one MCU-managed transfer."""

    n_bytes: float
    axi_cycles: float
    ddr_cycles: float

    @property
    def cycles(self) -> float:
        """The stream stalls on whichever side is slower."""
        return max(self.axi_cycles, self.ddr_cycles)

    @property
    def ddr_bound(self) -> bool:
        return self.ddr_cycles > self.axi_cycles


class Mcu:
    """Command generation + transfer timing."""

    def __init__(self, axi: AxiPortGroup | None = None,
                 ddr_params: DdrTimingParams | None = None) -> None:
        self.axi = axi if axi is not None else AxiPortGroup()
        self.ddr_params = ddr_params if ddr_params is not None \
            else DdrTimingParams()
        self.bytes_moved = 0.0

    def _cycles_from_ns(self, ns: float) -> float:
        return ns * 1e-9 * self.axi.freq_hz

    def stream_transfer(self, n_bytes: float, contiguous: bool = True,
                        is_write: bool = False,
                        burst_bytes: int = DEFAULT_BURST_BYTES,
                        ) -> TransferReport:
        """Timing of one large streaming transfer (weights, KV history).

        ``contiguous=False`` models a stream whose bursts land at
        scattered addresses (each burst pays the row-miss latency).
        """
        if n_bytes <= 0:
            raise SimulationError(f"transfer size must be positive: {n_bytes}")
        ddr = DdrModel(self.ddr_params)
        address = 0
        remaining = int(n_bytes)
        while remaining > 0:
            size = min(burst_bytes, remaining)
            ddr.access(Transaction(address=address, size=size,
                                   is_write=is_write))
            address += size if contiguous else size + self.ddr_params.row_bytes
            remaining -= size
        self.bytes_moved += n_bytes
        return TransferReport(
            n_bytes=n_bytes,
            axi_cycles=self.axi.transfer_cycles(n_bytes),
            ddr_cycles=self._cycles_from_ns(ddr.total_ns),
        )

    def scattered_transfer(self, n_transactions: int, bytes_each: int,
                           is_write: bool = False) -> TransferReport:
        """Timing of many small discontinuous transactions (the naive
        layouts the paper's formats eliminate)."""
        if n_transactions <= 0 or bytes_each <= 0:
            raise SimulationError("transaction count and size must be positive")
        ddr = DdrModel(self.ddr_params)
        stride = max(self.ddr_params.row_bytes, bytes_each)
        for i in range(n_transactions):
            ddr.access(Transaction(address=i * stride, size=bytes_each,
                                   is_write=is_write))
        total = n_transactions * bytes_each
        self.bytes_moved += total
        return TransferReport(
            n_bytes=total,
            axi_cycles=self.axi.transfer_cycles(total),
            ddr_cycles=self._cycles_from_ns(ddr.total_ns),
        )

    def streaming_efficiency(self) -> float:
        """DDR efficiency of an ideal maximal-burst stream — the ceiling
        the data arrangement format is designed to reach."""
        report = self.stream_transfer(64 * DEFAULT_BURST_BYTES)
        self.bytes_moved -= report.n_bytes  # probe, not real traffic
        return report.axi_cycles / report.ddr_cycles
