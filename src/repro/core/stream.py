"""Bit-true stream datapath: DDR image -> demux -> dequant -> DOT.

This is the functional model of the MCU's demultiplexer (Fig. 5A): it
walks an interleaved weight stream *as stored in the memory image*, beat
by beat, separating zero points, scales, and weight codes exactly as the
RTL slicer does, and feeds the dequantizer + DOT engine.

Its purpose is fidelity proof: a matvec computed from the packed bytes in
DDR must equal the matvec the higher-level :class:`QuantizedModel`
computes from its unpacked weights.  The integration tests drive both
paths over the same memory image and assert bit-identical FP16 outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LayoutError
from ..numerics.fp16 import fp16, fp16_matvec
from ..packing.weight_layout import WeightLayoutSpec
from ..quant.groupquant import unpack_codes


@dataclass(frozen=True)
class StreamedGroup:
    """One quantization group as it emerges from the demultiplexer."""

    group_index: int
    scale: np.float16
    zero: int
    codes: np.ndarray  # (group_size,) uint8


class WeightStreamReader:
    """Walks an interleaved weight stream superblock by superblock.

    The reader keeps only one superblock's metadata buffered — the same
    small on-chip buffer the format was designed around (Sec. V-B1).
    """

    def __init__(self, data: bytes, n_groups: int,
                 spec: WeightLayoutSpec | None = None) -> None:
        self.spec = spec if spec is not None else WeightLayoutSpec()
        expected = self.spec.stream_bytes(n_groups)
        if len(data) != expected:
            raise LayoutError(
                f"stream is {len(data)} bytes, expected {expected} for "
                f"{n_groups} groups"
            )
        self.data = data
        self.n_groups = n_groups
        self.beats_consumed = 0

    def groups(self):
        """Yield :class:`StreamedGroup` in stream order."""
        spec = self.spec
        gps = spec.groups_per_superblock
        zero_bytes = spec.zero_beats * spec.bus_bytes
        scale_bytes = spec.scale_beats * spec.bus_bytes
        # Codes of one superblock are packed contiguously (the encoder pads
        # only at the end of the region), so parse the whole region at once
        # and slice per group.
        code_beats = spec.code_beats_per_superblock
        code_bytes = code_beats * spec.bus_bytes

        offset = 0
        emitted = 0
        while emitted < self.n_groups:
            zeros = unpack_codes(self.data[offset : offset + zero_bytes],
                                 spec.zero_bits, gps)
            offset += zero_bytes
            self.beats_consumed += spec.zero_beats

            scales = np.frombuffer(
                self.data[offset : offset + 2 * gps], dtype=np.float16)
            offset += scale_bytes
            self.beats_consumed += spec.scale_beats

            region = self.data[offset : offset + code_bytes]
            offset += code_bytes
            self.beats_consumed += code_beats
            all_codes = unpack_codes(region, spec.weight_bits,
                                     gps * spec.group_size)
            for i in range(gps):
                if emitted >= self.n_groups:
                    break  # superblock padding groups
                yield StreamedGroup(
                    group_index=emitted,
                    scale=scales[i],
                    zero=int(zeros[i]),
                    codes=all_codes[i * spec.group_size :
                                    (i + 1) * spec.group_size],
                )
                emitted += 1


class StreamingMatvec:
    """Matvec computed directly from the packed DDR stream.

    For each output row, groups stream in, are dequantized on the fly
    ``(q - zero) * scale``, multiplied against the activation slice in
    FP16, and accumulated with the same tile schedule as the VPU.
    """

    def __init__(self, spec: WeightLayoutSpec | None = None,
                 lanes: int = 128) -> None:
        self.spec = spec if spec is not None else WeightLayoutSpec()
        self.lanes = lanes

    def dequantize_stream(self, data: bytes, out_features: int,
                          in_features: int) -> np.ndarray:
        """Reassemble the full FP16 weight matrix from the byte stream."""
        spec = self.spec
        if in_features % spec.group_size:
            raise LayoutError(
                f"in_features {in_features} not divisible by group "
                f"{spec.group_size}"
            )
        groups_per_row = in_features // spec.group_size
        n_groups = out_features * groups_per_row
        reader = WeightStreamReader(data, n_groups, spec)

        out = np.empty((out_features, in_features), dtype=np.float16)
        for group in reader.groups():
            row = group.group_index // groups_per_row
            col = (group.group_index % groups_per_row) * spec.group_size
            centered = group.codes.astype(np.float32) - np.float32(group.zero)
            out[row, col : col + spec.group_size] = fp16(
                centered * np.float32(group.scale))
        return out

    def matvec(self, data: bytes, x: np.ndarray, out_features: int,
               in_features: int,
               channel_scales: np.ndarray | None = None) -> np.ndarray:
        """FP16 GEMV straight from the packed stream.

        ``channel_scales`` undoes the AWQ per-channel scaling (the RTL
        folds the division into the preceding operator; we fold it into
        the activation, which is algebraically the same).
        """
        weights = self.dequantize_stream(data, out_features, in_features)
        x = np.asarray(x, dtype=np.float64)
        if channel_scales is not None:
            x = x / np.asarray(channel_scales, dtype=np.float64)
        return fp16_matvec(weights.astype(np.float32), fp16(x),
                           lanes=self.lanes)
