"""Model loading: the SD-card -> DDR boot path of the bare-metal system.

The paper's flow (Sec. VII-A): the AutoAWQ checkpoint is converted to the
proposed format, written to an SD card, and the C bare-metal program
copies it into DDR at boot.  At SD-card speeds, moving ~3.5 GB dominates
startup — this module models the boot timeline (and verifies the image
with checksums, as a careful loader would).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import CapacityError, SimulationError
from ..packing.memimage import MemoryImage
from ..units import MIB

SD_UHS1_BYTES_PER_S = 40e6   # realistic sustained sequential read, UHS-I
DDR_COPY_BYTES_PER_S = 3.0e9  # PS-side memcpy into place


@dataclass(frozen=True)
class BootTimeline:
    """Where the boot seconds go."""

    sd_read_s: float
    ddr_copy_s: float
    verify_s: float

    @property
    def total_s(self) -> float:
        return self.sd_read_s + self.ddr_copy_s + self.verify_s


class ModelLoader:
    """Boot-time model loading: timing and integrity."""

    def __init__(self, sd_bytes_per_s: float = SD_UHS1_BYTES_PER_S,
                 ddr_bytes_per_s: float = DDR_COPY_BYTES_PER_S) -> None:
        if sd_bytes_per_s <= 0 or ddr_bytes_per_s <= 0:
            raise SimulationError("transfer rates must be positive")
        self.sd_bytes_per_s = sd_bytes_per_s
        self.ddr_bytes_per_s = ddr_bytes_per_s

    def boot_timeline(self, image: MemoryImage,
                      verify: bool = True) -> BootTimeline:
        """Estimated boot time for a memory image."""
        total = image.total_bytes()
        if total <= 0:
            raise CapacityError("empty memory image")
        sd = total / self.sd_bytes_per_s
        copy = total / self.ddr_bytes_per_s
        # CRC pass over everything, at memory-copy speed.
        check = total / self.ddr_bytes_per_s if verify else 0.0
        return BootTimeline(sd_read_s=sd, ddr_copy_s=copy, verify_s=check)

    @staticmethod
    def checksum_regions(image: MemoryImage) -> dict[str, int]:
        """CRC32 of every materialized region (tiny models only)."""
        if not image.data:
            raise SimulationError(
                "image is virtual (no materialized bytes); build it with "
                "qweights to checksum"
            )
        return {name: zlib.crc32(payload)
                for name, payload in sorted(image.data.items())}

    @staticmethod
    def verify_against(image: MemoryImage,
                       expected: dict[str, int]) -> list[str]:
        """Names of regions whose bytes do not match ``expected`` CRCs."""
        actual = ModelLoader.checksum_regions(image)
        bad = [name for name, crc in expected.items()
               if actual.get(name) != crc]
        bad += [name for name in actual if name not in expected]
        return sorted(bad)

    def describe(self, image: MemoryImage) -> str:
        """Human-readable boot report."""
        timeline = self.boot_timeline(image)
        total_mib = image.total_bytes() / MIB
        return (
            f"model image: {total_mib:.0f} MiB "
            f"({len(image.allocations)} regions)\n"
            f"  SD read : {timeline.sd_read_s:6.1f} s "
            f"@ {self.sd_bytes_per_s / 1e6:.0f} MB/s\n"
            f"  DDR copy: {timeline.ddr_copy_s:6.1f} s\n"
            f"  verify  : {timeline.verify_s:6.1f} s\n"
            f"  total   : {timeline.total_s:6.1f} s to first prompt"
        )
