"""Bare-metal runtime substrate.

* :mod:`repro.runtime.baremetal` — the no-OS memory reservation model
  behind the paper's 93.3% capacity claim.
* :mod:`repro.runtime.session` — an end-to-end inference session
  (tokenizer -> accelerator -> sampler), the PS-side decode program.
* :mod:`repro.runtime.trace` — cycle-timeline tracing for schedules.
"""

from .baremetal import BareMetalSystem, LINUX_RESERVED_BYTES
from .session import InferenceSession, SessionResult
from .trace import Trace, TraceEvent

__all__ = [
    "BareMetalSystem",
    "LINUX_RESERVED_BYTES",
    "InferenceSession",
    "SessionResult",
    "Trace",
    "TraceEvent",
]
