"""Bare-metal capacity model (paper Sec. I, VII-A).

"To fully reserve the memory capacity for model weights and key-value
cache, we develop the system in a bare-metal environment without an
operating system."  This module quantifies that choice: a bare-metal
program costs ~1 MB of compiler-reserved space, while an embedded Linux
needs hundreds of MB — the difference decides whether LLaMA2-7B fits at
all on a 4 GB board.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..errors import CapacityError
from ..units import MIB

BAREMETAL_RESERVED_BYTES = 1 * MIB       # compiler reservation (Sec. VII-A)
LINUX_RESERVED_BYTES = 600 * MIB         # typical embedded Linux + PYNQ stack


@dataclass(frozen=True)
class CapacityReport:
    """Whether (and how) a model fits a platform's DRAM."""

    weight_bytes: int
    kv_bytes: int
    reserved_bytes: int
    dram_bytes: int
    context: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.kv_bytes + self.reserved_bytes

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.dram_bytes

    @property
    def model_utilization(self) -> float:
        """Weights + KV as a fraction of raw DRAM (the paper's 93.3%)."""
        return (self.weight_bytes + self.kv_bytes) / self.dram_bytes

    @property
    def headroom_bytes(self) -> int:
        return self.dram_bytes - self.total_bytes


class BareMetalSystem:
    """Capacity accounting for a bare-metal (or OS-hosted) deployment."""

    def __init__(self, platform: PlatformConfig = KV260,
                 os_reserved_bytes: int = BAREMETAL_RESERVED_BYTES) -> None:
        self.platform = platform
        self.os_reserved_bytes = os_reserved_bytes

    def _weight_bytes(self, model: ModelConfig, quant: QuantConfig) -> int:
        streamed = model.decode_stream_params() - model.norm_params()
        quantized = int(streamed * quant.effective_weight_bits / 8)
        fp16 = (model.embedding_params() + model.norm_params()) * 2
        return quantized + fp16

    def _kv_bytes(self, model: ModelConfig, quant: QuantConfig,
                  context: int) -> int:
        payload = context * 2 * model.num_layers * model.kv_dim \
            * quant.kv_bits // 8
        packs = context * 2 * model.num_layers * model.kv_heads \
            * quant.kv_pack_bits // 8
        return payload + packs

    def capacity_report(self, model: ModelConfig, quant: QuantConfig,
                        context: int) -> CapacityReport:
        return CapacityReport(
            weight_bytes=self._weight_bytes(model, quant),
            kv_bytes=self._kv_bytes(model, quant, context),
            reserved_bytes=self.os_reserved_bytes,
            dram_bytes=self.platform.dram_bytes,
            context=context,
        )

    def fits(self, model: ModelConfig, quant: QuantConfig,
             context: int) -> bool:
        return self.capacity_report(model, quant, context).fits

    def max_context(self, model: ModelConfig, quant: QuantConfig) -> int:
        """Largest KV-cache context the remaining capacity supports."""
        base = self._weight_bytes(model, quant) + self.os_reserved_bytes
        free = self.platform.dram_bytes - base
        if free <= 0:
            raise CapacityError(
                f"{model.name} weights alone exceed {self.platform.name}'s "
                "DRAM"
            )
        per_token = self._kv_bytes(model, quant, 1)
        return free // per_token

    def linux_would_fit(self, model: ModelConfig, quant: QuantConfig,
                        context: int) -> bool:
        """Could the same deployment survive under embedded Linux?"""
        hosted = BareMetalSystem(self.platform, LINUX_RESERVED_BYTES)
        return hosted.fits(model, quant, context)
