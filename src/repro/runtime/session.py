"""End-to-end inference sessions: the PS-side "Tokenizer & Decode Program".

Both sessions are now thin adapters over the unified execution engine
(:mod:`repro.engine`): :class:`InferenceSession` wraps a single-request
:class:`~repro.engine.scheduler.ContinuousBatchScheduler` over the
functional backend, so the exact same admission / prefill / decode /
retire machinery serves one chat user here and a whole synthetic trace
in ``repro serve-sim``.  The public API — ``generate`` returning a
:class:`SessionResult`, ``ChatSession.say`` with history truncation —
is unchanged, token for token.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import KV260, PlatformConfig
from ..core.accelerator import Accelerator, DecodePerf
from ..engine.backends import FunctionalBackend
from ..engine.request import Request
from ..engine.scheduler import ContinuousBatchScheduler
from ..errors import CapacityError, SimulationError
from ..model.sampler import Sampler
from ..model.tokenizer import ByteTokenizer
from .baremetal import BareMetalSystem


@dataclass
class SessionResult:
    """Text plus performance of one generation."""

    prompt: str
    completion: str
    tokens: list[int]
    perf: DecodePerf


class ChatSession:
    """Multi-turn chat on top of :class:`InferenceSession`.

    The bare-metal system keeps its KV cache resident between turns; this
    wrapper reproduces that usage: history accumulates in token space and
    each turn prefix-extends it, truncating from the front (oldest turns
    first) when the context reservation would overflow — the policy a
    1024-token device actually needs.
    """

    def __init__(self, session: "InferenceSession",
                 reserve_for_reply: int = 32) -> None:
        if reserve_for_reply <= 0:
            raise SimulationError("reply reservation must be positive")
        self.session = session
        self.reserve_for_reply = reserve_for_reply
        self.history_tokens: list[int] = []
        self.turns: list[SessionResult] = []

    @property
    def max_context(self) -> int:
        return self.session.accelerator.model_config.max_context

    def _truncate_history(self, new_tokens: int) -> None:
        budget = self.max_context - self.reserve_for_reply - new_tokens
        if budget < 0:
            raise SimulationError(
                f"single turn of {new_tokens} tokens exceeds the context"
            )
        if len(self.history_tokens) > budget:
            self.history_tokens = self.history_tokens[-budget:] if budget \
                else []

    def say(self, text: str, max_new_tokens: int | None = None,
            ) -> SessionResult:
        """One chat turn: append user text, generate, keep the exchange."""
        tokenizer = self.session.tokenizer
        if max_new_tokens is None:
            max_new_tokens = self.reserve_for_reply
        user_tokens = tokenizer.encode(text, add_bos=not self.history_tokens)
        self._truncate_history(len(user_tokens))
        prompt = self.history_tokens + user_tokens

        tokens, perf = self.session.generate_tokens(prompt, max_new_tokens)
        if tokenizer.eos_id in tokens:
            tokens = tokens[: tokens.index(tokenizer.eos_id)]
        result = SessionResult(prompt=text,
                               completion=tokenizer.decode(tokens),
                               tokens=tokens, perf=perf)
        self.history_tokens = prompt + tokens
        self.turns.append(result)
        return result


class InferenceSession:
    """Tokenize -> engine request -> detokenize, with timing."""

    def __init__(self, qweights, platform: PlatformConfig = KV260,
                 sampler: Sampler | None = None,
                 check_capacity: bool = True) -> None:
        config = qweights.config
        if config.vocab_size < ByteTokenizer().vocab_size:
            raise SimulationError(
                f"model vocab {config.vocab_size} too small for the byte "
                "tokenizer"
            )
        if check_capacity:
            system = BareMetalSystem(platform)
            report = system.capacity_report(config, qweights.quant,
                                            config.max_context)
            if not report.fits:
                raise CapacityError(
                    f"{config.name} at context {config.max_context} needs "
                    f"{report.total_bytes} B but {platform.name} has "
                    f"{platform.dram_bytes} B"
                )
        self.tokenizer = ByteTokenizer(config.vocab_size)
        self.sampler = sampler
        self.accelerator = Accelerator.from_quantized_weights(
            qweights, platform)
        # The session IS a one-slot engine: same scheduler, batch of one.
        self._backend = FunctionalBackend(
            qweights, platform, n_slots=1,
            functional=self.accelerator.functional)
        self._engine = ContinuousBatchScheduler(
            self._backend, max_batch=1,
            kv_token_budget=config.max_context)
        self._next_request_id = 0

    def generate_tokens(self, prompt_tokens: list[int],
                        max_new_tokens: int,
                        ) -> tuple[list[int], DecodePerf]:
        """Run one engine request; returns raw tokens (EOS included) + perf.

        Timing stops at a sampled EOS — post-EOS steps are never charged,
        so the perf record matches the tokens callers actually keep.
        """
        perf = DecodePerf(
            prompt_len=len(prompt_tokens),
            new_tokens=0,
            prefill_cycles=0.0,
            freq_hz=self.accelerator.platform.pl_freq_hz,
            theoretical_tokens_per_s=(
                self.accelerator.theoretical_tokens_per_s()),
        )
        if max_new_tokens <= 0:
            # Nothing to generate, but the prompt was still prefilled.
            perf.prefill_cycles = self.accelerator.cycles.prefill_cycles(
                len(prompt_tokens))
            return [], perf
        request = Request(
            request_id=self._next_request_id,
            prompt=tuple(prompt_tokens),
            max_new_tokens=max_new_tokens,
            sampler=self.sampler,
            eos_id=self.tokenizer.eos_id,
        )
        self._next_request_id += 1
        self._engine.run([request])
        state = self._engine.finished[-1]
        perf.new_tokens = state.n_generated
        perf.prefill_cycles = state.prefill_cycles
        perf.decode_cycles = list(state.decode_cycles)
        return list(state.generated), perf

    def generate(self, prompt: str, max_new_tokens: int = 32,
                 ) -> SessionResult:
        """Generate a completion for ``prompt``; returns text + perf."""
        ids = self.tokenizer.encode(prompt)
        max_ctx = self.accelerator.model_config.max_context
        if len(ids) >= max_ctx:
            raise SimulationError(
                f"prompt of {len(ids)} tokens fills the {max_ctx}-token "
                "context"
            )
        tokens, perf = self.generate_tokens(ids, max_new_tokens)
        # Stop at EOS like the bare-metal decode loop does.
        if self.tokenizer.eos_id in tokens:
            tokens = tokens[: tokens.index(self.tokenizer.eos_id)]
        return SessionResult(
            prompt=prompt,
            completion=self.tokenizer.decode(tokens),
            tokens=tokens,
            perf=perf,
        )
