"""Cycle-timeline tracing: turn schedules into inspectable event lists.

Used by the Fig. 3 benchmark and the examples to render the fused
pipeline's stage/misc overlap as a text Gantt chart.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class TraceEvent:
    """One traced interval."""

    name: str
    start: float
    duration: float
    lane: str = "dense"

    @property
    def end(self) -> float:
        return self.start + self.duration


class Trace:
    """An ordered collection of trace events."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def add(self, name: str, start: float, duration: float,
            lane: str = "dense") -> None:
        if duration < 0:
            raise SimulationError(f"negative duration for event {name!r}")
        self.events.append(TraceEvent(name, start, duration, lane))

    @classmethod
    def from_attention_report(cls, report) -> "Trace":
        """Build a trace from an AttentionLayerReport (dense + misc lanes)."""
        trace = cls()
        for stage in report.stages:
            trace.add(stage.name, stage.start, stage.duration, lane="dense")
        for misc in report.misc:
            trace.add(misc.name, misc.window_start, misc.cycles, lane="misc")
        return trace

    @classmethod
    def from_token_schedule(cls, schedule) -> "Trace":
        """Build a trace from a TokenSchedule (one bar per segment)."""
        trace = cls()
        t = 0.0
        for segment in schedule.segments:
            trace.add(segment.name, t, segment.cycles, lane="dense")
            if segment.exposed_misc_cycles:
                trace.add(f"{segment.name}.exposed",
                          t + segment.cycles - segment.exposed_misc_cycles,
                          segment.exposed_misc_cycles, lane="misc")
            t += segment.cycles
        return trace

    @property
    def span(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events)

    def lanes(self) -> list[str]:
        seen: list[str] = []
        for e in self.events:
            if e.lane not in seen:
                seen.append(e.lane)
        return seen

    def render(self, width: int = 80, max_events: int = 40) -> str:
        """ASCII Gantt chart: one row per event, bars scaled to the span."""
        if not self.events:
            return "(empty trace)"
        span = self.span or 1.0
        scale = width / span
        rows = []
        label_w = max(len(e.name) for e in self.events[:max_events]) + 2
        for e in self.events[:max_events]:
            pad = int(e.start * scale)
            bar = max(1, int(e.duration * scale))
            marker = "#" if e.lane == "dense" else "~"
            rows.append(f"{e.name:<{label_w}}|{' ' * pad}{marker * bar}")
        if len(self.events) > max_events:
            rows.append(f"... ({len(self.events) - max_events} more events)")
        return "\n".join(rows)
