"""Cross-platform analysis: the Discussion section's bandwidth argument.

Sec. VIII argues that decode speed is tied to bandwidth and that larger
models remain out of reach "without sufficient bandwidth and capacity".
These helpers quantify that: bandwidth needed for a target token rate,
the largest model a byte budget supports, and an efficiency-frontier view
of every platform in Tables II/III.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig
from ..errors import ConfigError
from .entries import BaselineEntry, all_entries


def bandwidth_for_tokens_per_s(model: ModelConfig, tokens_per_s: float,
                               weight_bits: float = 4.0,
                               utilization: float = 0.845) -> float:
    """GB/s needed to decode ``model`` at ``tokens_per_s``.

    Defaults assume this paper's 84.5% achievable utilization — i.e. the
    answer to "what memory would an embedded device need?" rather than a
    theoretical bound.
    """
    if tokens_per_s <= 0:
        raise ConfigError("token rate must be positive")
    if not 0 < utilization <= 1:
        raise ConfigError("utilization must be in (0, 1]")
    bytes_per_token = model.decode_stream_params() * weight_bits / 8
    return bytes_per_token * tokens_per_s / utilization / 1e9


def max_params_for_capacity(dram_bytes: int, weight_bits: float = 4.1875,
                            context: int = 1024, hidden: int = 4096,
                            layers_per_b: float = 4.75,
                            reserved_bytes: int = 1 << 20) -> float:
    """Largest parameter count a DRAM budget can hold (weights + KV).

    KV bytes scale with depth; ``layers_per_b`` approximates layers per
    billion parameters for LLaMA-family shapes (32 layers / 6.74B).
    """
    if dram_bytes <= 0:
        raise ConfigError("dram_bytes must be positive")
    usable = dram_bytes - reserved_bytes
    # weights: P * bits/8; KV: 2 * layers * hidden * context bytes with
    # layers ~ layers_per_b * P/1e9.
    kv_per_param = 2 * layers_per_b / 1e9 * hidden * context
    per_param = weight_bits / 8 + kv_per_param
    return usable / per_param


@dataclass(frozen=True)
class FrontierPoint:
    """One platform on the bandwidth-vs-speed plane."""

    name: str
    bandwidth_gbps: float
    tokens_per_s: float
    utilization: float
    tokens_per_gbps: float


def efficiency_frontier(entries: tuple[BaselineEntry, ...] | None = None,
                        ) -> list[FrontierPoint]:
    """Every platform on the bandwidth-vs-speed plane.

    Points are sorted by *utilization* — tokens per GB/s alone is not
    model-normalized (a 1.1B model trivially yields more tokens per byte
    of bandwidth than a 7B one), while utilization divides out the model
    size.  The paper's KV260 design tops this ordering — the "pushing to
    the limit" claim in one number.
    """
    if entries is None:
        entries = all_entries()
    points = []
    for e in entries:
        points.append(FrontierPoint(
            name=e.name,
            bandwidth_gbps=e.bandwidth_gbps,
            tokens_per_s=e.reported_tokens_per_s,
            utilization=e.utilization,
            tokens_per_gbps=e.reported_tokens_per_s / e.bandwidth_gbps,
        ))
    return sorted(points, key=lambda p: p.utilization, reverse=True)


def oversized_model_rate(params_b: float, dram_bytes: int,
                         dram_gbps: float = 19.2,
                         storage_gbps: float = 0.04,
                         weight_bits: float = 4.0,
                         utilization: float = 0.845) -> dict:
    """Decode rate if weights larger than DRAM stream from storage.

    The Discussion's "supporting larger LLM size remains challenging":
    a model that does not fit DRAM must re-read its overflow from SD/eMMC
    every token, and decode speed collapses to the *storage* bandwidth
    for that slice.  Returns the resident/overflow split and the blended
    token rate — quantifying why capacity, not cleverness, is the wall.
    """
    if params_b <= 0 or dram_bytes <= 0:
        raise ConfigError("sizes must be positive")
    weight_bytes = params_b * 1e9 * weight_bits / 8
    resident = min(weight_bytes, dram_bytes * 0.95)  # leave room for KV
    overflow = max(0.0, weight_bytes - resident)
    time_per_token = (resident / (dram_gbps * 1e9 * utilization)
                      + overflow / (storage_gbps * 1e9))
    return {
        "resident_bytes": resident,
        "overflow_bytes": overflow,
        "fits": overflow == 0.0,
        "tokens_per_s": 1.0 / time_per_token,
    }


def ddr5_projection(model: ModelConfig, ddr5_gbps: float = 38.4,
                    utilization: float = 0.845,
                    weight_bits: float = 4.0) -> float:
    """Token rate if the KV260 had the DDR5 the Discussion calls for.

    64-bit DDR5-4800 doubles the paper's bandwidth; at the same
    utilization the decode rate doubles with it.
    """
    bytes_per_token = model.decode_stream_params() * weight_bits / 8
    return ddr5_gbps * 1e9 * utilization / bytes_per_token
