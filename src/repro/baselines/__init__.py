"""Comparison baselines: every row of the paper's Tables II and III.

Each entry carries the platform's bandwidth, the model's weight bytes per
token, and the decoding speed reported in the cited source; utilization is
recomputed from those, reproducing the tables' arithmetic.
"""

from .entries import (
    BaselineEntry,
    OUR_ENTRY,
    TABLE_II_ENTRIES,
    TABLE_III_ENTRIES,
    all_entries,
)

__all__ = [
    "BaselineEntry",
    "OUR_ENTRY",
    "TABLE_II_ENTRIES",
    "TABLE_III_ENTRIES",
    "all_entries",
]
