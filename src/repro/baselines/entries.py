"""Baseline data for Tables II and III.

Reported token/s figures are literature values cited by the paper (DFX,
FlightLLM, EdgeLLM, SECDA-LLM, LlamaF, llama.cpp, TinyChat, NanoLLM);
theoretical rates and utilizations are *recomputed* here from bandwidth
and weight bytes per token, which reproduces the tables' own arithmetic.

Weight-byte conventions follow the paper: LLaMA2-7B rows use the
non-embedding parameter count (~6.61e9) at the effective bit-width, while
TinyLlama/GPT-2/ChatGLM rows use the nominal total parameter count the
sources quote — matching every theoretical figure in the tables to the
digit the paper prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import LLAMA2_7B
from ..errors import ConfigError


@dataclass(frozen=True)
class BaselineEntry:
    """One comparison row."""

    name: str
    device: str
    category: str             # "cloud-fpga" | "edge-fpga" | "cpu" | "gpu" | "ours"
    bandwidth_gbps: float     # decimal GB/s
    model_name: str
    weight_bytes_per_token: float
    reported_tokens_per_s: float
    framework: str = ""
    effective_weight_bits: float = 4.0
    reported_theoretical: float | None = None
    reported_utilization: float | None = None
    notes: str = ""

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0 or self.weight_bytes_per_token <= 0:
            raise ConfigError(f"{self.name}: bandwidth/bytes must be positive")

    @property
    def theoretical_tokens_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9 / self.weight_bytes_per_token

    @property
    def utilization(self) -> float:
        return self.reported_tokens_per_s / self.theoretical_tokens_per_s


def _llama2_7b_bytes(bits: float = 4.0) -> float:
    """Paper convention for 7B rows: non-embedding params x bit-width."""
    return LLAMA2_7B.decode_stream_params() * bits / 8


# -- Table II: FPGA research --------------------------------------------------

TABLE_II_ENTRIES = (
    BaselineEntry(
        name="DFX", device="Alveo U280", category="cloud-fpga",
        bandwidth_gbps=460.0, model_name="GPT2-1.5B",
        weight_bytes_per_token=1.5e9 * 2,  # W16
        effective_weight_bits=16,
        reported_tokens_per_s=21.0, reported_theoretical=153.0,
        reported_utilization=0.137,
        notes="Single-FPGA 1.5B performance extrapolated by the paper "
              "from the reported 345M result.",
    ),
    BaselineEntry(
        name="FlightLLM", device="Alveo U280", category="cloud-fpga",
        bandwidth_gbps=460.0, model_name="LLaMA2-7B",
        # SparseGPT reaches ~3.5 effective bits, but the paper's note 5
        # counts it as 4-bit "in terms of capacity and bandwidth".
        weight_bytes_per_token=7.0e9 * 4 / 8,
        effective_weight_bits=4.0,
        reported_tokens_per_s=55.0, reported_theoretical=131.0,
        reported_utilization=0.42,
        notes="Paper lists both 42% (recomputed) and the 65.9% the "
              "FlightLLM authors claim.",
    ),
    BaselineEntry(
        name="EdgeLLM", device="Alveo U280", category="cloud-fpga",
        bandwidth_gbps=460.0, model_name="ChatGLM-6B",
        weight_bytes_per_token=6.0e9 * 4 / 8,
        reported_tokens_per_s=75.0, reported_theoretical=153.0,
        reported_utilization=0.49,
        notes="Paper lists both 49% (recomputed) and the 73.8% claimed.",
    ),
    BaselineEntry(
        name="SECDA-LLM", device="PYNQ-Z2", category="edge-fpga",
        bandwidth_gbps=2.1, model_name="TinyLlama-1.1B",
        weight_bytes_per_token=1.1e9 * 4 / 8,
        reported_tokens_per_s=0.58, reported_theoretical=3.8,
        reported_utilization=0.152,
    ),
    BaselineEntry(
        name="LlamaF", device="ZCU102", category="edge-fpga",
        bandwidth_gbps=21.3, model_name="TinyLlama-1.1B",
        weight_bytes_per_token=1.1e9 * 8 / 8,  # W8
        effective_weight_bits=8,
        reported_tokens_per_s=1.5, reported_theoretical=19.3,
        reported_utilization=0.077,
    ),
)

# -- Table III: embedded CPU / GPU ---------------------------------------------

TABLE_III_ENTRIES = (
    BaselineEntry(
        name="llama.cpp (Pi)", device="Pi-4B 8GB", category="cpu",
        bandwidth_gbps=12.8, model_name="LLaMA2-7B",
        weight_bytes_per_token=_llama2_7b_bytes(),
        framework="llama.cpp",
        reported_tokens_per_s=0.11, reported_theoretical=3.9,
        reported_utilization=0.028,
    ),
    BaselineEntry(
        name="llama.cpp (AGX Orin)", device="Jetson AGX Orin", category="gpu",
        bandwidth_gbps=204.8, model_name="LLaMA2-7B",
        weight_bytes_per_token=_llama2_7b_bytes(),
        framework="llama.cpp",
        reported_tokens_per_s=4.49, reported_theoretical=62.5,
        reported_utilization=0.072,
    ),
    BaselineEntry(
        name="TinyChat (AGX Orin)", device="Jetson AGX Orin", category="gpu",
        bandwidth_gbps=204.8, model_name="LLaMA2-7B",
        weight_bytes_per_token=_llama2_7b_bytes(),
        framework="TinyChat",
        reported_tokens_per_s=33.0, reported_theoretical=62.5,
        reported_utilization=0.528,
    ),
    BaselineEntry(
        name="NanoLLM (AGX Orin)", device="Jetson AGX Orin", category="gpu",
        bandwidth_gbps=204.8, model_name="LLaMA2-7B",
        weight_bytes_per_token=_llama2_7b_bytes(),
        framework="NanoLLM",
        reported_tokens_per_s=47.1, reported_theoretical=62.5,
        reported_utilization=0.754,
    ),
    BaselineEntry(
        name="NanoLLM (Orin Nano)", device="Jetson Orin Nano", category="gpu",
        bandwidth_gbps=68.0, model_name="LLaMA2-7B",
        weight_bytes_per_token=_llama2_7b_bytes(),
        framework="NanoLLM",
        reported_tokens_per_s=16.4, reported_theoretical=20.7,
        reported_utilization=0.792,
    ),
)

# -- Ours ------------------------------------------------------------------------

OUR_ENTRY = BaselineEntry(
    name="Ours", device="KV260", category="ours",
    bandwidth_gbps=19.2, model_name="LLaMA2-7B",
    weight_bytes_per_token=_llama2_7b_bytes(),
    framework="this work",
    reported_tokens_per_s=4.9, reported_theoretical=5.8,
    reported_utilization=0.845,
)


def all_entries() -> tuple[BaselineEntry, ...]:
    return TABLE_II_ENTRIES + TABLE_III_ENTRIES + (OUR_ENTRY,)
