"""Execution backends of the engine: who actually runs a batched step.

Three implementations of one protocol, mirroring the repo's three
fidelity levels:

* :class:`FunctionalBackend` — the hardware-equivalent functional
  pipeline (:class:`repro.model.quantized.QuantizedModel`) over multi-
  sequence KV storage, timed by the batched cycle model.  Exact tokens
  *and* exact timing; only for models small enough to run in numpy.
* :class:`CycleModelBackend` — timing-only.  Tokens are a deterministic
  synthetic stream (no EOS), so requests retire at their length limit;
  the per-step cost comes from
  :meth:`repro.core.cyclemodel.CycleModel.batched_decode_step`.  Works
  for any model size, including LLaMA2-7B.
* :class:`AnalyticalBackend` — closed-form bandwidth/compute roofline
  per step, no scheduling detail.  The fastest way to sweep serving
  scenarios analytically.

All three share the batch cost split of the paper's Fig. 2: the
quantized weight stream is charged once per step; KV traffic and misc
work are charged per batch member.

Every backend also supports both KV disciplines (``kv_mode``):

* ``"slotted"`` — one contiguous max-length reservation per sequence
  (:class:`repro.model.kvcache.SlottedKVCache` or a slot counter).
* ``"paged"`` — block-granular allocation with shared-prefix reuse
  (:class:`repro.kv.PagedKVCache`).  Prefill skips prefix tokens whose
  blocks are already resident, and batched decode charges each physical
  block's DRAM stream once per step.  The timing-only backends run the
  same accounting (``store_data=False``), so all three make identical
  admission and reuse decisions — which is what the cross-backend
  differential test harness checks.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..core.cyclemodel import CycleModel
from ..core.vpu import VpuSpec
from ..errors import CapacityError, SimulationError
from ..kv import PagedKVCache, blocks_for_budget
from ..model.kvcache import SlottedKVCache
from ..model.quantized import QuantizedModel
from .request import RequestState

KV_MODES = ("slotted", "paged")

#: Dense fast-forward memo tables start at ``_FF_TABLE_INIT`` entries,
#: double on demand, and never exceed ``_FF_TABLE_CAP`` — indices past
#: the cap are served by the sparse dict memos instead, so long-context
#: backends neither pay an O(max_context) dense fill nor hold one.
_FF_TABLE_INIT = 512
_FF_TABLE_CAP = 16384

#: maps (request_id, step index) to the token that step must produce —
#: lets timing-only backends replay an exact recorded stream.
TokenOracle = Callable[[int, int], int]


@runtime_checkable
class EngineBackend(Protocol):
    """What the continuous-batching scheduler needs from an executor."""

    model_config: ModelConfig
    quant: QuantConfig
    platform: PlatformConfig

    @property
    def freq_hz(self) -> float:
        """Clock that converts charged cycles into seconds."""
        ...

    def admit(self, state: RequestState) -> None:
        """Claim per-sequence resources (a KV slot) for ``state``."""
        ...

    def release(self, state: RequestState) -> None:
        """Free ``state``'s per-sequence resources (retire or preempt)."""
        ...

    def prefill(self, state: RequestState) -> float:
        """Feed prompt (+ any recomputed tokens); return cycles spent."""
        ...

    def sample(self, state: RequestState) -> int:
        """Produce the next token for ``state`` from its current logits."""
        ...

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        """Forward each state's pending token in one shared step; return cycles."""
        ...


def derive_kv_token_budget(model: ModelConfig, quant: QuantConfig,
                           platform: PlatformConfig, cap_tokens: int,
                           system=None) -> int:
    """KV tokens the platform's DRAM holds beyond weights + reservation.

    The capacity discipline of the paper's Sec. VII-A carried to serving:
    whatever DRAM remains after the quantized weights and the bare-metal
    reservation is the KV budget, clamped to ``cap_tokens`` (typically
    ``max_batch * max_context`` — more can never be resident at once).
    """
    if system is None:
        from ..runtime.baremetal import BareMetalSystem

        system = BareMetalSystem(platform)
    report = system.capacity_report(model, quant, 1)
    per_token = report.kv_bytes
    free = report.dram_bytes - report.weight_bytes - report.reserved_bytes
    if free < per_token:
        raise CapacityError(
            f"{model.name} weights leave no KV room on {platform.name}")
    return int(min(free // per_token, cap_tokens))


def kv_discipline_kwargs(kv_mode: str, budget_tokens: int | None = None,
                         block_size: int = 16,
                         n_kv_blocks: int | None = None,
                         ) -> tuple[dict, dict]:
    """``(backend_kwargs, scheduler_kwargs)`` for one KV discipline.

    The single encoding of the equal-DRAM rule every slotted-vs-paged
    comparison relies on: a token budget caps the *scheduler* in slotted
    mode but sizes the backend's block *pool* (via
    :func:`repro.kv.blocks_for_budget`) in paged mode, so the two
    disciplines always compete over the same storage.
    """
    backend = dict(kv_mode=kv_mode, block_size=block_size,
                   n_kv_blocks=n_kv_blocks)
    scheduler: dict = {}
    if kv_mode == "paged":
        if n_kv_blocks is None and budget_tokens:
            backend["n_kv_blocks"] = blocks_for_budget(budget_tokens,
                                                       block_size)
    elif budget_tokens:
        scheduler["kv_token_budget"] = budget_tokens
    return backend, scheduler


def build_backend(kind: str, model_config: ModelConfig, quant: QuantConfig,
                  platform: PlatformConfig = KV260, *, mode: str = "fused",
                  n_slots: int = 8, tp: int = 1, interconnect=None,
                  qweights=None, token_oracle: TokenOracle | None = None,
                  vpu: VpuSpec | None = None, kv_mode: str = "slotted",
                  block_size: int = 16, n_kv_blocks: int | None = None,
                  prefix_sharing: bool = True) -> "EngineBackend":
    """One constructor for every backend kind, single-device or sharded.

    ``tp > 1`` returns the tensor-parallel counterpart from
    :mod:`repro.cluster.tp` (imported lazily — the cluster layer sits
    above the engine); ``interconnect`` is a
    :class:`repro.cluster.interconnect.LinkSpec` and defaults to the
    10GbE ring.  The functional kinds need ``qweights``.
    """
    if kind not in ("functional", "cycle", "analytical"):
        raise SimulationError(
            f"unknown backend kind {kind!r}; choose from "
            "('functional', 'cycle', 'analytical')")
    if kind == "functional" and qweights is None:
        raise SimulationError("functional backend needs quantized weights")
    kv = dict(kv_mode=kv_mode, block_size=block_size,
              n_kv_blocks=n_kv_blocks, prefix_sharing=prefix_sharing)
    if tp > 1:
        from ..cluster.interconnect import TEN_GIG_ETHERNET
        from ..cluster.tp import (ShardedAnalyticalBackend,
                                  ShardedCycleBackend,
                                  ShardedFunctionalBackend)

        link = interconnect if interconnect is not None else TEN_GIG_ETHERNET
        if kind == "cycle":
            return ShardedCycleBackend(model_config, quant, platform, tp=tp,
                                       interconnect=link, mode=mode,
                                       n_slots=n_slots, vpu=vpu,
                                       token_oracle=token_oracle, **kv)
        if kind == "analytical":
            return ShardedAnalyticalBackend(model_config, quant, platform,
                                            tp=tp, interconnect=link,
                                            n_slots=n_slots,
                                            token_oracle=token_oracle, **kv)
        return ShardedFunctionalBackend(qweights, platform, tp=tp,
                                        interconnect=link, mode=mode,
                                        n_slots=n_slots, **kv)
    if kind == "cycle":
        return CycleModelBackend(model_config, quant, platform, mode=mode,
                                 n_slots=n_slots, vpu=vpu,
                                 token_oracle=token_oracle, **kv)
    if kind == "analytical":
        return AnalyticalBackend(model_config, quant, platform,
                                 n_slots=n_slots,
                                 token_oracle=token_oracle, **kv)
    return FunctionalBackend(qweights, platform, mode=mode,
                             n_slots=n_slots, **kv)


class _SlotCounter:
    """Slot accounting for timing-only backends (no real storage).

    A min-heap free list: allocation pops the lowest free slot in
    O(log n) instead of scanning every slot, while preserving the
    lowest-free-first order the sharded functional backend's slot
    mirroring relies on.
    """

    def __init__(self, n_slots: int) -> None:
        self.n_slots = n_slots
        self._free = list(range(n_slots))  # ascending == already a heap
        self._used: set[int] = set()

    def allocate(self) -> int:
        if not self._free:
            raise SimulationError(
                f"all {self.n_slots} KV slots are allocated")
        slot = heapq.heappop(self._free)
        self._used.add(slot)
        return slot

    def free(self, slot: int) -> None:
        if slot not in self._used:
            raise SimulationError(f"slot {slot} is not allocated")
        self._used.discard(slot)
        heapq.heappush(self._free, slot)


def _validate_batch(contexts: Sequence[int],
                    fetched: Sequence[int] | None) -> None:
    """The batch validations of the full schedule/traffic builders,
    applied before the decomposed step computation takes their place."""
    if not contexts:
        raise SimulationError(
            "batched schedule needs at least one context")
    if any(c < 0 for c in contexts):
        raise SimulationError(f"negative context in batch: {list(contexts)}")
    if fetched is not None:
        if len(fetched) != len(contexts):
            raise SimulationError(
                f"fetched has {len(fetched)} entries for "
                f"{len(contexts)} contexts")
        for ctx, fetch in zip(contexts, fetched):
            if not 0 <= fetch <= ctx:
                raise SimulationError(
                    f"fetched tokens {fetch} outside [0, {ctx}]")


def _stream_token(request_id: int, step: int, vocab_size: int,
                  eos_id: int | None) -> int:
    """Deterministic pseudo-token stream for timing-only backends.

    Knuth-style multiplicative hash of (request, step); never returns the
    EOS id, so timing-only requests always run to their length limit.
    A pure function of its arguments, which is what lets the fast-forward
    path pre-compute a whole window of samples in one call.
    """
    token = (2654435761 * (request_id + 1) + 40503 * (step + 1)) % vocab_size
    if eos_id is not None and token == eos_id:
        token = (token + 1) % vocab_size
    return token


def _stream_token_block(request_id: int, base: int, n: int,
                        vocab_size: int,
                        eos_id: int | None) -> np.ndarray:
    """``n`` consecutive :func:`_stream_token` values in one vector op.

    Same hash arithmetic on int64 (no overflow: the multiplier times
    any realistic request id stays far below 2**63), so each entry
    equals the scalar function exactly.
    """
    steps = np.arange(base + 1, base + n + 1, dtype=np.int64)
    tokens = (2654435761 * (request_id + 1) + 40503 * steps) % vocab_size
    if eos_id is not None:
        tokens = np.where(tokens == eos_id, (tokens + 1) % vocab_size,
                          tokens)
    return tokens


def _synthetic_token(state: RequestState, vocab_size: int,
                     eos_id: int | None) -> int:
    """The next :func:`_stream_token` of one request state."""
    return _stream_token(state.request_id, state.n_generated, vocab_size,
                         eos_id)


def _build_paged_kv(model_config: ModelConfig, quant: QuantConfig,
                    platform: PlatformConfig, n_slots: int,
                    block_size: int, n_kv_blocks: int | None,
                    store_data: bool, prefix_sharing: bool) -> PagedKVCache:
    """Size and build the paged pool; default capacity mirrors the
    token budget the scheduler would derive for slotted KV, so the two
    modes compete over the same DRAM bytes."""
    if n_kv_blocks is None:
        budget = derive_kv_token_budget(
            model_config, quant, platform,
            cap_tokens=n_slots * model_config.max_context)
        n_kv_blocks = blocks_for_budget(budget, block_size)
    return PagedKVCache(model_config, n_kv_blocks, block_size,
                        kv_bits=quant.kv_bits, store_data=store_data,
                        prefix_sharing=prefix_sharing)


class _KVMixin:
    """Shared KV discipline plumbing over slotted or paged accounting.

    :meth:`_init_kv` sets exactly one of ``_slots`` (slotted) or
    ``paged_kv`` (paged); ``state.slot`` holds a slot index or a paged
    sequence id.  Keeping this logic in one place is what guarantees
    all backends make identical admission and reuse decisions — the
    property the differential harness checks.
    """

    paged_kv: PagedKVCache | None = None
    #: slot authority: a counter for timing backends, or the slotted
    #: storage itself (same allocate/free surface) for the functional one.
    _slots: _SlotCounter | SlottedKVCache | None = None

    def _init_kv(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig, kv_mode: str, n_slots: int,
                 block_size: int, n_kv_blocks: int | None,
                 prefix_sharing: bool, store_data: bool) -> None:
        if kv_mode not in KV_MODES:
            raise SimulationError(
                f"unknown kv_mode {kv_mode!r}; choose from {KV_MODES}")
        self.kv_mode = kv_mode
        self._n_slots = n_slots
        if kv_mode == "paged":
            self.paged_kv = _build_paged_kv(
                model_config, quant, platform, n_slots, block_size,
                n_kv_blocks, store_data, prefix_sharing)
        else:
            self._slots = _SlotCounter(n_slots)

    @property
    def n_slots(self) -> int:
        return self._n_slots

    def admit(self, state: RequestState) -> None:
        if self.paged_kv is not None:
            # The paged pool opens unlimited sequences; the slot count
            # stays the concurrency authority so both KV disciplines
            # enforce the same admission cap.
            if self.paged_kv.n_sequences >= self._n_slots:
                raise SimulationError(
                    f"all {self._n_slots} KV slots are allocated")
            state.slot = self.paged_kv.allocate(state.sequence_tokens())
        else:
            assert self._slots is not None
            state.slot = self._slots.allocate()

    def release(self, state: RequestState) -> None:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} holds no slot")
        if self.paged_kv is not None:
            self.paged_kv.free(state.slot)
        else:
            assert self._slots is not None
            self._slots.free(state.slot)
        state.slot = None

    def _cached_prefix(self, state: RequestState) -> int:
        """Prompt tokens whose KV the paged cache already holds."""
        if self.paged_kv is None or state.slot is None:
            return 0
        return self.paged_kv.cached_length(state.slot)

    def _fetch_plan(self, states: Sequence[RequestState],
                    contexts: Sequence[int]) -> list[int] | None:
        """Per-member KV fetch counts for a batched step (paged only)."""
        if self.paged_kv is None:
            return None
        return self.paged_kv.fetch_plan([s.slot for s in states], contexts)


class _TimingStreamMixin:
    """Token stream + fast-forward plumbing shared by the timing-only
    backends (cycle model and analytical roofline).

    Tokens come from the recorded oracle or the synthetic hash stream —
    both pure functions of ``(request_id, step)`` — so a whole window of
    future samples can be produced without running any model, which is
    what lets the scheduler's fast-forward path spot an upcoming EOS
    before it commits a window.
    """

    #: the scheduler only fast-forwards backends that opt in; the
    #: functional backends never do (their decode computes real logits).
    supports_fast_forward = True

    token_oracle: TokenOracle | None = None

    def sample(self, state: RequestState) -> int:
        if self.token_oracle is not None:
            return self.token_oracle(state.request_id, state.n_generated)
        return _synthetic_token(state, self.model_config.vocab_size,
                                state.request.eos_id)

    def planned_tokens(self, state: RequestState,
                       n: int) -> Sequence[int]:
        """The next up-to-``n`` tokens :meth:`sample` would return for
        ``state`` (index ``j`` is the sample of fast-forward step ``j``).

        Stops at the first EOS: a recorded oracle stream ends there, so
        probing past it would read positions the recording never had.
        The synthetic stream comes back as one int64 array.
        """
        base = state.n_generated
        eos = state.request.eos_id
        if self.token_oracle is not None:
            tokens: list[int] = []
            for j in range(n):
                token = self.token_oracle(state.request_id, base + j)
                tokens.append(token)
                if eos is not None and token == eos:
                    break
            return tokens
        return _stream_token_block(state.request_id, base, n,
                                   self.model_config.vocab_size, eos)

    def replay_tokens(self, request_id: int, n: int,
                      eos_id: int | None = None) -> tuple[int, ...]:
        """The first ``n`` tokens request ``request_id`` generated —
        the stream is a pure function of its arguments, so windowed
        telemetry stores only the count and replays tokens on demand."""
        if self.token_oracle is not None:
            return tuple(self.token_oracle(request_id, j)
                         for j in range(n))
        return tuple(_stream_token_block(
            request_id, 0, n, self.model_config.vocab_size,
            eos_id).tolist())

    def fast_forward_cycles(self, states: Sequence[RequestState],
                            n_steps: int) -> Sequence[float]:
        """Per-step cycles of the next ``n_steps`` static-batch decode
        steps (contexts advancing by one each step), bit-identical to
        calling :meth:`decode_batch` that many times.  Pure — commit the
        window with :meth:`commit_fast_forward` afterwards."""
        contexts = [s.context for s in states]
        return self._fast_forward_cycles(contexts,
                                         self._fetch_plan(states, contexts),
                                         n_steps)

    def commit_fast_forward(self, states: Sequence[RequestState],
                            n_steps: int) -> None:
        """Apply ``n_steps`` fast-forwarded decode steps' KV accounting."""
        for state in states:
            if self.paged_kv is not None:
                assert state.slot is not None
                self.paged_kv.advance(state.slot, n_steps)
            state.position += n_steps


class _CycleTimedBackend(_KVMixin):
    """Shared plumbing: batched cycle-model timing + KV bookkeeping.

    ``tp > 1`` makes the cycle model account ONE tensor-parallel shard
    (1/tp of the weight and KV streams); interconnect time for the
    partial-sum collectives is added by the :mod:`repro.cluster.tp`
    subclasses, never here.
    """

    supports_fast_forward = False

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig, mode: str, n_slots: int,
                 vpu: VpuSpec | None = None, kv_mode: str = "slotted",
                 block_size: int = 16, n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True,
                 store_kv_data: bool = False, tp: int = 1,
                 reference_costs: bool = False) -> None:
        self.model_config = model_config
        self.quant = quant
        self.platform = platform
        self.mode = mode
        self.tp = tp
        #: route timing through the original full schedule builders
        #: instead of the memoized decomposition — the pre-optimization
        #: baseline for equality tests and the simperf benchmark.
        self.reference_costs = reference_costs
        self.cycles = CycleModel(model_config, quant, platform, vpu=vpu,
                                 tp=tp)
        self._init_kv(model_config, quant, platform, kv_mode, n_slots,
                      block_size, n_kv_blocks, prefix_sharing,
                      store_kv_data)
        # Fast-forward memos: deterministic sub-results of the batched
        # token schedule, keyed so a window of growing contexts reuses
        # every segment it has seen before.
        self._ff_stream: dict[float, float] = {}
        self._ff_exp: dict[int, float] = {}
        self._ff_const: dict[tuple[int, str], tuple] = {}
        self._ff_prefill: dict[int, float] = {}
        # Dense counterparts of the per-context memos, indexed by
        # context / fetch count, so a whole window's values gather in
        # one vectorized read (NaN marks a not-yet-computed entry).
        self._ff_exp_tab: np.ndarray | None = None
        self._ff_kvtx_tab: np.ndarray | None = None

    @property
    def freq_hz(self) -> float:
        return self.platform.pl_freq_hz

    def step_cycles(self, contexts: Sequence[int],
                    fetched: Sequence[int] | None = None) -> float:
        # The decomposed window computation with a one-step window: the
        # identical floats as self.cycles.batched_decode_step (pinned by
        # the kernel property tests), minus the per-call schedule build.
        # Explicit class call: the sharded mixin adds collective time on
        # top of this method, so dispatching virtually would double it.
        _validate_batch(contexts, fetched)
        if self.reference_costs:
            return self.cycles.batched_decode_step(contexts, self.mode,
                                                   fetched).cycles
        return _CycleTimedBackend._fast_forward_cycles(
            self, contexts, fetched, 1)[0]

    def prefill_cycles(self, n_tokens: int, start: int = 0) -> float:
        """Memoized :meth:`CycleModel.prefill_cycles`: one decode-step
        schedule per *distinct* prompt position ever seen, then pure
        float sums — the same value, since the per-position totals are
        deterministic and the sum order is unchanged."""
        if self.reference_costs:
            return self.cycles.prefill_cycles(n_tokens, start)
        if n_tokens <= 0:
            raise SimulationError("prompt_len must be positive")
        if not 0 <= start < n_tokens:
            raise SimulationError(
                f"prefill start {start} outside prompt of {n_tokens}")
        total = 0
        for pos in range(start, n_tokens):
            tok = self._ff_prefill.get(pos)
            if tok is None:
                tok = self.cycles.token_schedule(pos, "fused").total_cycles
                self._ff_prefill[pos] = tok
            total = total + tok
        return total

    # -- fast-forward decomposition -----------------------------------------
    #
    # One decode step's schedule (TokenScheduler.build_batched) is, in
    # segment order: embedding, then per layer attention + MLP, then the
    # final norm and LM head.  Only the attention segment depends on the
    # contexts, and only through (a) a per-member KV stream-vs-compute
    # max and (b) the per-member exposed-misc cycles of the pipeline
    # schedule.  The helpers below recompute exactly those terms with the
    # identical accumulation order while memoizing every deterministic
    # sub-result, so a K-step window costs O(K * (batch + layers)) float
    # adds instead of K full schedule builds.  Memoized stream-transfer
    # probes bypass the MCU's ``bytes_moved`` diagnostic accumulator.

    def _ff_stream_cycles(self, n_bytes: float) -> float:
        val = self._ff_stream.get(n_bytes)
        if val is None:
            sch = self.cycles.scheduler
            val = sch.mcu.stream_transfer(n_bytes).cycles
            self._ff_stream[n_bytes] = val
        return val

    def _ff_exposed(self, ctx: int) -> float:
        val = self._ff_exp.get(ctx)
        if val is None:
            sch = self.cycles.scheduler
            val = sch.pipeline.schedule(ctx, self.mode).exposed_misc_cycles
            self._ff_exp[ctx] = val
        return val

    def _ff_step_constants(self, batch: int) -> tuple:
        """Context-independent segment cycles of one batched step."""
        key = (batch, self.mode)
        val = self._ff_const.get(key)
        if val is not None:
            return val
        sch = self.cycles.scheduler
        m, q = sch.model, sch.quant
        d = m.head_dim
        row_bytes = m.hidden_size * q.activation_bits / 8
        emb = batch * self._ff_stream_cycles(row_bytes)
        mlp = tuple(s.cycles
                    for s in sch.mlp_segments(0, self.mode, batch=batch))
        final = batch * sch.spu.rmsnorm_cycles(m.hidden_size,
                                               square_sum_free=True)
        lm = sch._proj_segment("lm_head", m.vocab_size // sch.tp,
                               m.hidden_size, mode=self.mode,
                               batch=batch).cycles

        def weight_stage(out_rows: int, copies: int,
                         in_cols: int | None = None) -> float:
            if in_cols is None:
                in_cols = m.hidden_size
            n_bytes = out_rows * in_cols * q.effective_weight_bits / 8
            transfer = self._ff_stream_cycles(n_bytes)
            compute = batch * out_rows * sch._tiles(in_cols)
            return copies * max(transfer, compute)

        wsum = 0.0
        if self.mode == "fused":
            wsum += weight_stage(d, m.num_heads // sch.tp)
            wsum += 2 * weight_stage(d, m.kv_heads // sch.tp)
            wsum += weight_stage(m.hidden_size, 1,
                                 in_cols=m.hidden_size // sch.tp)
        else:
            wsum += weight_stage(m.hidden_size // sch.tp, 1)
            wsum += 2 * weight_stage(m.kv_dim // sch.tp, 1)
            wsum += weight_stage(m.hidden_size, 1,
                                 in_cols=m.hidden_size // sch.tp)
        val = (emb, mlp, final, lm, wsum)
        self._ff_const[key] = val
        return val

    def _ff_kv_tx(self, fetch: int) -> float:
        """Per-head-group KV stream-transfer cycles of one member
        fetching ``fetch`` tokens (zero tokens stream nothing) — the
        scalar source of truth behind the dense KV-stream table."""
        if fetch <= 0:
            return 0.0
        sch = self.cycles.scheduler
        m, q = sch.model, sch.quant
        payload = fetch * m.head_dim * q.kv_bits / 8
        packs = fetch * q.kv_pack_bits / 8
        group = m.num_heads // m.kv_heads
        return self._ff_stream_cycles(payload + packs) / group

    def _ff_tables(self, max_ctx: int, max_fetch: int
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Dense exposed-misc / KV-stream tables covering the given
        context and fetch ranges (inclusive) as far as the size cap
        allows: tables start at ``_FF_TABLE_INIT`` entries and double
        on demand up to ``_FF_TABLE_CAP``; indices past the returned
        length are served by the scalar memo helpers, which fill every
        dense entry too — so both paths share one value per index."""
        hard_cap = min(self.model_config.max_context + 2, _FF_TABLE_CAP)
        needed = min(max(max_ctx, max_fetch) + 1, hard_cap)
        size = min(_FF_TABLE_INIT, hard_cap) if self._ff_exp_tab is None \
            else len(self._ff_exp_tab)
        while size < needed:
            size = min(size * 2, hard_cap)
        if self._ff_exp_tab is None or size > len(self._ff_exp_tab):
            exp_tab = np.full(size, np.nan)
            kvtx_tab = np.full(size, np.nan)
            kvtx_tab[0] = 0.0
            if self._ff_exp_tab is not None:
                assert self._ff_kvtx_tab is not None
                exp_tab[:len(self._ff_exp_tab)] = self._ff_exp_tab
                kvtx_tab[:len(self._ff_kvtx_tab)] = self._ff_kvtx_tab
            self._ff_exp_tab = exp_tab
            self._ff_kvtx_tab = kvtx_tab
        exp_tab, kvtx_tab = self._ff_exp_tab, self._ff_kvtx_tab
        top_ctx = min(max_ctx + 1, len(exp_tab))
        for ctx in np.nonzero(np.isnan(exp_tab[:top_ctx]))[0].tolist():
            exp_tab[ctx] = self._ff_exposed(ctx)
        top_fetch = min(max_fetch + 1, len(kvtx_tab))
        for fetch in np.nonzero(
                np.isnan(kvtx_tab[:top_fetch]))[0].tolist():
            kvtx_tab[fetch] = self._ff_kv_tx(fetch)
        return exp_tab, kvtx_tab

    def _fast_forward_cycles(self, contexts: Sequence[int],
                             fetched: Sequence[int] | None,
                             n_steps: int) -> Sequence[float]:
        sch = self.cycles.scheduler
        m, q = sch.model, sch.quant
        d = m.head_dim
        group = m.num_heads // m.kv_heads
        tiles_d = sch._tiles(d)
        heads = m.num_heads // sch.tp
        emb, mlp, final, lm, wsum = self._ff_step_constants(len(contexts))
        if fetched is None:
            fetched = contexts
        if n_steps > 1:
            # Vectorized window: per-member terms gather from the dense
            # memo tables and fold in the same member order, the layer
            # fold runs as whole-window adds — every elementwise IEEE
            # op pairs the same operands as the scalar loop below, so
            # the floats are bit-identical (pinned by the telemetry
            # property tests).
            exp_tab, kvtx_tab = self._ff_tables(
                max(contexts) + n_steps - 1,
                max(fetched) + n_steps - 1)
            steps = np.arange(n_steps, dtype=np.int64)
            cycles = np.full(n_steps, wsum)
            exposed = np.zeros(n_steps)
            for c0, f0 in zip(contexts, fetched):
                ctxs = c0 + steps
                if f0 + n_steps <= len(kvtx_tab):
                    kvtx = kvtx_tab[f0 + steps]
                else:
                    # Range spills past the dense cap: assemble the
                    # identical values from the sparse memo.
                    kvtx = np.array([self._ff_kv_tx(f)
                                     for f in range(f0, f0 + n_steps)])
                cycles = cycles + 2 * heads * np.maximum(
                    kvtx, (ctxs + 1) * tiles_d)
                if c0 + n_steps <= len(exp_tab):
                    exposed = exposed + exp_tab[ctxs]
                else:
                    exposed = exposed + np.array(
                        [self._ff_exposed(c)
                         for c in range(c0, c0 + n_steps)])
            attn = cycles + exposed
            total = np.zeros(n_steps)
            total = total + emb
            for _ in range(m.num_layers):
                total = total + attn
                for seg in mlp:
                    total = total + seg
            total = total + final
            total = total + lm
            return total
        out = []
        for j in range(n_steps):
            cycles = wsum
            exposed = 0.0
            for c0, f0 in zip(contexts, fetched):
                ctx = c0 + j
                fetch = f0 + j
                if fetch > 0:
                    payload = fetch * d * q.kv_bits / 8
                    packs = fetch * q.kv_pack_bits / 8
                    kv_tx = self._ff_stream_cycles(payload + packs) / group
                else:
                    kv_tx = 0.0
                cycles += 2 * heads * max(kv_tx, (ctx + 1) * tiles_d)
                exposed += self._ff_exposed(ctx)
            attn = cycles + exposed
            total = 0.0
            total += emb
            for _ in range(m.num_layers):
                total += attn
                for seg in mlp:
                    total += seg
            total += final
            total += lm
            out.append(total)
        return out


class CycleModelBackend(_TimingStreamMixin, _CycleTimedBackend):
    """Timing-only backend: exact cycle model, synthetic token stream."""

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, mode: str = "fused",
                 n_slots: int = 8, vpu: VpuSpec | None = None,
                 kv_mode: str = "slotted", block_size: int = 16,
                 n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True,
                 token_oracle: TokenOracle | None = None,
                 tp: int = 1, reference_costs: bool = False) -> None:
        super().__init__(model_config, quant, platform, mode, n_slots, vpu,
                         kv_mode=kv_mode, block_size=block_size,
                         n_kv_blocks=n_kv_blocks,
                         prefix_sharing=prefix_sharing, tp=tp,
                         reference_costs=reference_costs)
        self.token_oracle = token_oracle

    def prefill(self, state: RequestState) -> float:
        tokens = state.sequence_tokens()
        cached = self._cached_prefix(state)
        if self.paged_kv is not None:
            assert state.slot is not None
            self.paged_kv.advance(state.slot, len(tokens) - cached)
            self.paged_kv.commit_prefix(state.slot, tokens)
        state.position = len(tokens)
        state.logits = None
        # Migration resume: KV that arrived with the checkpoint costs
        # link transfer (charged by the router), never compute here.
        start = min(max(cached, state.resume_skip), len(tokens))
        return self.prefill_cycles(len(tokens), start=start)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        contexts = [s.context for s in states]
        cycles = self.step_cycles(contexts, self._fetch_plan(states,
                                                             contexts))
        for state in states:
            state.pending_token  # validates the step is owed
            if self.paged_kv is not None:
                assert state.slot is not None
                self.paged_kv.advance(state.slot)
            state.position += 1
        return cycles


class FunctionalBackend(_CycleTimedBackend):
    """Functional pipeline + batched cycle model over real KV storage."""

    def __init__(self, qweights, platform: PlatformConfig = KV260,
                 mode: str = "fused", n_slots: int = 8,
                 functional: QuantizedModel | None = None,
                 kv_mode: str = "slotted", block_size: int = 16,
                 n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True) -> None:
        super().__init__(qweights.config, qweights.quant, platform, mode,
                         n_slots, kv_mode=kv_mode, block_size=block_size,
                         n_kv_blocks=n_kv_blocks,
                         prefix_sharing=prefix_sharing, store_kv_data=True)
        self.functional = functional if functional is not None \
            else QuantizedModel(qweights)
        if kv_mode == "slotted":
            # Real storage replaces the mixin's slot counter: the
            # slotted cache has the same allocate()/free(slot) surface.
            self.kv = SlottedKVCache(qweights.config, n_slots,
                                     qweights.quant.kv_bits)
            self._slots = self.kv
        else:
            assert self.paged_kv is not None
            self.kv = self.paged_kv

    def prefill(self, state: RequestState) -> float:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} not admitted")
        tokens = state.sequence_tokens()
        if len(tokens) > self.model_config.max_context:
            raise SimulationError(
                f"request {state.request_id}: {len(tokens)} tokens exceed "
                f"the {self.model_config.max_context}-token context")
        cached = self._cached_prefix(state)
        logits, _ = self.functional.prefill(tokens,
                                            self.kv.view(state.slot),
                                            start=cached)
        if self.paged_kv is not None:
            self.paged_kv.commit_prefix(state.slot, tokens)
        state.logits = logits
        state.position = len(tokens)
        return self.prefill_cycles(len(tokens), start=cached)

    def sample(self, state: RequestState) -> int:
        if state.logits is None:
            raise SimulationError(
                f"request {state.request_id} has no logits to sample")
        sampler = state.request.sampler
        if sampler is None:
            return int(np.argmax(state.logits))
        return sampler.sample(state.logits)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        contexts = [s.context for s in states]
        cycles = self.step_cycles(contexts, self._fetch_plan(states,
                                                             contexts))
        for state in states:
            if state.slot is None:
                raise SimulationError(
                    f"request {state.request_id} not admitted")
        # One stacked forward for the whole batch: every weight matrix
        # multiplies all pending tokens at once (bit-identical to the
        # per-state decode_step loop — the schedule is per column).
        logits = self.functional.forward_batch(
            [s.pending_token for s in states],
            [self.kv.view(s.slot) for s in states],
            [s.position for s in states])
        for i, state in enumerate(states):
            state.logits = logits[i]
            state.position += 1
        return cycles


class AnalyticalBackend(_TimingStreamMixin, _KVMixin):
    """Closed-form roofline backend (Table II arithmetic, batched).

    Per step: the weight stream plus per-sequence KV traffic at the
    platform's (derated) bandwidth, against the DOT engine's compute
    rate scaled by batch — whichever is slower sets the step time.  In
    paged mode the KV read traffic is charged per resident block
    (:func:`repro.memory.traffic.batched_decode_traffic`).
    """

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, n_slots: int = 8,
                 lanes: int = 128, ddr_efficiency: float = 0.95,
                 kv_mode: str = "slotted", block_size: int = 16,
                 n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True,
                 token_oracle: TokenOracle | None = None,
                 tp: int = 1, reference_costs: bool = False) -> None:
        if platform.pl_freq_hz <= 0:
            raise SimulationError(
                f"platform {platform.name} has no PL clock")
        if not 0 < ddr_efficiency <= 1:
            raise SimulationError(
                f"ddr_efficiency must be in (0, 1], got {ddr_efficiency}")
        if tp < 1:
            raise SimulationError(
                f"tensor-parallel degree must be >= 1: {tp}")
        self.model_config = model_config
        self.quant = quant
        self.platform = platform
        self.lanes = lanes
        self.ddr_efficiency = ddr_efficiency
        self.token_oracle = token_oracle
        self.tp = tp
        self.reference_costs = reference_costs
        self._ff_const: dict[int, tuple] = {}
        self._init_kv(model_config, quant, platform, kv_mode, n_slots,
                      block_size, n_kv_blocks, prefix_sharing,
                      store_data=False)

    @property
    def freq_hz(self) -> float:
        return self.platform.pl_freq_hz

    def step_cycles(self, contexts: Sequence[int],
                    fetched: Sequence[int] | None = None) -> float:
        # One-step window of the decomposed roofline: term-by-term the
        # arithmetic of memory.traffic.batched_decode_traffic, so the
        # cycles are the identical floats without building the per-member
        # traffic breakdown objects.  Explicit class call: the sharded
        # mixin adds collective time on top of this method.
        # ``reference_costs`` keeps the original object-building path as
        # the pre-optimization baseline for equality tests and the
        # simperf benchmark.
        _validate_batch(contexts, fetched)
        if self.reference_costs:
            from ..memory.traffic import batched_decode_traffic

            m = self.model_config
            traffic = batched_decode_traffic(m, self.quant, contexts,
                                             fetched, tp=self.tp)
            bandwidth_s = traffic.total_bytes \
                / (self.platform.bandwidth_bytes_per_s
                   * self.ddr_efficiency)
            sharded = (m.decode_stream_params() - m.norm_params()) \
                / self.tp + m.norm_params()
            macs = len(contexts) * sharded
            compute_s = macs / (self.lanes * self.freq_hz)
            return max(bandwidth_s, compute_s) * self.freq_hz
        return float(AnalyticalBackend._fast_forward_cycles(
            self, contexts, fetched, 1)[0])

    def prefill_cycles(self, n_tokens: int, start: int = 0) -> float:
        """Roofline prefill: one single-member step per prompt position
        (all positions evaluated in one decomposed window, summed in
        position order exactly as the per-step loop would)."""
        if n_tokens <= 0:
            raise SimulationError("prompt_len must be positive")
        if not 0 <= start < n_tokens:
            raise SimulationError(
                f"prefill start {start} outside prompt of {n_tokens}")
        if self.reference_costs:
            return sum(AnalyticalBackend.step_cycles(self, [pos])
                       for pos in range(start, n_tokens))
        return sum(AnalyticalBackend._fast_forward_cycles(
            self, [start], None, n_tokens - start))

    def _ff_roofline_constants(self, batch: int) -> tuple:
        """Context-independent terms of one roofline step at ``batch``."""
        val = self._ff_const.get(batch)
        if val is not None:
            return val
        from ..memory.traffic import decode_traffic

        m, q = self.model_config, self.quant
        base = decode_traffic(m, q, 0, self.tp)
        fixed = base.weight_bytes + batch * base.embedding_row_bytes \
            + base.norm_bytes
        kv_write = batch * (base.kv_write_bytes + base.kv_write_pack_bytes)
        kv_elems_per_token = 2 * m.num_layers * m.kv_dim / self.tp
        packs_per_token = 2 * m.num_layers * m.kv_heads / self.tp
        denom = self.platform.bandwidth_bytes_per_s * self.ddr_efficiency
        sharded = (m.decode_stream_params() - m.norm_params()) / self.tp \
            + m.norm_params()
        compute_s = batch * sharded / (self.lanes * self.freq_hz)
        val = (fixed, kv_write, kv_elems_per_token, packs_per_token,
               denom, compute_s)
        self._ff_const[batch] = val
        return val

    def _fast_forward_cycles(self, contexts: Sequence[int],
                             fetched: Sequence[int] | None,
                             n_steps: int) -> Sequence[float]:
        """:meth:`step_cycles` over a static-batch window without the
        traffic-breakdown objects.

        Step ``j`` of the window evaluates the roofline at contexts (and
        fetched tokens) advanced by ``j``; every arithmetic op mirrors
        :func:`repro.memory.traffic.batched_decode_traffic` term by term
        in the same accumulation order — same IEEE ops on the same
        values, so the floats are bit-identical to stepping the loop.
        """
        (fixed, kv_write, kv_elems_per_token, packs_per_token, denom,
         compute_s) = self._ff_roofline_constants(len(contexts))
        if fetched is None:
            fetched = contexts
        freq = self.freq_hz
        if n_steps > 1:
            # Vectorized window: fold the per-member KV terms in member
            # order with whole-window adds — the same IEEE ops on the
            # same operands as the scalar loop below, so the cycles are
            # bit-identical (pinned by the telemetry property tests).
            steps = np.arange(n_steps, dtype=np.int64)
            kv_read = np.zeros(n_steps)
            for f0 in fetched:
                fetches = f0 + steps
                kv_read = kv_read \
                    + (fetches * kv_elems_per_token
                       * self.quant.kv_bits / 8
                       + fetches * packs_per_token
                       * self.quant.kv_pack_bits / 8)
            total = fixed + kv_read + kv_write
            bandwidth_s = total / denom
            return np.maximum(bandwidth_s, compute_s) * freq
        out = []
        for j in range(n_steps):
            kv_read = 0.0
            for f0 in fetched:
                fetch = f0 + j
                kv_read = kv_read \
                    + (fetch * kv_elems_per_token * self.quant.kv_bits / 8
                       + fetch * packs_per_token
                       * self.quant.kv_pack_bits / 8)
            total = fixed + kv_read + kv_write
            bandwidth_s = total / denom
            out.append(max(bandwidth_s, compute_s) * freq)
        return out

    def prefill(self, state: RequestState) -> float:
        tokens = state.sequence_tokens()
        cached = self._cached_prefix(state)
        if self.paged_kv is not None:
            assert state.slot is not None
            self.paged_kv.advance(state.slot, len(tokens) - cached)
            self.paged_kv.commit_prefix(state.slot, tokens)
        state.position = len(tokens)
        state.logits = None
        # Migration resume: transferred KV is free compute (see
        # CycleModelBackend.prefill).
        start = min(max(cached, state.resume_skip), len(tokens))
        return self.prefill_cycles(len(tokens), start=start)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        contexts = [s.context for s in states]
        cycles = self.step_cycles(contexts, self._fetch_plan(states,
                                                             contexts))
        for state in states:
            state.pending_token
            if self.paged_kv is not None:
                assert state.slot is not None
                self.paged_kv.advance(state.slot)
            state.position += 1
        return cycles
