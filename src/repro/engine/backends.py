"""Execution backends of the engine: who actually runs a batched step.

Three implementations of one protocol, mirroring the repo's three
fidelity levels:

* :class:`FunctionalBackend` — the hardware-equivalent functional
  pipeline (:class:`repro.model.quantized.QuantizedModel`) over multi-
  sequence KV storage, timed by the batched cycle model.  Exact tokens
  *and* exact timing; only for models small enough to run in numpy.
* :class:`CycleModelBackend` — timing-only.  Tokens are a deterministic
  synthetic stream (no EOS), so requests retire at their length limit;
  the per-step cost comes from
  :meth:`repro.core.cyclemodel.CycleModel.batched_decode_step`.  Works
  for any model size, including LLaMA2-7B.
* :class:`AnalyticalBackend` — closed-form bandwidth/compute roofline
  per step, no scheduling detail.  The fastest way to sweep serving
  scenarios analytically.

All three share the batch cost split of the paper's Fig. 2: the
quantized weight stream is charged once per step; KV traffic and misc
work are charged per batch member.

Every backend also supports both KV disciplines (``kv_mode``):

* ``"slotted"`` — one contiguous max-length reservation per sequence
  (:class:`repro.model.kvcache.SlottedKVCache` or a slot counter).
* ``"paged"`` — block-granular allocation with shared-prefix reuse
  (:class:`repro.kv.PagedKVCache`).  Prefill skips prefix tokens whose
  blocks are already resident, and batched decode charges each physical
  block's DRAM stream once per step.  The timing-only backends run the
  same accounting (``store_data=False``), so all three make identical
  admission and reuse decisions — which is what the cross-backend
  differential test harness checks.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..core.cyclemodel import CycleModel
from ..core.vpu import VpuSpec
from ..errors import CapacityError, SimulationError
from ..kv import PagedKVCache, blocks_for_budget
from ..model.kvcache import SlottedKVCache
from ..model.quantized import QuantizedModel
from .request import RequestState

KV_MODES = ("slotted", "paged")

#: maps (request_id, step index) to the token that step must produce —
#: lets timing-only backends replay an exact recorded stream.
TokenOracle = Callable[[int, int], int]


@runtime_checkable
class EngineBackend(Protocol):
    """What the continuous-batching scheduler needs from an executor."""

    model_config: ModelConfig
    quant: QuantConfig
    platform: PlatformConfig

    @property
    def freq_hz(self) -> float:
        """Clock that converts charged cycles into seconds."""
        ...

    def admit(self, state: RequestState) -> None:
        """Claim per-sequence resources (a KV slot) for ``state``."""
        ...

    def release(self, state: RequestState) -> None:
        """Free ``state``'s per-sequence resources (retire or preempt)."""
        ...

    def prefill(self, state: RequestState) -> float:
        """Feed prompt (+ any recomputed tokens); return cycles spent."""
        ...

    def sample(self, state: RequestState) -> int:
        """Produce the next token for ``state`` from its current logits."""
        ...

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        """Forward each state's pending token in one shared step; return cycles."""
        ...


def derive_kv_token_budget(model: ModelConfig, quant: QuantConfig,
                           platform: PlatformConfig, cap_tokens: int,
                           system=None) -> int:
    """KV tokens the platform's DRAM holds beyond weights + reservation.

    The capacity discipline of the paper's Sec. VII-A carried to serving:
    whatever DRAM remains after the quantized weights and the bare-metal
    reservation is the KV budget, clamped to ``cap_tokens`` (typically
    ``max_batch * max_context`` — more can never be resident at once).
    """
    if system is None:
        from ..runtime.baremetal import BareMetalSystem

        system = BareMetalSystem(platform)
    report = system.capacity_report(model, quant, 1)
    per_token = report.kv_bytes
    free = report.dram_bytes - report.weight_bytes - report.reserved_bytes
    if free < per_token:
        raise CapacityError(
            f"{model.name} weights leave no KV room on {platform.name}")
    return int(min(free // per_token, cap_tokens))


def kv_discipline_kwargs(kv_mode: str, budget_tokens: int | None = None,
                         block_size: int = 16,
                         n_kv_blocks: int | None = None,
                         ) -> tuple[dict, dict]:
    """``(backend_kwargs, scheduler_kwargs)`` for one KV discipline.

    The single encoding of the equal-DRAM rule every slotted-vs-paged
    comparison relies on: a token budget caps the *scheduler* in slotted
    mode but sizes the backend's block *pool* (via
    :func:`repro.kv.blocks_for_budget`) in paged mode, so the two
    disciplines always compete over the same storage.
    """
    backend = dict(kv_mode=kv_mode, block_size=block_size,
                   n_kv_blocks=n_kv_blocks)
    scheduler: dict = {}
    if kv_mode == "paged":
        if n_kv_blocks is None and budget_tokens:
            backend["n_kv_blocks"] = blocks_for_budget(budget_tokens,
                                                       block_size)
    elif budget_tokens:
        scheduler["kv_token_budget"] = budget_tokens
    return backend, scheduler


def build_backend(kind: str, model_config: ModelConfig, quant: QuantConfig,
                  platform: PlatformConfig = KV260, *, mode: str = "fused",
                  n_slots: int = 8, tp: int = 1, interconnect=None,
                  qweights=None, token_oracle: TokenOracle | None = None,
                  vpu: VpuSpec | None = None, kv_mode: str = "slotted",
                  block_size: int = 16, n_kv_blocks: int | None = None,
                  prefix_sharing: bool = True) -> "EngineBackend":
    """One constructor for every backend kind, single-device or sharded.

    ``tp > 1`` returns the tensor-parallel counterpart from
    :mod:`repro.cluster.tp` (imported lazily — the cluster layer sits
    above the engine); ``interconnect`` is a
    :class:`repro.cluster.interconnect.LinkSpec` and defaults to the
    10GbE ring.  The functional kinds need ``qweights``.
    """
    if kind not in ("functional", "cycle", "analytical"):
        raise SimulationError(
            f"unknown backend kind {kind!r}; choose from "
            "('functional', 'cycle', 'analytical')")
    if kind == "functional" and qweights is None:
        raise SimulationError("functional backend needs quantized weights")
    kv = dict(kv_mode=kv_mode, block_size=block_size,
              n_kv_blocks=n_kv_blocks, prefix_sharing=prefix_sharing)
    if tp > 1:
        from ..cluster.interconnect import TEN_GIG_ETHERNET
        from ..cluster.tp import (ShardedAnalyticalBackend,
                                  ShardedCycleBackend,
                                  ShardedFunctionalBackend)

        link = interconnect if interconnect is not None else TEN_GIG_ETHERNET
        if kind == "cycle":
            return ShardedCycleBackend(model_config, quant, platform, tp=tp,
                                       interconnect=link, mode=mode,
                                       n_slots=n_slots, vpu=vpu,
                                       token_oracle=token_oracle, **kv)
        if kind == "analytical":
            return ShardedAnalyticalBackend(model_config, quant, platform,
                                            tp=tp, interconnect=link,
                                            n_slots=n_slots,
                                            token_oracle=token_oracle, **kv)
        return ShardedFunctionalBackend(qweights, platform, tp=tp,
                                        interconnect=link, mode=mode,
                                        n_slots=n_slots, **kv)
    if kind == "cycle":
        return CycleModelBackend(model_config, quant, platform, mode=mode,
                                 n_slots=n_slots, vpu=vpu,
                                 token_oracle=token_oracle, **kv)
    if kind == "analytical":
        return AnalyticalBackend(model_config, quant, platform,
                                 n_slots=n_slots,
                                 token_oracle=token_oracle, **kv)
    return FunctionalBackend(qweights, platform, mode=mode,
                             n_slots=n_slots, **kv)


class _SlotCounter:
    """Slot accounting for timing-only backends (no real storage)."""

    def __init__(self, n_slots: int) -> None:
        self.n_slots = n_slots
        self._used: set[int] = set()

    def allocate(self) -> int:
        for slot in range(self.n_slots):
            if slot not in self._used:
                self._used.add(slot)
                return slot
        raise SimulationError(f"all {self.n_slots} KV slots are allocated")

    def free(self, slot: int) -> None:
        if slot not in self._used:
            raise SimulationError(f"slot {slot} is not allocated")
        self._used.discard(slot)


def _synthetic_token(state: RequestState, vocab_size: int,
                     eos_id: int | None) -> int:
    """Deterministic pseudo-token stream for timing-only backends.

    Knuth-style multiplicative hash of (request, step); never returns the
    EOS id, so timing-only requests always run to their length limit.
    """
    token = (2654435761 * (state.request_id + 1)
             + 40503 * (state.n_generated + 1)) % vocab_size
    if eos_id is not None and token == eos_id:
        token = (token + 1) % vocab_size
    return token


def _build_paged_kv(model_config: ModelConfig, quant: QuantConfig,
                    platform: PlatformConfig, n_slots: int,
                    block_size: int, n_kv_blocks: int | None,
                    store_data: bool, prefix_sharing: bool) -> PagedKVCache:
    """Size and build the paged pool; default capacity mirrors the
    token budget the scheduler would derive for slotted KV, so the two
    modes compete over the same DRAM bytes."""
    if n_kv_blocks is None:
        budget = derive_kv_token_budget(
            model_config, quant, platform,
            cap_tokens=n_slots * model_config.max_context)
        n_kv_blocks = blocks_for_budget(budget, block_size)
    return PagedKVCache(model_config, n_kv_blocks, block_size,
                        kv_bits=quant.kv_bits, store_data=store_data,
                        prefix_sharing=prefix_sharing)


class _KVMixin:
    """Shared KV discipline plumbing over slotted or paged accounting.

    :meth:`_init_kv` sets exactly one of ``_slots`` (slotted) or
    ``paged_kv`` (paged); ``state.slot`` holds a slot index or a paged
    sequence id.  Keeping this logic in one place is what guarantees
    all backends make identical admission and reuse decisions — the
    property the differential harness checks.
    """

    paged_kv: PagedKVCache | None = None
    #: slot authority: a counter for timing backends, or the slotted
    #: storage itself (same allocate/free surface) for the functional one.
    _slots: _SlotCounter | SlottedKVCache | None = None

    def _init_kv(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig, kv_mode: str, n_slots: int,
                 block_size: int, n_kv_blocks: int | None,
                 prefix_sharing: bool, store_data: bool) -> None:
        if kv_mode not in KV_MODES:
            raise SimulationError(
                f"unknown kv_mode {kv_mode!r}; choose from {KV_MODES}")
        self.kv_mode = kv_mode
        self._n_slots = n_slots
        if kv_mode == "paged":
            self.paged_kv = _build_paged_kv(
                model_config, quant, platform, n_slots, block_size,
                n_kv_blocks, store_data, prefix_sharing)
        else:
            self._slots = _SlotCounter(n_slots)

    @property
    def n_slots(self) -> int:
        return self._n_slots

    def admit(self, state: RequestState) -> None:
        if self.paged_kv is not None:
            # The paged pool opens unlimited sequences; the slot count
            # stays the concurrency authority so both KV disciplines
            # enforce the same admission cap.
            if self.paged_kv.n_sequences >= self._n_slots:
                raise SimulationError(
                    f"all {self._n_slots} KV slots are allocated")
            state.slot = self.paged_kv.allocate(state.sequence_tokens())
        else:
            assert self._slots is not None
            state.slot = self._slots.allocate()

    def release(self, state: RequestState) -> None:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} holds no slot")
        if self.paged_kv is not None:
            self.paged_kv.free(state.slot)
        else:
            assert self._slots is not None
            self._slots.free(state.slot)
        state.slot = None

    def _cached_prefix(self, state: RequestState) -> int:
        """Prompt tokens whose KV the paged cache already holds."""
        if self.paged_kv is None or state.slot is None:
            return 0
        return self.paged_kv.cached_length(state.slot)

    def _fetch_plan(self, states: Sequence[RequestState],
                    contexts: Sequence[int]) -> list[int] | None:
        """Per-member KV fetch counts for a batched step (paged only)."""
        if self.paged_kv is None:
            return None
        return self.paged_kv.fetch_plan([s.slot for s in states], contexts)


class _CycleTimedBackend(_KVMixin):
    """Shared plumbing: batched cycle-model timing + KV bookkeeping.

    ``tp > 1`` makes the cycle model account ONE tensor-parallel shard
    (1/tp of the weight and KV streams); interconnect time for the
    partial-sum collectives is added by the :mod:`repro.cluster.tp`
    subclasses, never here.
    """

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig, mode: str, n_slots: int,
                 vpu: VpuSpec | None = None, kv_mode: str = "slotted",
                 block_size: int = 16, n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True,
                 store_kv_data: bool = False, tp: int = 1) -> None:
        self.model_config = model_config
        self.quant = quant
        self.platform = platform
        self.mode = mode
        self.tp = tp
        self.cycles = CycleModel(model_config, quant, platform, vpu=vpu,
                                 tp=tp)
        self._init_kv(model_config, quant, platform, kv_mode, n_slots,
                      block_size, n_kv_blocks, prefix_sharing,
                      store_kv_data)

    @property
    def freq_hz(self) -> float:
        return self.platform.pl_freq_hz

    def step_cycles(self, contexts: Sequence[int],
                    fetched: Sequence[int] | None = None) -> float:
        return self.cycles.batched_decode_step(contexts, self.mode,
                                               fetched).cycles

    def prefill_cycles(self, n_tokens: int, start: int = 0) -> float:
        return self.cycles.prefill_cycles(n_tokens, start)


class CycleModelBackend(_CycleTimedBackend):
    """Timing-only backend: exact cycle model, synthetic token stream."""

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, mode: str = "fused",
                 n_slots: int = 8, vpu: VpuSpec | None = None,
                 kv_mode: str = "slotted", block_size: int = 16,
                 n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True,
                 token_oracle: TokenOracle | None = None,
                 tp: int = 1) -> None:
        super().__init__(model_config, quant, platform, mode, n_slots, vpu,
                         kv_mode=kv_mode, block_size=block_size,
                         n_kv_blocks=n_kv_blocks,
                         prefix_sharing=prefix_sharing, tp=tp)
        self.token_oracle = token_oracle

    def prefill(self, state: RequestState) -> float:
        tokens = state.sequence_tokens()
        cached = self._cached_prefix(state)
        if self.paged_kv is not None:
            assert state.slot is not None
            self.paged_kv.advance(state.slot, len(tokens) - cached)
            self.paged_kv.commit_prefix(state.slot, tokens)
        state.position = len(tokens)
        state.logits = None
        return self.prefill_cycles(len(tokens), start=cached)

    def sample(self, state: RequestState) -> int:
        if self.token_oracle is not None:
            return self.token_oracle(state.request_id, state.n_generated)
        return _synthetic_token(state, self.model_config.vocab_size,
                                state.request.eos_id)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        contexts = [s.context for s in states]
        cycles = self.step_cycles(contexts, self._fetch_plan(states,
                                                             contexts))
        for state in states:
            state.pending_token  # validates the step is owed
            if self.paged_kv is not None:
                assert state.slot is not None
                self.paged_kv.advance(state.slot)
            state.position += 1
        return cycles


class FunctionalBackend(_CycleTimedBackend):
    """Functional pipeline + batched cycle model over real KV storage."""

    def __init__(self, qweights, platform: PlatformConfig = KV260,
                 mode: str = "fused", n_slots: int = 8,
                 functional: QuantizedModel | None = None,
                 kv_mode: str = "slotted", block_size: int = 16,
                 n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True) -> None:
        super().__init__(qweights.config, qweights.quant, platform, mode,
                         n_slots, kv_mode=kv_mode, block_size=block_size,
                         n_kv_blocks=n_kv_blocks,
                         prefix_sharing=prefix_sharing, store_kv_data=True)
        self.functional = functional if functional is not None \
            else QuantizedModel(qweights)
        if kv_mode == "slotted":
            # Real storage replaces the mixin's slot counter: the
            # slotted cache has the same allocate()/free(slot) surface.
            self.kv = SlottedKVCache(qweights.config, n_slots,
                                     qweights.quant.kv_bits)
            self._slots = self.kv
        else:
            assert self.paged_kv is not None
            self.kv = self.paged_kv

    def prefill(self, state: RequestState) -> float:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} not admitted")
        tokens = state.sequence_tokens()
        if len(tokens) > self.model_config.max_context:
            raise SimulationError(
                f"request {state.request_id}: {len(tokens)} tokens exceed "
                f"the {self.model_config.max_context}-token context")
        cached = self._cached_prefix(state)
        logits, _ = self.functional.prefill(tokens,
                                            self.kv.view(state.slot),
                                            start=cached)
        if self.paged_kv is not None:
            self.paged_kv.commit_prefix(state.slot, tokens)
        state.logits = logits
        state.position = len(tokens)
        return self.prefill_cycles(len(tokens), start=cached)

    def sample(self, state: RequestState) -> int:
        if state.logits is None:
            raise SimulationError(
                f"request {state.request_id} has no logits to sample")
        sampler = state.request.sampler
        if sampler is None:
            return int(np.argmax(state.logits))
        return sampler.sample(state.logits)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        contexts = [s.context for s in states]
        cycles = self.step_cycles(contexts, self._fetch_plan(states,
                                                             contexts))
        for state in states:
            if state.slot is None:
                raise SimulationError(
                    f"request {state.request_id} not admitted")
            token = state.pending_token
            state.logits = self.functional.decode_step(
                token, self.kv.view(state.slot), state.position)
            state.position += 1
        return cycles


class AnalyticalBackend(_KVMixin):
    """Closed-form roofline backend (Table II arithmetic, batched).

    Per step: the weight stream plus per-sequence KV traffic at the
    platform's (derated) bandwidth, against the DOT engine's compute
    rate scaled by batch — whichever is slower sets the step time.  In
    paged mode the KV read traffic is charged per resident block
    (:func:`repro.memory.traffic.batched_decode_traffic`).
    """

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, n_slots: int = 8,
                 lanes: int = 128, ddr_efficiency: float = 0.95,
                 kv_mode: str = "slotted", block_size: int = 16,
                 n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True,
                 token_oracle: TokenOracle | None = None,
                 tp: int = 1) -> None:
        if platform.pl_freq_hz <= 0:
            raise SimulationError(
                f"platform {platform.name} has no PL clock")
        if not 0 < ddr_efficiency <= 1:
            raise SimulationError(
                f"ddr_efficiency must be in (0, 1], got {ddr_efficiency}")
        if tp < 1:
            raise SimulationError(
                f"tensor-parallel degree must be >= 1: {tp}")
        self.model_config = model_config
        self.quant = quant
        self.platform = platform
        self.lanes = lanes
        self.ddr_efficiency = ddr_efficiency
        self.token_oracle = token_oracle
        self.tp = tp
        self._init_kv(model_config, quant, platform, kv_mode, n_slots,
                      block_size, n_kv_blocks, prefix_sharing,
                      store_data=False)

    @property
    def freq_hz(self) -> float:
        return self.platform.pl_freq_hz

    def step_cycles(self, contexts: Sequence[int],
                    fetched: Sequence[int] | None = None) -> float:
        from ..memory.traffic import batched_decode_traffic

        m = self.model_config
        traffic = batched_decode_traffic(m, self.quant, contexts, fetched,
                                         tp=self.tp)
        bandwidth_s = traffic.total_bytes \
            / (self.platform.bandwidth_bytes_per_s * self.ddr_efficiency)
        # A shard multiplies 1/tp of the projections but the full
        # (replicated) norm work.
        sharded = (m.decode_stream_params() - m.norm_params()) / self.tp \
            + m.norm_params()
        macs = len(contexts) * sharded
        compute_s = macs / (self.lanes * self.freq_hz)
        return max(bandwidth_s, compute_s) * self.freq_hz

    def prefill_cycles(self, n_tokens: int, start: int = 0) -> float:
        """Roofline prefill: one single-member step per prompt position."""
        if n_tokens <= 0:
            raise SimulationError("prompt_len must be positive")
        if not 0 <= start < n_tokens:
            raise SimulationError(
                f"prefill start {start} outside prompt of {n_tokens}")
        return sum(AnalyticalBackend.step_cycles(self, [pos])
                   for pos in range(start, n_tokens))

    def prefill(self, state: RequestState) -> float:
        tokens = state.sequence_tokens()
        cached = self._cached_prefix(state)
        if self.paged_kv is not None:
            assert state.slot is not None
            self.paged_kv.advance(state.slot, len(tokens) - cached)
            self.paged_kv.commit_prefix(state.slot, tokens)
        state.position = len(tokens)
        state.logits = None
        return self.prefill_cycles(len(tokens), start=cached)

    def sample(self, state: RequestState) -> int:
        if self.token_oracle is not None:
            return self.token_oracle(state.request_id, state.n_generated)
        return _synthetic_token(state, self.model_config.vocab_size,
                                state.request.eos_id)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        contexts = [s.context for s in states]
        cycles = self.step_cycles(contexts, self._fetch_plan(states,
                                                             contexts))
        for state in states:
            state.pending_token
            if self.paged_kv is not None:
                assert state.slot is not None
                self.paged_kv.advance(state.slot)
            state.position += 1
        return cycles
