"""Execution backends of the engine: who actually runs a batched step.

Three implementations of one protocol, mirroring the repo's three
fidelity levels:

* :class:`FunctionalBackend` — the hardware-equivalent functional
  pipeline (:class:`repro.model.quantized.QuantizedModel`) over a
  multi-sequence :class:`repro.model.kvcache.SlottedKVCache`, timed by
  the batched cycle model.  Exact tokens *and* exact timing; only for
  models small enough to run in numpy.
* :class:`CycleModelBackend` — timing-only.  Tokens are a deterministic
  synthetic stream (no EOS), so requests retire at their length limit;
  the per-step cost comes from
  :meth:`repro.core.cyclemodel.CycleModel.batched_decode_step`.  Works
  for any model size, including LLaMA2-7B.
* :class:`AnalyticalBackend` — closed-form bandwidth/compute roofline
  per step, no scheduling detail.  The fastest way to sweep serving
  scenarios analytically.

All three share the batch cost split of the paper's Fig. 2: the
quantized weight stream is charged once per step; KV traffic and misc
work are charged per batch member.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..core.cyclemodel import CycleModel
from ..core.vpu import VpuSpec
from ..errors import SimulationError
from ..model.kvcache import SlottedKVCache
from ..model.quantized import QuantizedModel
from .request import RequestState


@runtime_checkable
class EngineBackend(Protocol):
    """What the continuous-batching scheduler needs from an executor."""

    model_config: ModelConfig
    quant: QuantConfig
    platform: PlatformConfig

    @property
    def freq_hz(self) -> float:
        """Clock that converts charged cycles into seconds."""
        ...

    def admit(self, state: RequestState) -> None:
        """Claim per-sequence resources (a KV slot) for ``state``."""
        ...

    def release(self, state: RequestState) -> None:
        """Free ``state``'s per-sequence resources (retire or preempt)."""
        ...

    def prefill(self, state: RequestState) -> float:
        """Feed prompt (+ any recomputed tokens); return cycles spent."""
        ...

    def sample(self, state: RequestState) -> int:
        """Produce the next token for ``state`` from its current logits."""
        ...

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        """Forward each state's pending token in one shared step; return cycles."""
        ...


class _SlotCounter:
    """Slot accounting for timing-only backends (no real storage)."""

    def __init__(self, n_slots: int) -> None:
        self.n_slots = n_slots
        self._used: set[int] = set()

    def allocate(self) -> int:
        for slot in range(self.n_slots):
            if slot not in self._used:
                self._used.add(slot)
                return slot
        raise SimulationError(f"all {self.n_slots} KV slots are allocated")

    def free(self, slot: int) -> None:
        if slot not in self._used:
            raise SimulationError(f"slot {slot} is not allocated")
        self._used.discard(slot)


def _synthetic_token(state: RequestState, vocab_size: int,
                     eos_id: int | None) -> int:
    """Deterministic pseudo-token stream for timing-only backends.

    Knuth-style multiplicative hash of (request, step); never returns the
    EOS id, so timing-only requests always run to their length limit.
    """
    token = (2654435761 * (state.request_id + 1)
             + 40503 * (state.n_generated + 1)) % vocab_size
    if eos_id is not None and token == eos_id:
        token = (token + 1) % vocab_size
    return token


class _CycleTimedBackend:
    """Shared plumbing: batched cycle-model timing + slot bookkeeping."""

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig, mode: str, n_slots: int,
                 vpu: VpuSpec | None = None) -> None:
        self.model_config = model_config
        self.quant = quant
        self.platform = platform
        self.mode = mode
        self.cycles = CycleModel(model_config, quant, platform, vpu=vpu)
        self._slots = _SlotCounter(n_slots)

    @property
    def freq_hz(self) -> float:
        return self.platform.pl_freq_hz

    @property
    def n_slots(self) -> int:
        return self._slots.n_slots

    def admit(self, state: RequestState) -> None:
        state.slot = self._slots.allocate()

    def release(self, state: RequestState) -> None:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} holds no slot")
        self._slots.free(state.slot)
        state.slot = None

    def step_cycles(self, contexts: Sequence[int]) -> float:
        return self.cycles.batched_decode_step(contexts, self.mode).cycles

    def prefill_cycles(self, n_tokens: int) -> float:
        return self.cycles.prefill_cycles(n_tokens)


class CycleModelBackend(_CycleTimedBackend):
    """Timing-only backend: exact cycle model, synthetic token stream."""

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, mode: str = "fused",
                 n_slots: int = 8, vpu: VpuSpec | None = None) -> None:
        super().__init__(model_config, quant, platform, mode, n_slots, vpu)

    def prefill(self, state: RequestState) -> float:
        tokens = state.sequence_tokens()
        state.position = len(tokens)
        state.logits = None
        return self.prefill_cycles(len(tokens))

    def sample(self, state: RequestState) -> int:
        return _synthetic_token(state, self.model_config.vocab_size,
                                state.request.eos_id)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        cycles = self.step_cycles([s.context for s in states])
        for state in states:
            state.pending_token  # validates the step is owed
            state.position += 1
        return cycles


class FunctionalBackend(_CycleTimedBackend):
    """Functional pipeline + batched cycle model over slotted KV storage."""

    def __init__(self, qweights, platform: PlatformConfig = KV260,
                 mode: str = "fused", n_slots: int = 8,
                 functional: QuantizedModel | None = None) -> None:
        super().__init__(qweights.config, qweights.quant, platform, mode,
                         n_slots)
        self.functional = functional if functional is not None \
            else QuantizedModel(qweights)
        self.kv = SlottedKVCache(qweights.config, n_slots,
                                 qweights.quant.kv_bits)

    def admit(self, state: RequestState) -> None:
        state.slot = self.kv.allocate()

    def release(self, state: RequestState) -> None:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} holds no slot")
        self.kv.free(state.slot)
        state.slot = None

    def prefill(self, state: RequestState) -> float:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} not admitted")
        tokens = state.sequence_tokens()
        if len(tokens) > self.model_config.max_context:
            raise SimulationError(
                f"request {state.request_id}: {len(tokens)} tokens exceed "
                f"the {self.model_config.max_context}-token context")
        logits, _ = self.functional.prefill(tokens, self.kv.view(state.slot))
        state.logits = logits
        state.position = len(tokens)
        return self.prefill_cycles(len(tokens))

    def sample(self, state: RequestState) -> int:
        if state.logits is None:
            raise SimulationError(
                f"request {state.request_id} has no logits to sample")
        sampler = state.request.sampler
        if sampler is None:
            return int(np.argmax(state.logits))
        return sampler.sample(state.logits)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        cycles = self.step_cycles([s.context for s in states])
        for state in states:
            if state.slot is None:
                raise SimulationError(
                    f"request {state.request_id} not admitted")
            token = state.pending_token
            state.logits = self.functional.decode_step(
                token, self.kv.view(state.slot), state.position)
            state.position += 1
        return cycles


class AnalyticalBackend:
    """Closed-form roofline backend (Table II arithmetic, batched).

    Per step: the weight stream plus per-sequence KV traffic at the
    platform's (derated) bandwidth, against the DOT engine's compute
    rate scaled by batch — whichever is slower sets the step time.
    """

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, n_slots: int = 8,
                 lanes: int = 128, ddr_efficiency: float = 0.95) -> None:
        if platform.pl_freq_hz <= 0:
            raise SimulationError(
                f"platform {platform.name} has no PL clock")
        if not 0 < ddr_efficiency <= 1:
            raise SimulationError(
                f"ddr_efficiency must be in (0, 1], got {ddr_efficiency}")
        self.model_config = model_config
        self.quant = quant
        self.platform = platform
        self.lanes = lanes
        self.ddr_efficiency = ddr_efficiency
        self._slots = _SlotCounter(n_slots)

    @property
    def freq_hz(self) -> float:
        return self.platform.pl_freq_hz

    @property
    def n_slots(self) -> int:
        return self._slots.n_slots

    def admit(self, state: RequestState) -> None:
        state.slot = self._slots.allocate()

    def release(self, state: RequestState) -> None:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} holds no slot")
        self._slots.free(state.slot)
        state.slot = None

    def step_cycles(self, contexts: Sequence[int]) -> float:
        from ..memory.traffic import decode_traffic

        m, q = self.model_config, self.quant
        base = decode_traffic(m, q, 0)
        shared = base.weight_bytes + base.norm_bytes
        per_seq = 0.0
        for ctx in contexts:
            t = decode_traffic(m, q, ctx)
            per_seq += t.kv_bytes + t.embedding_row_bytes
        n_bytes = shared + per_seq
        bandwidth_s = n_bytes / (self.platform.bandwidth_bytes_per_s
                                 * self.ddr_efficiency)
        macs = len(contexts) * m.decode_stream_params()
        compute_s = macs / (self.lanes * self.freq_hz)
        return max(bandwidth_s, compute_s) * self.freq_hz

    def prefill(self, state: RequestState) -> float:
        tokens = state.sequence_tokens()
        state.position = len(tokens)
        state.logits = None
        return sum(self.step_cycles([pos]) for pos in range(len(tokens)))

    def sample(self, state: RequestState) -> int:
        return _synthetic_token(state, self.model_config.vocab_size,
                                state.request.eos_id)

    def decode_batch(self, states: Sequence[RequestState]) -> float:
        cycles = self.step_cycles([s.context for s in states])
        for state in states:
            state.pending_token
            state.position += 1
        return cycles
