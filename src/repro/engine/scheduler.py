"""Continuous batching over one embedded accelerator.

The scheduler is iteration-level (Orca-style): every :meth:`step` first
admits waiting requests against the bare-metal capacity report, runs
their prefills, then executes ONE batched decode step over every running
sequence.  Sequences join and leave the batch at token granularity —
no waiting for stragglers, which is what makes the weight-stream
amortization of :meth:`CycleModel.batched_decode_step` reachable under
real traffic.

Capacity discipline (the paper's Sec. VII-A carried to serving): the
KV budget is derived from what the platform's DRAM holds beyond the
quantized weights and the bare-metal reservation.  Admission is
optimistic (a request needs room for its prompt plus one token); when
decode growth would overflow the budget, the youngest running sequence
is preempted — its slot freed, its tokens kept — and it re-enters the
queue to be recomputed when pressure clears.

Two capacity disciplines, chosen by the backend's KV mode:

* slotted — admission against a worst-case *token* budget: every
  sequence is charged its full length, shared or not.
* paged — admission against free *blocks* of the backend's
  :class:`repro.kv.PagedKVCache`: prefix-shared blocks are charged
  once, so identical system prompts stop competing for budget, and
  preemption triggers on block pressure instead of token counts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..errors import CapacityError, SimulationError
from .backends import EngineBackend, derive_kv_token_budget
from .request import FinishReason, Request, RequestState, RequestStatus

if TYPE_CHECKING:  # avoids the runtime<->engine package-import cycle
    from ..runtime.baremetal import BareMetalSystem


@dataclass(frozen=True)
class StepEvent:
    """What one scheduler iteration did (for logs and tests)."""

    clock_s: float
    batch: int
    cycles: float
    admitted: int
    preempted: int
    retired: int


@dataclass(frozen=True)
class RequestResult:
    """Summary of one retired request."""

    request_id: int
    tokens: tuple[int, ...]
    prompt_len: int
    ttft_s: float
    e2e_s: float
    finish_reason: FinishReason
    preemptions: int
    decode_step_s: tuple[float, ...]


@dataclass
class ServeReport:
    """Aggregate serving metrics of one engine run."""

    results: list[RequestResult] = field(default_factory=list)
    total_time_s: float = 0.0
    n_steps: int = 0
    preemptions: int = 0
    max_batch_observed: int = 0
    step_batches: list[int] = field(default_factory=list)
    #: lazy percentile caches — reports are built once and then queried;
    #: mutate ``results`` and these go stale.
    _decode_lat_sorted: list[float] | None = field(
        default=None, init=False, repr=False, compare=False)
    _ttft_sorted: list[float] | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def total_new_tokens(self) -> int:
        return sum(len(r.tokens) for r in self.results)

    @property
    def aggregate_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            raise SimulationError("report covers no simulated time")
        return self.total_new_tokens / self.total_time_s

    @property
    def mean_ttft_s(self) -> float:
        if not self.results:
            raise SimulationError("no retired requests")
        return sum(r.ttft_s for r in self.results) / len(self.results)

    @property
    def mean_batch(self) -> float:
        if not self.step_batches:
            raise SimulationError("no decode steps recorded")
        return sum(self.step_batches) / len(self.step_batches)

    def _sorted_decode_latencies(self) -> list[float]:
        """Decode latencies flattened and sorted once, then reused by
        every percentile query (serve-sim asks for three per report)."""
        if self._decode_lat_sorted is None:
            self._decode_lat_sorted = sorted(
                s for r in self.results for s in r.decode_step_s)
        return self._decode_lat_sorted

    def _sorted_ttfts(self) -> list[float]:
        if self._ttft_sorted is None:
            self._ttft_sorted = sorted(r.ttft_s for r in self.results)
        return self._ttft_sorted

    def latency_percentile_s(self, percentile: float) -> float:
        """Per-token decode latency percentile across all requests."""
        from ..stats import percentile_of_sorted

        lats = self._sorted_decode_latencies()
        if not lats:
            raise SimulationError("no decode steps recorded")
        return percentile_of_sorted(lats, percentile)

    def ttft_percentile_s(self, percentile: float) -> float:
        """Time-to-first-token percentile across retired requests."""
        from ..stats import percentile_of_sorted

        if not self.results:
            raise SimulationError("no retired requests")
        return percentile_of_sorted(self._sorted_ttfts(), percentile)


class ContinuousBatchScheduler:
    """Admits, batches, preempts, and retires requests on one backend."""

    def __init__(self, backend: EngineBackend,
                 system: "BareMetalSystem | None" = None,
                 max_batch: int = 8,
                 kv_token_budget: int | None = None,
                 fast_forward: bool = True) -> None:
        if max_batch <= 0:
            raise SimulationError(f"max_batch must be positive: {max_batch}")
        self.backend = backend
        self.max_batch = max_batch
        #: timing-only backends may advance static windows in one call;
        #: ``fast_forward=False`` forces the step-by-step loop (the
        #: differential tests pin that both produce identical reports),
        #: and a reference-cost backend is a deliberate baseline.
        self.fast_forward = fast_forward \
            and getattr(backend, "supports_fast_forward", False) \
            and not getattr(backend, "reference_costs", False)
        model = backend.model_config
        self.paged_kv = getattr(backend, "paged_kv", None)
        if self.paged_kv is not None:
            # Block discipline: the backend's pool is the capacity
            # authority; a token budget on top would double-account.
            if kv_token_budget is not None:
                raise SimulationError(
                    "kv_token_budget does not apply to a paged backend; "
                    "size the pool with n_kv_blocks instead")
            kv_token_budget = self.paged_kv.n_total_blocks \
                * self.paged_kv.block_size
        elif kv_token_budget is None:
            derive = getattr(backend, "derive_kv_token_budget", None)
            if derive is not None:
                # Cluster backends size KV from their own (sharded)
                # capacity split instead of the single-device report.
                kv_token_budget = derive(
                    cap_tokens=max_batch * model.max_context,
                    system=system)
            else:
                kv_token_budget = derive_kv_token_budget(
                    model, backend.quant, backend.platform,
                    cap_tokens=max_batch * model.max_context, system=system)
        if kv_token_budget <= 0:
            raise CapacityError("KV token budget must be positive")
        self.kv_token_budget = int(kv_token_budget)

        self.clock_s = 0.0
        self.waiting: deque[RequestState] = deque()
        self.running: list[RequestState] = []
        self.finished: list[RequestState] = []
        self.events: list[StepEvent] = []
        self._preemptions = 0
        self._step_batches: list[int] = []
        #: running sum of cached tokens across the running set, kept in
        #: lockstep by admit/retire/preempt/decode instead of re-summed
        #: every scheduler step.
        self._cached_total = 0

    # -- submission --------------------------------------------------------

    def submit(self, request: Request) -> RequestState:
        """Queue one request; raises if it could never be served."""
        model = self.backend.model_config
        if len(request.prompt) >= model.max_context:
            raise SimulationError(
                f"request {request.request_id}: prompt of "
                f"{len(request.prompt)} tokens fills the "
                f"{model.max_context}-token context")
        if len(request.prompt) + 1 > self.kv_token_budget:
            raise CapacityError(
                f"request {request.request_id}: prompt alone exceeds the "
                f"KV budget of {self.kv_token_budget} tokens")
        state = RequestState(request=request)
        self.waiting.append(state)
        return state

    # -- internals ---------------------------------------------------------

    def _cached_tokens(self) -> int:
        return self._cached_total

    def _growth_blocks(self, states: Iterable[RequestState]) -> int:
        """Fresh blocks the coming one-token appends would claim."""
        assert self.paged_kv is not None
        return sum(1 for s in states
                   if s.slot is not None
                   and self.paged_kv.append_needs_block(s.slot))

    def _admit_fits(self, state: RequestState) -> bool:
        """Room for this request's prompt + first decode token, *and* the
        one-token growth every running sequence makes this step —
        otherwise the admit would be preempted right back out after
        paying its whole prefill."""
        if self.paged_kv is not None:
            fresh, claimable = self.paged_kv.admission_plan(
                state.sequence_tokens())
            growth = self._growth_blocks(
                s for s in self.running if s.has_pending_forward)
            return fresh + growth <= claimable
        needed = len(state.sequence_tokens()) + 1
        growth = sum(1 for s in self.running if s.has_pending_forward)
        return self._cached_tokens() + growth + needed \
            <= self.kv_token_budget

    def _growth_overflows(self, pending: list[RequestState]) -> bool:
        """Would appending one token per pending sequence burst the KV?"""
        if self.paged_kv is not None:
            return self._growth_blocks(pending) \
                > self.paged_kv.n_available_blocks
        return self._cached_tokens() + len(pending) > self.kv_token_budget

    def _advance(self, cycles: float) -> None:
        self.clock_s += cycles / self.backend.freq_hz

    def _note_sampled(self, state: RequestState, token: int) -> None:
        """Record a sampled token; retire on EOS or when the budget is hit
        with nothing left to forward."""
        state.generated.append(token)
        if state.first_token_s is None:
            state.first_token_s = self.clock_s
        if state.request.eos_id is not None \
                and token == state.request.eos_id:
            # The EOS itself is never forwarded: retire right away.
            self._retire(state, FinishReason.EOS)

    def _retire(self, state: RequestState, reason: FinishReason) -> None:
        self.backend.release(state)
        state.status = RequestStatus.FINISHED
        state.finish_reason = reason
        state.finish_s = self.clock_s
        if state in self.running:
            self.running.remove(state)
            self._cached_total -= state.position
        self.finished.append(state)

    def _preempt_one(self) -> bool:
        """Evict the youngest running sequence back to the queue head."""
        if len(self.running) <= 1:
            return False
        state = self.running.pop()
        self._cached_total -= state.position
        self.backend.release(state)
        state.status = RequestStatus.PREEMPTED
        state.position = 0
        state.logits = None
        state.preemptions += 1
        self._preemptions += 1
        self.waiting.appendleft(state)
        return True

    def _admit_ready(self) -> int:
        admitted = 0
        while self.waiting and len(self.running) < self.max_batch:
            state = self.waiting[0]
            if state.request.arrival_s > self.clock_s:
                break
            if not self._admit_fits(state):
                break
            try:
                self.backend.admit(state)
            except SimulationError:
                break  # no free KV slot
            self.waiting.popleft()
            cycles = self.backend.prefill(state)
            state.prefill_cycles += cycles
            self._advance(cycles)
            state.status = RequestStatus.RUNNING
            self.running.append(state)
            self._cached_total += state.position
            admitted += 1
            # First token (or, after preemption, the next token) samples
            # the moment prefill ends.
            if state.n_generated < state.request.max_new_tokens \
                    and state.position < self.backend.model_config.max_context:
                self._note_sampled(state, self.backend.sample(state))
            else:
                self._retire(state, FinishReason.LENGTH)
        return admitted

    # -- fast forward --------------------------------------------------------

    def _fast_forward_window(self) -> int:
        """Steps the running set can advance with no admission, retire,
        preemption, or paged block boundary — 0 when any could occur.

        While the set is static each step only increments every context
        by one, so per-step cycles become a pure function of the step
        index and a whole window can be charged in one backend call.
        """
        pending = self.running
        if not pending or any(not s.has_pending_forward for s in pending):
            return 0
        if self.waiting and len(self.running) < self.max_batch:
            head = self.waiting[0]
            if head.request.arrival_s <= self.clock_s \
                    and self._admit_fits(head):
                # step() may admit right now; capacity-unfit heads stay
                # unfit inside a window (pressure only grows), and
                # arrival-gated heads are handled by the clock cut.
                return 0
        max_context = self.backend.model_config.max_context
        limit = min(
            min(s.request.max_new_tokens - s.n_generated for s in pending),
            min(max_context - 1 - s.position for s in pending),
        )
        if self.paged_kv is not None:
            block = self.paged_kv.block_size
            for s in pending:
                assert s.slot is not None
                if self.paged_kv.append_needs_block(s.slot):
                    return 0
                room = s.position % block
                limit = min(limit, block - room if room else block)
        else:
            limit = min(limit, (self.kv_token_budget - self._cached_total)
                        // len(pending))
        return max(0, limit)

    def _fast_forward(self) -> int:
        """Advance a static window in one call; returns steps applied.

        Every per-step observable — clock increments, step events, the
        per-request decode latencies and sampled tokens — is recorded
        exactly as the step-by-step loop records it; only the cycle
        computation is batched (and bit-identical, see the backends'
        ``fast_forward_cycles``).
        """
        limit = self._fast_forward_window()
        if limit < 2:
            return 0
        pending = self.running
        planned: list[list[int]] = []
        for s in pending:
            tokens = self.backend.planned_tokens(s, limit)
            eos = s.request.eos_id
            if eos is not None and eos in tokens:
                # The step that samples EOS retires the request: it ends
                # the window and runs through the normal loop.
                limit = min(limit, tokens.index(eos))
            planned.append(tokens)
        if limit < 2:
            return 0
        cycles = self.backend.fast_forward_cycles(pending, limit)
        arrival = None
        if self.waiting and len(self.running) < self.max_batch:
            head_arrival = self.waiting[0].request.arrival_s
            if head_arrival > self.clock_s:
                arrival = head_arrival
        batch = len(pending)
        applied = 0
        for j in range(limit):
            if arrival is not None and self.clock_s >= arrival:
                break  # step() admits the head next iteration
            step_cycles = cycles[j]
            self._advance(step_cycles)
            self._step_batches.append(batch)
            for i, s in enumerate(pending):
                s.decode_cycles.append(step_cycles)
                s.generated.append(planned[i][j])
            self.events.append(StepEvent(
                clock_s=self.clock_s, batch=batch, cycles=step_cycles,
                admitted=0, preempted=0, retired=0))
            applied += 1
        if applied:
            self.backend.commit_fast_forward(pending, applied)
            self._cached_total += applied * batch
        return applied

    # -- the scheduling loop -------------------------------------------------

    def step(self) -> StepEvent:
        """One engine iteration: admit -> prefill -> one batched decode."""
        if not self.waiting and not self.running:
            raise SimulationError("nothing to schedule")

        # Idle engine: jump to the next arrival.
        if not self.running and self.waiting:
            next_arrival = min(s.request.arrival_s for s in self.waiting)
            if next_arrival > self.clock_s:
                self.clock_s = next_arrival

        admitted = self._admit_ready()

        # KV pressure: the coming step appends one token per forwarding
        # sequence; evict until the growth fits the budget.
        preempted = 0
        retired = 0
        pending = [s for s in self.running if s.has_pending_forward]
        while pending and self._growth_overflows(pending):
            if not self._preempt_one():
                # A lone sequence has outgrown the budget: it cannot be
                # preempted in its own favour, so it retires where it is.
                # Its sampled-but-never-forwarded tail token is dropped to
                # keep the invariant that every reported non-EOS token was
                # charged one decode step.
                state = pending[0]
                if state.has_pending_forward:
                    state.generated.pop()
                self._retire(state, FinishReason.LENGTH)
                retired += 1
            else:
                preempted += 1
            pending = [s for s in self.running if s.has_pending_forward]

        cycles = 0.0
        if pending:
            cycles = self.backend.decode_batch(pending)
            self._cached_total += len(pending)
            self._advance(cycles)
            self._step_batches.append(len(pending))
            for state in pending:
                state.decode_cycles.append(cycles)
                if state.n_generated < state.request.max_new_tokens \
                        and state.position \
                        < self.backend.model_config.max_context:
                    before = len(self.finished)
                    self._note_sampled(state, self.backend.sample(state))
                    retired += len(self.finished) - before
                else:
                    # Budget (or context) reached and the final token's
                    # forward was just charged: retire at the length limit.
                    self._retire(state, FinishReason.LENGTH)
                    retired += 1

        event = StepEvent(clock_s=self.clock_s, batch=len(pending),
                          cycles=cycles, admitted=admitted,
                          preempted=preempted, retired=retired)
        self.events.append(event)
        return event

    def run(self, requests: Iterable[Request] | None = None,
            max_steps: int = 1_000_000) -> ServeReport:
        """Drive the engine until every submitted request retires."""
        if self.running:
            raise SimulationError("engine is already mid-run")
        self.clock_s = 0.0
        self.finished = []
        self.events = []
        self._preemptions = 0
        self._step_batches = []
        if requests is not None:
            for request in sorted(requests, key=lambda r: r.arrival_s):
                self.submit(request)
        steps = 0
        while self.waiting or self.running:
            applied = self._fast_forward() if self.fast_forward else 0
            if not applied:
                self.step()
                applied = 1
            steps += applied
            if steps > max_steps:
                raise SimulationError(
                    f"engine did not drain within {max_steps} steps")
        return self._report()

    def _report(self) -> ServeReport:
        freq = self.backend.freq_hz
        results = []
        for state in sorted(self.finished, key=lambda s: s.request_id):
            assert state.finish_reason is not None
            results.append(RequestResult(
                request_id=state.request_id,
                tokens=tuple(state.generated),
                prompt_len=state.prompt_len,
                ttft_s=state.ttft_s,
                e2e_s=state.e2e_s,
                finish_reason=state.finish_reason,
                preemptions=state.preemptions,
                decode_step_s=tuple(c / freq for c in state.decode_cycles),
            ))
        return ServeReport(
            results=results,
            total_time_s=self.clock_s,
            n_steps=len(self.events),
            preemptions=self._preemptions,
            max_batch_observed=max(self._step_batches, default=0),
            step_batches=list(self._step_batches),
        )
