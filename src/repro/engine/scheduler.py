"""Continuous batching over one embedded accelerator.

The scheduler is iteration-level (Orca-style): every :meth:`step` first
admits waiting requests against the bare-metal capacity report, runs
their prefills, then executes ONE batched decode step over every running
sequence.  Sequences join and leave the batch at token granularity —
no waiting for stragglers, which is what makes the weight-stream
amortization of :meth:`CycleModel.batched_decode_step` reachable under
real traffic.

Capacity discipline (the paper's Sec. VII-A carried to serving): the
KV budget is derived from what the platform's DRAM holds beyond the
quantized weights and the bare-metal reservation.  Admission is
optimistic (a request needs room for its prompt plus one token); when
decode growth would overflow the budget, the youngest running sequence
is preempted — its slot freed, its tokens kept — and it re-enters the
queue to be recomputed when pressure clears.

Two capacity disciplines, chosen by the backend's KV mode:

* slotted — admission against a worst-case *token* budget: every
  sequence is charged its full length, shared or not.
* paged — admission against free *blocks* of the backend's
  :class:`repro.kv.PagedKVCache`: prefix-shared blocks are charged
  once, so identical system prompts stop competing for budget, and
  preemption triggers on block pressure instead of token counts.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..errors import CapacityError, SimulationError
from .backends import EngineBackend, derive_kv_token_budget
from .request import FinishReason, Request, RequestState, RequestStatus
from .telemetry import (  # noqa: F401  (re-exported: public API lives here)
    TELEMETRY_LEVELS,
    RequestResult,
    ServeReport,
    StepEvent,
    StepWindow,
    StreamedServeReport,
    TelemetryRecorder,
)

if TYPE_CHECKING:  # avoids the runtime<->engine package-import cycle
    from ..runtime.baremetal import BareMetalSystem


class ContinuousBatchScheduler:
    """Admits, batches, preempts, and retires requests on one backend."""

    def __init__(self, backend: EngineBackend,
                 system: "BareMetalSystem | None" = None,
                 max_batch: int = 8,
                 kv_token_budget: int | None = None,
                 fast_forward: bool | str = True) -> None:
        if max_batch <= 0:
            raise SimulationError(f"max_batch must be positive: {max_batch}")
        self.backend = backend
        self.max_batch = max_batch
        #: timing-only backends may advance fast-forward windows in one
        #: call.  Tiers: ``"multi"`` (the default, ``True``) charges
        #: multi-segment windows that span predicted retirements and
        #: block frontiers; ``"single"`` is the piecewise-static window
        #: that breaks at every state change; ``False``/``"off"`` forces
        #: the eager step loop.  The differential tests pin all three to
        #: identical reports, and a reference-cost backend is a
        #: deliberate baseline that always runs eager.  The attribute
        #: stays falsy whenever fast-forward is off.
        tier: bool | str = fast_forward
        if tier is True:
            tier = "multi"
        elif tier == "off":
            tier = False
        if tier not in (False, "single", "multi"):
            raise SimulationError(
                "fast_forward must be a bool or one of 'off', 'single', "
                f"'multi': {fast_forward!r}")
        if not getattr(backend, "supports_fast_forward", False) \
                or getattr(backend, "reference_costs", False):
            tier = False
        self.fast_forward = tier
        model = backend.model_config
        self.paged_kv = getattr(backend, "paged_kv", None)
        if self.paged_kv is not None:
            # Block discipline: the backend's pool is the capacity
            # authority; a token budget on top would double-account.
            if kv_token_budget is not None:
                raise SimulationError(
                    "kv_token_budget does not apply to a paged backend; "
                    "size the pool with n_kv_blocks instead")
            kv_token_budget = self.paged_kv.n_total_blocks \
                * self.paged_kv.block_size
        elif kv_token_budget is None:
            derive = getattr(backend, "derive_kv_token_budget", None)
            if derive is not None:
                # Cluster backends size KV from their own (sharded)
                # capacity split instead of the single-device report.
                kv_token_budget = derive(
                    cap_tokens=max_batch * model.max_context,
                    system=system)
            else:
                kv_token_budget = derive_kv_token_budget(
                    model, backend.quant, backend.platform,
                    cap_tokens=max_batch * model.max_context, system=system)
        if kv_token_budget <= 0:
            raise CapacityError("KV token budget must be positive")
        self.kv_token_budget = int(kv_token_budget)

        self.clock_s = 0.0
        self.waiting: deque[RequestState] = deque()
        self.running: list[RequestState] = []
        self.finished: list[RequestState] = []
        self._recorder = TelemetryRecorder(
            "full", backend.freq_hz,
            token_replay=getattr(backend, "replay_tokens", None))
        self._preemptions = 0
        self._n_finished = 0
        #: global decode-step counter — the index space request spans
        #: point into.
        self._decode_steps = 0
        #: incremental submission source (a sorted Request iterator);
        #: None outside streamed runs.
        self._stream: Iterator[Request] | None = None
        self._stream_head: Request | None = None
        self._last_stream_arrival = 0.0
        #: True while the waiting deque is known to hold requests in
        #: arrival order (run() sorts materialized traces before
        #: submitting) — the idle jump then reads the head in O(1).
        self._arrival_sorted = False
        #: running sum of cached tokens across the running set, kept in
        #: lockstep by admit/retire/preempt/decode instead of re-summed
        #: every scheduler step.
        self._cached_total = 0

    @property
    def events(self) -> list[StepEvent]:
        """Per-step events of the current/last run.  At windowed
        telemetry the run-length records expand lazily — the identical
        event stream, paid only when read."""
        return self._recorder.expanded_events()

    @property
    def telemetry(self) -> str:
        return self._recorder.level

    # -- submission --------------------------------------------------------

    def submit(self, request: Request) -> RequestState:
        """Queue one request; raises if it could never be served."""
        model = self.backend.model_config
        if len(request.prompt) >= model.max_context:
            raise SimulationError(
                f"request {request.request_id}: prompt of "
                f"{len(request.prompt)} tokens fills the "
                f"{model.max_context}-token context")
        if len(request.prompt) + 1 > self.kv_token_budget:
            raise CapacityError(
                f"request {request.request_id}: prompt alone exceeds the "
                f"KV budget of {self.kv_token_budget} tokens")
        state = RequestState(request=request)
        self.waiting.append(state)
        return state

    # -- internals ---------------------------------------------------------

    def _cached_tokens(self) -> int:
        return self._cached_total

    def _growth_blocks(self, states: Iterable[RequestState]) -> int:
        """Fresh blocks the coming one-token appends would claim."""
        assert self.paged_kv is not None
        return sum(1 for s in states
                   if s.slot is not None
                   and self.paged_kv.append_needs_block(s.slot))

    def _admit_fits(self, state: RequestState) -> bool:
        """Room for this request's prompt + first decode token, *and* the
        one-token growth every running sequence makes this step —
        otherwise the admit would be preempted right back out after
        paying its whole prefill."""
        if self.paged_kv is not None:
            fresh, claimable = self.paged_kv.admission_plan(
                state.sequence_tokens())
            growth = self._growth_blocks(
                s for s in self.running if s.has_pending_forward)
            return fresh + growth <= claimable
        needed = len(state.sequence_tokens()) + 1
        growth = sum(1 for s in self.running if s.has_pending_forward)
        return self._cached_tokens() + growth + needed \
            <= self.kv_token_budget

    def _growth_overflows(self, pending: list[RequestState]) -> bool:
        """Would appending one token per pending sequence burst the KV?"""
        if self.paged_kv is not None:
            return self._growth_blocks(pending) \
                > self.paged_kv.n_available_blocks
        return self._cached_tokens() + len(pending) > self.kv_token_budget

    def _advance(self, cycles: float) -> None:
        self.clock_s += cycles / self.backend.freq_hz

    def _note_sampled(self, state: RequestState, token: int) -> None:
        """Record a sampled token; retire on EOS or when the budget is hit
        with nothing left to forward."""
        state.generated.append(token)
        if state.first_token_s is None:
            state.first_token_s = self.clock_s
        if state.request.eos_id is not None \
                and token == state.request.eos_id:
            # The EOS itself is never forwarded: retire right away.
            self._retire(state, FinishReason.EOS)

    def _retire(self, state: RequestState, reason: FinishReason) -> None:
        self.backend.release(state)
        state.status = RequestStatus.FINISHED
        state.finish_reason = reason
        state.finish_s = self.clock_s
        if state in self.running:
            self.running.remove(state)
            self._cached_total -= state.position
        state.spans.append((state._span_start, self._decode_steps))
        self._n_finished += 1
        if self._recorder.level == "full":
            self.finished.append(state)
        else:
            # Streaming telemetry: fold the request into the report
            # columns now and let the state object go — retired work
            # must not grow with the trace.
            self._recorder.fold_result(state)

    def _preempt_one(self) -> bool:
        """Evict the youngest running sequence back to the queue head."""
        if len(self.running) <= 1:
            return False
        state = self.running.pop()
        self._cached_total -= state.position
        self.backend.release(state)
        state.status = RequestStatus.PREEMPTED
        state.spans.append((state._span_start, self._decode_steps))
        state.position = 0
        state.logits = None
        state.preemptions += 1
        self._preemptions += 1
        self.waiting.appendleft(state)
        return True

    def _admit_ready(self) -> int:
        admitted = 0
        while len(self.running) < self.max_batch:
            # Streamed runs: each admission advances the clock through
            # its prefill, so requests may arrive mid-loop — pull them
            # in before looking at the head, exactly like a materialized
            # queue would already hold them.
            self._refill()
            if not self.waiting:
                break
            state = self.waiting[0]
            if state.request.arrival_s > self.clock_s:
                break
            if not self._admit_fits(state):
                break
            try:
                self.backend.admit(state)
            except SimulationError:
                break  # no free KV slot
            self.waiting.popleft()
            cycles = self.backend.prefill(state)
            state.prefill_cycles += cycles
            self._advance(cycles)
            state.status = RequestStatus.RUNNING
            state._span_start = self._decode_steps
            self.running.append(state)
            self._cached_total += state.position
            admitted += 1
            # First token (or, after preemption, the next token) samples
            # the moment prefill ends.
            if state.n_generated < state.request.max_new_tokens \
                    and state.position < self.backend.model_config.max_context:
                self._note_sampled(state, self.backend.sample(state))
            else:
                self._retire(state, FinishReason.LENGTH)
        return admitted

    # -- fast forward --------------------------------------------------------

    def _fast_forward_window(self) -> tuple[int, str | None]:
        """``(steps, break_reason)``: how far the running set can
        advance with no admission, retire, preemption, or paged block
        boundary — 0 when any could occur — plus the binding reason
        (None only when there is nothing running to advance).

        While the set is static each step only increments every context
        by one, so per-step cycles become a pure function of the step
        index and a whole window can be charged in one backend call.
        """
        pending = self.running
        if not pending:
            return 0, None
        if any(not s.has_pending_forward for s in pending):
            return 0, "retirement-unpredicted"
        if self.waiting and len(self.running) < self.max_batch:
            head = self.waiting[0]
            if head.request.arrival_s <= self.clock_s \
                    and self._admit_fits(head):
                # step() may admit right now; capacity-unfit heads stay
                # unfit inside a window (pressure only grows), and
                # arrival-gated heads are handled by the clock cut.
                return 0, "admission"
        max_context = self.backend.model_config.max_context
        # The window stops one step short of the earliest retirement it
        # cannot fold (this tier folds none).
        limit = min(
            min(s.request.max_new_tokens - s.n_generated for s in pending),
            min(max_context - 1 - s.position for s in pending),
        )
        reason = "retirement-unpredicted"
        if self.paged_kv is not None:
            block = self.paged_kv.block_size
            for s in pending:
                assert s.slot is not None
                if self.paged_kv.append_needs_block(s.slot):
                    return 0, "block-frontier"
                room = s.position % block
                cap = block - room if room else block
                if cap < limit:
                    limit, reason = cap, "block-frontier"
        else:
            cap = (self.kv_token_budget - self._cached_total) \
                // len(pending)
            if cap < limit:
                limit, reason = cap, "preemption-risk"
        return max(0, limit), reason

    def _fast_forward_single(self) -> int:
        """Advance one static window in one closed-form charge; returns
        the steps applied.

        The per-step loop is gone: the window clock is one sequential
        ``cumsum`` over the backend's window cycles (the same IEEE fold
        as stepping ``clock += cycles / freq``), the arrival cut is a
        ``searchsorted`` into those cumulative clocks, and the
        per-member token/latency recording is bulk array work — so
        every observable is bit-identical to the step-by-step loop
        while a K-step window costs O(batch) Python operations.
        """
        limit, reason = self._fast_forward_window()
        if limit < 2:
            if reason is not None:
                self._recorder.note_break(reason)
            return 0
        pending = self.running
        planned: list[np.ndarray] = []
        for s in pending:
            tokens = np.asarray(self.backend.planned_tokens(s, limit),
                                dtype=np.int64)
            eos = s.request.eos_id
            if eos is not None:
                hits = np.nonzero(tokens == eos)[0]
                if len(hits) and int(hits[0]) < limit:
                    # The step that samples EOS retires the request: it
                    # ends the window and runs through the normal loop.
                    limit, reason = int(hits[0]), "eos"
            planned.append(tokens)
        if limit < 2:
            self._recorder.note_break(reason)
            return 0
        cycles = np.asarray(
            self.backend.fast_forward_cycles(pending, limit),
            dtype=np.float64)
        deltas = cycles / self.backend.freq_hz
        # Sequential prefix fold seeded with the current clock — the
        # identical IEEE adds as stepping ``clock += cycles / freq``.
        clocks = np.empty(limit + 1)
        clocks[0] = self.clock_s
        clocks[1:] = deltas
        np.cumsum(clocks, out=clocks)
        applied = limit
        if self.waiting and len(self.running) < self.max_batch:
            head_arrival = self.waiting[0].request.arrival_s
            if head_arrival > self.clock_s:
                # Steps apply while the clock has not reached the next
                # arrival; step() admits the head right after.
                cut = int(np.searchsorted(clocks[:limit],
                                          head_arrival, side="left"))
                if cut < applied:
                    applied, reason = cut, "arrival"
        self._recorder.note_break(reason)
        if applied <= 0:
            return 0
        batch = len(pending)
        clock0 = self.clock_s
        self.clock_s = float(clocks[applied])
        self._decode_steps += applied
        self._recorder.record_window(clock0, clocks[1:applied + 1],
                                     batch, cycles[:applied],
                                     deltas[:applied])
        full = self._recorder.level == "full"
        lat_list = cycles[:applied].tolist() if full else None
        for i, s in enumerate(pending):
            if full:
                s.decode_cycles.extend(lat_list)
            s.generated.extend(planned[i][:applied].tolist())
        self.backend.commit_fast_forward(pending, applied)
        self._cached_total += applied * batch
        return applied

    def _fast_forward_multi(self) -> int:
        """Advance a multi-segment window: piecewise-static segments
        separated by *predicted* retirements and block-frontier
        crossings, all charged before control returns to the eager
        loop.  Returns the total steps applied.

        Retirement steps are pure functions of each member's planned
        token stream — the length budget is arithmetic and the EOS
        position comes from the same ``planned_tokens`` replay the
        single-segment tier consults — and paged block allocation is
        arithmetic on context length, so the event horizon (the next
        *unavoidable* scheduler state change) is computable without
        stepping.  Each segment is evaluated with the vectorized
        ``fast_forward_cycles`` machinery; between segments the batch
        shrink and block-table growth are folded in the same member
        order as the eager loop (commit, then retire in pending order),
        so every clock, event, latency, and token stream stays
        bit-identical.  Windows then break only at admission
        opportunities, arrival cuts, and genuine preemption risk.
        """
        rec = self._recorder
        freq = self.backend.freq_hz
        max_context = self.backend.model_config.max_context
        full = rec.level == "full"
        clock0 = self.clock_s
        segments: list[tuple[int, int, int]] = []
        cycle_parts: list[np.ndarray] = []
        delta_parts: list[np.ndarray] = []
        clock_parts: list[np.ndarray] = []
        total_applied = 0
        break_reason: str | None = None

        while True:
            # Re-gate at every segment start: folded retirements free
            # capacity (and slots), so the admission verdict and the
            # stream head must be re-read exactly where the eager loop
            # would next check them.
            self._refill()
            pending = list(self.running)
            if not pending:
                break  # every member retired inside the window
            if any(not s.has_pending_forward for s in pending):
                break_reason = "retirement-unpredicted"
                break
            head_waiting = self.waiting \
                and len(self.running) < self.max_batch
            head_arrived_unfit = False
            if head_waiting:
                head = self.waiting[0]
                if head.request.arrival_s <= self.clock_s:
                    if self._admit_fits(head):
                        break_reason = "admission"
                        break
                    head_arrived_unfit = True
            batch = len(pending)
            # Event horizon: L_i is the 0-based step index at which
            # member i forwards its final pending token and retires at
            # the length/context budget — unless a planned EOS retires
            # it earlier.
            length_caps = [
                min(s.request.max_new_tokens - s.n_generated,
                    max_context - 1 - s.position)
                for s in pending]
            horizon = min(length_caps)
            # Static capacity cap: how many steps are provably free of
            # preemption and eviction.
            if self.paged_kv is not None:
                cap = self.paged_kv.window_advance_cap(
                    [s.slot for s in pending], horizon + 1)
                cap_reason = "block-frontier"
                if head_arrived_unfit:
                    # Paged admission fitness can flip as frontiers
                    # cross (freed growth, shrunk claimable supply), and
                    # the eager loop re-checks it every step — so while
                    # an arrived head waits, segments keep the static
                    # no-crossing shape under which "unfit" provably
                    # holds to the segment end.
                    block = self.paged_kv.block_size
                    for s in pending:
                        assert s.slot is not None
                        if self.paged_kv.append_needs_block(s.slot):
                            cap = 0
                            break
                        room = s.position % block
                        cap = min(cap, block - room if room else block)
            else:
                cap = (self.kv_token_budget - self._cached_total) // batch
                cap_reason = "preemption-risk"
            seg_cap = min(horizon + 1, cap)
            if seg_cap <= 0:
                break_reason = cap_reason
                break
            if not total_applied and seg_cap == 1 and horizon >= 1:
                # A lone static step with no boundary to fold is not
                # worth a window; the eager loop takes it (the PR 5
                # tier's ``limit < 2`` rule).
                break_reason = cap_reason
                break
            # Planned tokens up to each member's own horizon — never
            # past it: a recorded oracle stream ends at the retirement.
            planned: list[np.ndarray] = []
            bounds: list[int] = []
            kinds: list[FinishReason] = []
            for i, s in enumerate(pending):
                n_i = min(length_caps[i], seg_cap)
                tokens = np.asarray(
                    self.backend.planned_tokens(s, n_i) if n_i else (),
                    dtype=np.int64)
                r_i, kind = length_caps[i], FinishReason.LENGTH
                eos = s.request.eos_id
                if eos is not None and len(tokens):
                    hits = np.nonzero(tokens == eos)[0]
                    if len(hits) and int(hits[0]) < r_i:
                        r_i, kind = int(hits[0]), FinishReason.EOS
                planned.append(tokens)
                bounds.append(r_i)
                kinds.append(kind)
            boundary = min(bounds)
            n_seg = min(boundary + 1, seg_cap)
            seg_cycles = np.asarray(
                self.backend.fast_forward_cycles(pending, n_seg),
                dtype=np.float64)
            seg_deltas = seg_cycles / freq
            # Sequential prefix fold seeded with the running clock — the
            # same IEEE adds as stepping ``clock += cycles / freq``,
            # chained across segments.
            clocks = np.empty(n_seg + 1)
            clocks[0] = self.clock_s
            clocks[1:] = seg_deltas
            np.cumsum(clocks, out=clocks)
            applied = n_seg
            if head_waiting:
                head_arrival = self.waiting[0].request.arrival_s
                if head_arrival > self.clock_s:
                    cut = int(np.searchsorted(clocks[:n_seg],
                                              head_arrival, side="left"))
                    if cut < applied:
                        applied, break_reason = cut, "arrival"
            if applied <= 0:
                break  # first possible step already past the arrival
            at_boundary = applied == n_seg and boundary < seg_cap
            self.clock_s = float(clocks[applied])
            self._decode_steps += applied
            lat_list = seg_cycles[:applied].tolist() if full else None
            for i, s in enumerate(pending):
                if full:
                    s.decode_cycles.extend(lat_list)
                if at_boundary and bounds[i] == boundary \
                        and kinds[i] is FinishReason.LENGTH:
                    # The boundary step forwards the retiree's final
                    # pending token but samples nothing.
                    s.generated.extend(planned[i][:applied - 1].tolist())
                else:
                    s.generated.extend(planned[i][:applied].tolist())
            self.backend.commit_fast_forward(pending, applied)
            self._cached_total += applied * batch
            retired = 0
            if at_boundary:
                for i, s in enumerate(pending):
                    if bounds[i] == boundary:
                        self._retire(s, kinds[i])
                        retired += 1
            segments.append((applied, batch, retired))
            cycle_parts.append(seg_cycles[:applied])
            delta_parts.append(seg_deltas[:applied])
            clock_parts.append(clocks[1:applied + 1])
            total_applied += applied
            if break_reason is not None:
                break

        if break_reason is not None:
            rec.note_break(break_reason)
        if not total_applied:
            return 0
        rec.record_window(
            clock0,
            np.concatenate(clock_parts),
            segments[0][1],
            np.concatenate(cycle_parts),
            np.concatenate(delta_parts),
            segments=tuple(segments))
        return total_applied

    # -- the scheduling loop -------------------------------------------------

    def step(self) -> StepEvent:
        """One engine iteration: admit -> prefill -> one batched decode."""
        if not self.waiting and not self.running:
            raise SimulationError("nothing to schedule")

        # Idle engine: jump to the next arrival.  Streamed and sorted
        # materialized runs hold the queue in arrival order with
        # preempted re-entries (already arrived) at the head, so the
        # deque head IS the next arrival — no scan.  Only a queue built
        # by direct out-of-order submit() calls needs the linear min.
        if not self.running and self.waiting:
            if self._stream is not None or self._stream_head is not None \
                    or self._arrival_sorted:
                next_arrival = self.waiting[0].request.arrival_s
            else:
                next_arrival = min(s.request.arrival_s
                                   for s in self.waiting)
            if next_arrival > self.clock_s:
                self.clock_s = next_arrival

        admitted = self._admit_ready()

        # KV pressure: the coming step appends one token per forwarding
        # sequence; evict until the growth fits the budget.
        preempted = 0
        retired = 0
        pending = [s for s in self.running if s.has_pending_forward]
        while pending and self._growth_overflows(pending):
            if not self._preempt_one():
                # A lone sequence has outgrown the budget: it cannot be
                # preempted in its own favour, so it retires where it is.
                # Its sampled-but-never-forwarded tail token is dropped to
                # keep the invariant that every reported non-EOS token was
                # charged one decode step.
                state = pending[0]
                if state.has_pending_forward:
                    state.generated.pop()
                self._retire(state, FinishReason.LENGTH)
                retired += 1
            else:
                preempted += 1
            pending = [s for s in self.running if s.has_pending_forward]

        cycles = 0.0
        if pending:
            cycles = self.backend.decode_batch(pending)
            self._cached_total += len(pending)
            self._advance(cycles)
            self._decode_steps += 1
            full = self._recorder.level == "full"
            for state in pending:
                if full:
                    state.decode_cycles.append(cycles)
                if state.n_generated < state.request.max_new_tokens \
                        and state.position \
                        < self.backend.model_config.max_context:
                    before = self._n_finished
                    self._note_sampled(state, self.backend.sample(state))
                    retired += self._n_finished - before
                else:
                    # Budget (or context) reached and the final token's
                    # forward was just charged: retire at the length limit.
                    self._retire(state, FinishReason.LENGTH)
                    retired += 1

        event = StepEvent(clock_s=self.clock_s, batch=len(pending),
                          cycles=cycles, admitted=admitted,
                          preempted=preempted, retired=retired)
        self._recorder.record_event(event)
        return event

    def _refill(self) -> None:
        """Pull the stream into the waiting queue: every request that
        has already arrived, plus one look-ahead so the admission gate,
        the window arrival cut, and the idle jump always see the true
        next arrival.  Keeps the queue O(in-flight), not O(trace)."""
        while self._stream is not None:
            if self._stream_head is None:
                try:
                    head = next(self._stream)
                except StopIteration:
                    self._stream = None
                    return
                if head.arrival_s < self._last_stream_arrival:
                    raise SimulationError(
                        f"streamed traces must be sorted by arrival: "
                        f"request {head.request_id} arrives at "
                        f"{head.arrival_s:.6f}s after one at "
                        f"{self._last_stream_arrival:.6f}s")
                self._last_stream_arrival = head.arrival_s
                self._stream_head = head
            if self.waiting and self._stream_head.arrival_s > self.clock_s:
                return
            self.submit(self._stream_head)
            self._stream_head = None

    def run(self, requests: Iterable[Request] | None = None,
            max_steps: int = 1_000_000,
            telemetry: str = "full") -> ServeReport | StreamedServeReport:
        """Drive the engine until every submitted request retires.

        A materialized ``requests`` collection (list, tuple, deque, any
        non-iterator iterable) is sorted and submitted up front, as
        before.  An *iterator* (e.g. an :func:`iter_synthetic_trace`
        generator) is consumed *incrementally* in arrival order — a
        million-request trace never exists in memory at once — and must
        already be arrival-sorted.

        ``telemetry`` picks the recording level: ``"full"`` materializes
        every per-step observable (the reference), ``"windows"`` keeps
        run-length records that expand lazily to the identical values,
        ``"summary"`` keeps only aggregates and exact percentiles.
        """
        if self.running:
            raise SimulationError("engine is already mid-run")
        self.clock_s = 0.0
        self.finished = []
        self._preemptions = 0
        self._n_finished = 0
        self._decode_steps = 0
        self._recorder = TelemetryRecorder(
            telemetry, self.backend.freq_hz,
            token_replay=getattr(self.backend, "replay_tokens", None))
        self._stream = None
        self._stream_head = None
        self._last_stream_arrival = 0.0
        # A queue populated here is arrival-sorted; one pre-filled by
        # direct submit() calls carries no such guarantee.
        self._arrival_sorted = not self.waiting
        if requests is not None:
            if isinstance(requests, Iterator):
                self._stream = requests
            else:
                for request in sorted(requests, key=lambda r: r.arrival_s):
                    self.submit(request)
        self._refill()
        multi = self.fast_forward == "multi"
        steps = 0
        while self.waiting or self.running or self._stream is not None:
            if multi:
                applied = self._fast_forward_multi()
            elif self.fast_forward:
                applied = self._fast_forward_single()
            else:
                applied = 0
            if not applied:
                self.step()
                applied = 1
            steps += applied
            if steps > max_steps:
                raise SimulationError(
                    f"engine did not drain within {max_steps} steps")
            self._refill()
        return self._report()

    def _report(self) -> ServeReport | StreamedServeReport:
        if self._recorder.level != "full":
            return StreamedServeReport(self._recorder,
                                       total_time_s=self.clock_s,
                                       preemptions=self._preemptions)
        freq = self.backend.freq_hz
        results = []
        for state in sorted(self.finished, key=lambda s: s.request_id):
            assert state.finish_reason is not None
            decode_step_s = tuple(
                (np.asarray(state.decode_cycles) / freq).tolist()) \
                if state.decode_cycles else ()
            results.append(RequestResult(
                request_id=state.request_id,
                tokens=tuple(state.generated),
                prompt_len=state.prompt_len,
                ttft_s=state.ttft_s,
                e2e_s=state.e2e_s,
                finish_reason=state.finish_reason,
                preemptions=state.preemptions,
                decode_step_s=decode_step_s,
            ))
        return ServeReport(
            results=results,
            total_time_s=self.clock_s,
            n_steps=self._recorder.n_steps,
            preemptions=self._preemptions,
            max_batch_observed=self._recorder.max_batch,
            step_batches=[e.batch for e in self.events if e.batch],
            window_stats=self._recorder.window_stats(),
        )
