"""Continuous batching over one embedded accelerator.

The scheduler is iteration-level (Orca-style): every :meth:`step` first
admits waiting requests against the bare-metal capacity report, runs
their prefills, then executes ONE batched decode step over every running
sequence.  Sequences join and leave the batch at token granularity —
no waiting for stragglers, which is what makes the weight-stream
amortization of :meth:`CycleModel.batched_decode_step` reachable under
real traffic.

Capacity discipline (the paper's Sec. VII-A carried to serving): the
KV budget is derived from what the platform's DRAM holds beyond the
quantized weights and the bare-metal reservation.  Admission is
optimistic (a request needs room for its prompt plus one token); when
decode growth would overflow the budget, the youngest running sequence
is preempted — its slot freed, its tokens kept — and it re-enters the
queue to be recomputed when pressure clears.

Two capacity disciplines, chosen by the backend's KV mode:

* slotted — admission against a worst-case *token* budget: every
  sequence is charged its full length, shared or not.
* paged — admission against free *blocks* of the backend's
  :class:`repro.kv.PagedKVCache`: prefix-shared blocks are charged
  once, so identical system prompts stop competing for budget, and
  preemption triggers on block pressure instead of token counts.
"""

from __future__ import annotations

import bisect
from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..errors import CapacityError, SimulationError
from .backends import EngineBackend, derive_kv_token_budget
from .request import FinishReason, Request, RequestState, RequestStatus
from .tenancy import PRIORITY_CLASSES
from .telemetry import (  # noqa: F401  (re-exported: public API lives here)
    TELEMETRY_LEVELS,
    RequestResult,
    ServeReport,
    StepEvent,
    StepWindow,
    StreamedServeReport,
    TelemetryRecorder,
)

if TYPE_CHECKING:  # avoids the runtime<->engine package-import cycle
    from ..runtime.baremetal import BareMetalSystem

#: rank of the lowest (droppable) priority class.
_LOWEST_RANK = len(PRIORITY_CLASSES) - 1


@dataclass(frozen=True)
class KilledRequest:
    """One request instance lost to an injected replica crash.

    ``phase`` records where the fault caught it: ``"running"`` (in the
    batch — KV and generated tokens lost), ``"queued"`` (waiting), or
    ``"arrival"`` (arrived during the outage, nobody listening).  Kill
    times are pure functions of the fault and the request, never of
    the discovering tier's clock, so fault replay stays bit-identical
    across scheduler tiers.
    """

    request: Request
    kill_s: float
    phase: str
    tokens_lost: int = 0


@dataclass(frozen=True)
class MigratedRequest:
    """One request checkpointed off a draining replica.

    ``phase`` records where the drain caught it: ``"running"`` (in the
    batch — its KV checkpoint of ``kv_bytes`` ships over the
    interconnect), ``"queued"`` (waiting — nothing resident, a
    zero-byte handoff), or ``"arrival"`` (arrived mid-drain, admission
    closed).  Migration times are pure functions of the fault and the
    request, like kill times, so the router's re-dispatch plan is
    bit-identical across scheduler tiers.
    """

    request: Request
    migrate_s: float
    phase: str
    #: KV-resident tokens at checkpoint time (prompt + forwarded
    #: generated) — what the target's resume prefill may skip.
    position: int = 0
    n_generated: int = 0
    tokens: tuple[int, ...] = ()
    first_token_s: float | None = None
    preemptions: int = 0
    #: checkpoint payload: the *logical* sequence KV — the target
    #: shares none of the source's blocks, so prefix-shared residency
    #: earns no transfer discount.
    kv_bytes: int = 0
    blocks: int = 0


class _ClassQueues:
    """The waiting queue: one arrival-sorted deque per priority class.

    Admission scans classes highest-first; within a class the order is
    FIFO with preempted re-entries (already arrived) at the head —
    exactly the old single-deque discipline, applied per class.  Since
    every class deque is arrival-sorted, the global next arrival is the
    minimum over the class heads, keeping the idle jump O(classes).
    """

    __slots__ = ("queues", "_n")

    def __init__(self) -> None:
        self.queues: tuple[deque[RequestState], ...] = \
            tuple(deque() for _ in PRIORITY_CLASSES)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __iter__(self):
        for q in self.queues:
            yield from q

    def append(self, state: RequestState) -> None:
        self.queues[state.request.tenant.rank].append(state)
        self._n += 1

    def appendleft(self, state: RequestState) -> None:
        self.queues[state.request.tenant.rank].appendleft(state)
        self._n += 1

    def popleft(self, rank: int) -> RequestState:
        state = self.queues[rank].popleft()
        self._n -= 1
        return state

    def min_head_arrival(self) -> float | None:
        """Earliest arrival among class heads — the global next arrival
        when every class deque is arrival-sorted."""
        best: float | None = None
        for q in self.queues:
            if q:
                arrival = q[0].request.arrival_s
                if best is None or arrival < best:
                    best = arrival
        return best

    def remove_if(self, predicate) -> list[RequestState]:
        """Remove and return every member matching ``predicate``,
        preserving per-class arrival order (the crash kill path)."""
        removed: list[RequestState] = []
        for q in self.queues:
            if not q:
                continue
            doomed = [s for s in q if predicate(s)]
            if doomed:
                kept = [s for s in q if not predicate(s)]
                q.clear()
                q.extend(kept)
                removed.extend(doomed)
        self._n -= len(removed)
        return removed

    def next_future_arrival(self, clock_s: float) -> float | None:
        """Earliest class-head arrival strictly after ``clock_s``.
        An already-arrived head hides its successors, matching the
        in-class FIFO rule: nothing behind it can be admitted first."""
        best: float | None = None
        for q in self.queues:
            if q:
                arrival = q[0].request.arrival_s
                if arrival > clock_s and (best is None or arrival < best):
                    best = arrival
        return best


class ContinuousBatchScheduler:
    """Admits, batches, preempts, and retires requests on one backend."""

    def __init__(self, backend: EngineBackend,
                 system: "BareMetalSystem | None" = None,
                 max_batch: int = 8,
                 kv_token_budget: int | None = None,
                 fast_forward: bool | str = True) -> None:
        if max_batch <= 0:
            raise SimulationError(f"max_batch must be positive: {max_batch}")
        self.backend = backend
        self.max_batch = max_batch
        #: timing-only backends may advance fast-forward windows in one
        #: call.  Tiers: ``"multi"`` (the default, ``True``) charges
        #: multi-segment windows that span predicted retirements and
        #: block frontiers; ``"single"`` is the piecewise-static window
        #: that breaks at every state change; ``False``/``"off"`` forces
        #: the eager step loop.  The differential tests pin all three to
        #: identical reports, and a reference-cost backend is a
        #: deliberate baseline that always runs eager.  The attribute
        #: stays falsy whenever fast-forward is off.
        tier: bool | str = fast_forward
        if tier is True:
            tier = "multi"
        elif tier == "off":
            tier = False
        if tier not in (False, "single", "multi"):
            raise SimulationError(
                "fast_forward must be a bool or one of 'off', 'single', "
                f"'multi': {fast_forward!r}")
        if not getattr(backend, "supports_fast_forward", False) \
                or getattr(backend, "reference_costs", False):
            tier = False
        self.fast_forward = tier
        model = backend.model_config
        self.paged_kv = getattr(backend, "paged_kv", None)
        if self.paged_kv is not None:
            # Block discipline: the backend's pool is the capacity
            # authority; a token budget on top would double-account.
            if kv_token_budget is not None:
                raise SimulationError(
                    "kv_token_budget does not apply to a paged backend; "
                    "size the pool with n_kv_blocks instead")
            kv_token_budget = self.paged_kv.n_total_blocks \
                * self.paged_kv.block_size
        elif kv_token_budget is None:
            derive = getattr(backend, "derive_kv_token_budget", None)
            if derive is not None:
                # Cluster backends size KV from their own (sharded)
                # capacity split instead of the single-device report.
                kv_token_budget = derive(
                    cap_tokens=max_batch * model.max_context,
                    system=system)
            else:
                kv_token_budget = derive_kv_token_budget(
                    model, backend.quant, backend.platform,
                    cap_tokens=max_batch * model.max_context, system=system)
        if kv_token_budget <= 0:
            raise CapacityError("KV token budget must be positive")
        self.kv_token_budget = int(kv_token_budget)

        self.clock_s = 0.0
        self.waiting = _ClassQueues()
        self.running: list[RequestState] = []
        self.finished: list[RequestState] = []
        self._recorder = TelemetryRecorder(
            "full", backend.freq_hz,
            token_replay=getattr(backend, "replay_tokens", None))
        #: optional request-lifecycle trace recorder
        #: (:class:`repro.obs.FlightRecorder`).  Off by default; when
        #: None every hook site is a single attribute check, so
        #: untraced runs pay nothing.
        self.flight = None
        self._preemptions = 0
        self._n_finished = 0
        #: global decode-step counter — the index space request spans
        #: point into.
        self._decode_steps = 0
        #: incremental submission source (a sorted Request iterator);
        #: None outside streamed runs.
        self._stream: Iterator[Request] | None = None
        self._stream_head: Request | None = None
        self._last_stream_arrival = 0.0
        #: True while the waiting deque is known to hold requests in
        #: arrival order (run() sorts materialized traces before
        #: submitting) — the idle jump then reads the head in O(1).
        self._arrival_sorted = False
        #: running sum of cached tokens across the running set, kept in
        #: lockstep by admit/retire/preempt/decode instead of re-summed
        #: every scheduler step.
        self._cached_total = 0
        #: per-tenant quota discipline — resolved token quotas and the
        #: per-tenant cached-token counters, populated only for tenants
        #: that declare a quota so the default path pays nothing.
        self._quota_specs: dict[str, int] = {}
        self._tenant_cached: dict[str, int] = {}
        #: best-effort work evicted more than this many times in favour
        #: of higher classes is dropped (REJECTED) instead of requeued,
        #: so it cannot thrash the pool while interactive traffic waits.
        self.best_effort_eviction_limit = 3
        #: deterministic fault plan for this replica — any object with
        #: a sorted ``actions`` tuple of ``(kind, start_s, duration_s,
        #: factor)`` entries (see :class:`repro.cluster.faults.
        #: ReplicaFaultPlan`), typically set by the router before
        #: :meth:`run`.  None = fault-free; the hot path then pays one
        #: falsy check per loop iteration.
        self.fault_plan = None
        #: cluster-wide capacity-reduced intervals (sorted, disjoint)
        #: for goodput-during-recovery accounting — set by the router
        #: alongside the plan.
        self.degraded_spans: tuple[tuple[float, float], ...] = ()
        #: requests lost to crashes in the current/last run
        #: (:class:`KilledRequest`, in kill order) — what the router
        #: re-dispatches to surviving replicas or fails.
        self.killed: list[KilledRequest] = []
        #: requests checkpointed off this replica by drain events
        #: (:class:`MigratedRequest`, in migration order) — what the
        #: router re-admits on a healthy replica after a handoff charge.
        self.drained: list[MigratedRequest] = []
        self._fault_actions: tuple = ()
        self._fault_next = 0
        self._slow_factor = 1.0
        self._slow_until: float | None = None
        self._down_start = 0.0
        self._down_until: float | None = None
        self._drain_start = 0.0
        self._drain_until: float | None = None
        self._n_resumed = 0
        self._resume_recompute_tokens = 0
        self._fault_counts = {"crash": 0, "stall": 0, "slow": 0,
                              "drain": 0}
        self._downtime_s = 0.0
        self._degraded_tokens = 0
        self._degraded_starts: list[float] = []
        self._degraded_ends: list[float] = []

    @property
    def events(self) -> list[StepEvent]:
        """Per-step events of the current/last run.  At windowed
        telemetry the run-length records expand lazily — the identical
        event stream, paid only when read."""
        return self._recorder.expanded_events()

    @property
    def telemetry(self) -> str:
        return self._recorder.level

    # -- submission --------------------------------------------------------

    def submit(self, request: Request) -> RequestState:
        """Queue one request; raises if it could never be served."""
        model = self.backend.model_config
        if len(request.prompt) >= model.max_context:
            raise SimulationError(
                f"request {request.request_id}: prompt of "
                f"{len(request.prompt)} tokens fills the "
                f"{model.max_context}-token context")
        if len(request.prompt) + 1 > self.kv_token_budget:
            raise CapacityError(
                f"request {request.request_id}: prompt alone exceeds the "
                f"KV budget of {self.kv_token_budget} tokens")
        self._register_tenant(request)
        state = RequestState(request=request)
        resume = request.resume
        if resume is not None:
            # Migration handoff: re-seed the generated suffix from the
            # deterministic token stream and mark the transferred KV as
            # skippable by the first prefill.
            replay = getattr(self.backend, "replay_tokens", None)
            if replay is None:
                raise SimulationError(
                    f"request {request.request_id}: migration resume "
                    "needs a replayable token stream; this backend "
                    "computes real logits and cannot re-seed one")
            if resume.n_generated:
                state.generated = list(replay(
                    request.request_id, resume.n_generated,
                    request.eos_id))
            state.first_token_s = resume.first_token_s
            state.resume_skip = min(
                resume.kv_position,
                len(request.prompt) + resume.n_generated)
        self.waiting.append(state)
        if self.flight is not None:
            self.flight.request_phase(
                request.request_id, "queued", request.arrival_s,
                tenant=request.tenant.name,
                priority=request.tenant.priority)
        return state

    def _register_tenant(self, request: Request) -> None:
        """Resolve and pin the tenant's KV quota (tokens either way:
        a block quota converts through the paged pool's block size)."""
        tenant = request.tenant
        if not tenant.has_quota:
            return
        if tenant.kv_quota_blocks is not None:
            if self.paged_kv is None:
                raise SimulationError(
                    f"tenant {tenant.name!r}: kv_quota_blocks needs a "
                    "paged backend; use kv_quota_tokens")
            quota = tenant.kv_quota_blocks * self.paged_kv.block_size
        else:
            assert tenant.kv_quota_tokens is not None
            quota = tenant.kv_quota_tokens
        known = self._quota_specs.get(tenant.name)
        if known is not None and known != quota:
            raise SimulationError(
                f"tenant {tenant.name!r}: conflicting KV quotas "
                f"({known} vs {quota} tokens)")
        self._quota_specs[tenant.name] = quota
        self._tenant_cached.setdefault(tenant.name, 0)
        if len(request.prompt) + 1 > quota:
            raise CapacityError(
                f"request {request.request_id}: prompt alone exceeds "
                f"tenant {tenant.name!r}'s KV quota of {quota} tokens")

    # -- internals ---------------------------------------------------------

    def _cached_tokens(self) -> int:
        return self._cached_total

    def _growth_blocks(self, states: Iterable[RequestState]) -> int:
        """Fresh blocks the coming one-token appends would claim."""
        assert self.paged_kv is not None
        return sum(1 for s in states
                   if s.slot is not None
                   and self.paged_kv.append_needs_block(s.slot))

    def _admit_fits(self, state: RequestState) -> bool:
        """Room for this request's prompt + first decode token, *and* the
        one-token growth every running sequence makes this step —
        otherwise the admit would be preempted right back out after
        paying its whole prefill."""
        if self.paged_kv is not None:
            fresh, claimable = self.paged_kv.admission_plan(
                state.sequence_tokens())
            growth = self._growth_blocks(
                s for s in self.running if s.has_pending_forward)
            return fresh + growth <= claimable
        needed = len(state.sequence_tokens()) + 1
        growth = sum(1 for s in self.running if s.has_pending_forward)
        return self._cached_tokens() + growth + needed \
            <= self.kv_token_budget

    def _growth_overflows(self, pending: list[RequestState]) -> bool:
        """Would appending one token per pending sequence burst the KV?"""
        if self.paged_kv is not None:
            return self._growth_blocks(pending) \
                > self.paged_kv.n_available_blocks
        return self._cached_tokens() + len(pending) > self.kv_token_budget

    # -- tenant quota discipline -------------------------------------------
    #
    # A quota counts a tenant's *cached tokens* (sum of member
    # positions) under both KV disciplines — paged prefix sharing is a
    # pool-level economy, deliberately not credited against quotas.
    # Every mutation mirrors ``_cached_total`` and is gated on
    # ``_quota_specs`` so quota-free runs skip all of it.

    def _cache_tenant(self, state: RequestState) -> None:
        name = state.request.tenant.name
        if name in self._tenant_cached:
            self._tenant_cached[name] += state.position

    def _uncache_tenant(self, state: RequestState) -> None:
        name = state.request.tenant.name
        if name in self._tenant_cached:
            self._tenant_cached[name] -= state.position

    def _grow_tenants(self, pending: list[RequestState], n: int) -> None:
        """Charge ``n`` appended tokens per pending member."""
        for s in pending:
            name = s.request.tenant.name
            if name in self._tenant_cached:
                self._tenant_cached[name] += n

    def _quota_blocked(self, state: RequestState) -> bool:
        """Admission gate: would this admit (prompt + first token, plus
        the coming one-token growth of the tenant's running members)
        push its tenant past quota?  Mirrors ``_admit_fits``, scoped to
        one tenant."""
        if not self._quota_specs:
            return False
        name = state.request.tenant.name
        quota = self._quota_specs.get(name)
        if quota is None:
            return False
        needed = state.prompt_len + state.n_generated + 1
        growth = sum(1 for s in self.running
                     if s.request.tenant.name == name
                     and s.has_pending_forward)
        return self._tenant_cached[name] + growth + needed > quota

    def _quota_overflow(
            self, pending: list[RequestState],
    ) -> tuple[list[RequestState], list[RequestState]] | None:
        """First tenant whose coming one-token growth bursts its quota:
        ``(running members, pending members)``; None when all fit."""
        if not self._quota_specs:
            return None
        for name, quota in self._quota_specs.items():
            growing = [s for s in pending
                       if s.request.tenant.name == name]
            if growing and \
                    self._tenant_cached[name] + len(growing) > quota:
                members = [s for s in self.running
                           if s.request.tenant.name == name]
                return members, growing
        return None

    def _advance(self, cycles: float) -> None:
        self.clock_s += cycles / self.backend.freq_hz

    # -- fault injection ----------------------------------------------------
    #
    # Faults are serviced only at decision points (run-loop top and the
    # idle-jump clamp in step()), never mid-window: the window machinery
    # instead *cuts* at the next fault boundary with the same
    # ``searchsorted`` discipline as arrival cuts, so all fast-forward
    # tiers observe every fault at the identical clock and stay
    # bit-identical to the eager loop.

    def _fault_boundary(self) -> float | None:
        """Next simulated time a fault changes scheduler behaviour: the
        start of the next unserviced action, the expiry of an active
        slowdown (cycles charged after it must stop being scaled), or
        an active drain's deadline (survivors checkpoint there)."""
        nxt = self._slow_until
        if self._drain_until is not None \
                and (nxt is None or self._drain_until < nxt):
            nxt = self._drain_until
        if self._fault_next < len(self._fault_actions):
            start = self._fault_actions[self._fault_next].start_s
            if nxt is None or start < nxt:
                nxt = start
        return nxt

    def _boundary_reason(self, boundary: float) -> str:
        """Window-break label for a cut at ``boundary``: ``"drain"``
        when the binding boundary is a drain transition (the active
        drain's deadline, or the start of the next drain action),
        ``"fault"`` for everything else."""
        if self._drain_until is not None \
                and boundary == self._drain_until:
            return "drain"
        if self._fault_next < len(self._fault_actions):
            action = self._fault_actions[self._fault_next]
            if action.kind == "drain" and action.start_s == boundary:
                return "drain"
        return "fault"

    def _service_faults(self) -> None:
        """Apply every fault action due at the current clock."""
        while True:
            if self._slow_until is not None \
                    and self.clock_s >= self._slow_until:
                self._slow_factor, self._slow_until = 1.0, None
            if self._drain_until is not None \
                    and self.clock_s >= self._drain_until:
                self._finish_drain()
            if self._fault_next >= len(self._fault_actions):
                return
            action = self._fault_actions[self._fault_next]
            if self.clock_s < action.start_s:
                return
            self._fault_next += 1
            if action.kind == "crash":
                self._apply_crash(action)
            elif action.kind == "drain":
                self._begin_drain(action)
            elif action.kind == "stall":
                # A hang freezes the replica: nothing is scheduled
                # until it ends, modelled as a clock jump at this
                # decision point.
                self._fault_counts["stall"] += 1
                self._downtime_s += action.duration_s
                end = action.start_s + action.duration_s
                if self.flight is not None:
                    self.flight.marker("hang", action.start_s,
                                       stall_s=action.duration_s)
                if end > self.clock_s:
                    self.clock_s = end
            else:  # "slow"
                self._fault_counts["slow"] += 1
                self._slow_factor = action.factor
                self._slow_until = action.start_s + action.duration_s
                if self.flight is not None:
                    self.flight.marker("slowdown", action.start_s,
                                       factor=action.factor,
                                       slow_s=action.duration_s)

    def _apply_crash(self, action) -> None:
        """Kill the replica for ``[start, start + duration)``: running
        work loses its KV and tokens, queued work and arrivals during
        the outage find nobody listening.  Every kill time is a pure
        function of the fault and the request — ``max(start,
        arrival)`` — never of the discovering tier's clock, so the
        router's re-dispatch plan is tier-independent."""
        self._fault_counts["crash"] += 1
        self._downtime_s += action.duration_s
        down_until = action.start_s + action.duration_s
        self._down_start = action.start_s
        self._down_until = down_until
        if self.flight is not None:
            self.flight.marker("crash", action.start_s,
                               down_s=action.duration_s)
            self.flight.marker("recover", down_until)
        for state in self.running:
            self.backend.release(state)
            self._cached_total -= state.position
            if self._quota_specs:
                self._uncache_tenant(state)
            self._log_kill(state.request, action.start_s, "running",
                           len(state.generated))
        self.running.clear()
        for state in self.waiting.remove_if(
                lambda s: s.request.arrival_s < down_until):
            self._log_kill(state.request,
                           max(action.start_s, state.request.arrival_s),
                           "queued", len(state.generated))
        head = self._stream_head
        if head is not None and head.arrival_s < down_until:
            self._stream_head = None
            self._log_kill(head, max(action.start_s, head.arrival_s),
                           "arrival", 0)
        # The clock stays put: the replica itself resumes scheduling
        # surviving arrivals the moment the outage ends (the idle jump
        # lands on the first post-outage arrival).

    def _log_kill(self, request: Request, kill_s: float, phase: str,
                  tokens_lost: int) -> None:
        if self.flight is not None:
            rid = request.request_id
            self.flight.instant("crash-kill", kill_s, rid, phase=phase,
                                tokens_lost=tokens_lost)
            self.flight.request_phase(rid, None, kill_s)
        self.killed.append(
            KilledRequest(request, kill_s, phase, tokens_lost))

    # -- graceful drain ------------------------------------------------------
    #
    # A drain is the planned counterpart of a crash: admission closes
    # at the action start, running sequences keep decoding until the
    # deadline, and whatever is still in flight then checkpoints into
    # ``drained`` instead of dying.  Like kill times, every migration
    # time is a pure function of the fault and the request, so the
    # router's handoff plan is identical across scheduler tiers.

    def _begin_drain(self, action) -> None:
        """Close admission for ``[start, start + duration)``: queued
        work and mid-drain arrivals hand over immediately (nothing of
        theirs is KV-resident), running work decodes on toward the
        deadline."""
        self._fault_counts["drain"] += 1
        deadline = action.start_s + action.duration_s
        self._drain_start = action.start_s
        self._drain_until = deadline
        if self.flight is not None:
            self.flight.marker("drain", action.start_s,
                               drain_s=action.duration_s)
        for state in self.waiting.remove_if(
                lambda s: s.request.arrival_s < deadline):
            self._log_migration(MigratedRequest(
                request=state.request,
                migrate_s=max(action.start_s, state.request.arrival_s),
                phase="queued",
                n_generated=state.n_generated,
                tokens=tuple(state.generated),
                first_token_s=state.first_token_s,
                preemptions=state.preemptions))
        head = self._stream_head
        if head is not None and head.arrival_s < deadline:
            self._stream_head = None
            self._log_migration(MigratedRequest(
                request=head,
                migrate_s=max(action.start_s, head.arrival_s),
                phase="arrival"))

    def _finish_drain(self) -> None:
        """Drain deadline reached: checkpoint every still-running
        sequence at the deadline instant and reopen admission."""
        deadline = self._drain_until
        assert deadline is not None
        self._drain_start = 0.0
        self._drain_until = None
        for state in list(self.running):
            self._extract_running(state, deadline)

    def extract_state(self, request_id: int,
                      migrate_s: float | None = None) -> MigratedRequest:
        """Checkpoint one running sequence off this replica: its KV
        payload size, position, and generated suffix, ready for a
        handoff.  The sequence leaves the batch and its KV accounting
        unwinds; ``migrate_s`` defaults to the current clock."""
        for state in self.running:
            if state.request_id == request_id:
                return self._extract_running(
                    state,
                    self.clock_s if migrate_s is None else migrate_s)
        raise SimulationError(
            f"request {request_id} is not running on this replica")

    def _extract_running(self, state: RequestState,
                         migrate_s: float) -> MigratedRequest:
        kv_bytes, blocks = self._kv_payload(state)
        self.backend.release(state)
        self.running.remove(state)
        self._cached_total -= state.position
        if self._quota_specs:
            self._uncache_tenant(state)
        state.spans.append((state._span_start, self._decode_steps))
        ckpt = MigratedRequest(
            request=state.request, migrate_s=migrate_s, phase="running",
            position=state.position, n_generated=state.n_generated,
            tokens=tuple(state.generated),
            first_token_s=state.first_token_s,
            preemptions=state.preemptions,
            kv_bytes=kv_bytes, blocks=blocks)
        self._log_migration(ckpt)
        return ckpt

    def _kv_payload(self, state: RequestState) -> tuple[int, int]:
        """``(bytes, blocks)`` a checkpoint of this sequence ships —
        the logical sequence KV; the target holds none of the source's
        blocks, so prefix-shared residency earns no discount."""
        if state.slot is None or state.position == 0:
            return 0, 0
        if self.paged_kv is not None:
            return (self.paged_kv.sequence_payload_bytes(state.slot),
                    len(self.paged_kv.block_table(state.slot)))
        model = self.backend.model_config
        kv_bits = self.backend.quant.kv_bits
        return (2 * model.num_layers * state.position * model.kv_dim
                * kv_bits // 8, 0)

    def _log_migration(self, ckpt: MigratedRequest) -> None:
        if self.flight is not None:
            rid = ckpt.request.request_id
            self.flight.instant("migrate-out", ckpt.migrate_s, rid,
                                phase=ckpt.phase,
                                kv_bytes=ckpt.kv_bytes,
                                tokens=ckpt.n_generated)
            self.flight.request_phase(rid, None, ckpt.migrate_s)
        self.drained.append(ckpt)

    def fault_stats(self) -> dict[str, float]:
        """Per-replica fault tally of the current/last run."""
        return {
            "crashes": self._fault_counts["crash"],
            "stalls": self._fault_counts["stall"],
            "slowdowns": self._fault_counts["slow"],
            "drains": self._fault_counts["drain"],
            "n_killed": len(self.killed),
            "n_drained": len(self.drained),
            "n_resumed": self._n_resumed,
            "resume_recompute_tokens": self._resume_recompute_tokens,
            "downtime_s": self._downtime_s,
            "degraded_tokens": self._degraded_tokens,
        }

    def _note_sampled(self, state: RequestState, token: int) -> None:
        """Record a sampled token; retire on EOS or when the budget is hit
        with nothing left to forward."""
        state.generated.append(token)
        if state.first_token_s is None:
            state.first_token_s = self.clock_s
        if state.request.eos_id is not None \
                and token == state.request.eos_id:
            # The EOS itself is never forwarded: retire right away.
            self._retire(state, FinishReason.EOS)

    def _finalize(self, state: RequestState, reason: FinishReason) -> None:
        """Close the request out and hand it to telemetry."""
        state.status = RequestStatus.FINISHED
        state.finish_reason = reason
        self._n_finished += 1
        if self._degraded_ends and state.generated:
            # Goodput-during-recovery: tokens of work retired while the
            # cluster ran at reduced capacity.
            t = state.finish_s
            i = bisect.bisect_right(self._degraded_starts, t) - 1
            if i >= 0 and t < self._degraded_ends[i]:
                self._degraded_tokens += len(state.generated)
        if self.flight is not None:
            rid = state.request_id
            self.flight.request_phase(rid, None, state.finish_s)
            self.flight.instant(
                "rejected" if reason is FinishReason.REJECTED
                else "retired",
                state.finish_s, rid, reason=reason.name.lower(),
                tokens=len(state.generated),
                tenant=state.request.tenant.name)
        self._recorder.fold_tenant(state)
        if self._recorder.level == "full":
            self.finished.append(state)
        else:
            # Streaming telemetry: fold the request into the report
            # columns now and let the state object go — retired work
            # must not grow with the trace.
            self._recorder.fold_result(state)

    def _retire(self, state: RequestState, reason: FinishReason) -> None:
        self.backend.release(state)
        state.finish_s = self.clock_s
        if state in self.running:
            self.running.remove(state)
            self._cached_total -= state.position
            if self._quota_specs:
                self._uncache_tenant(state)
        state.spans.append((state._span_start, self._decode_steps))
        self._finalize(state, reason)

    def _retire_overgrown(self, state: RequestState) -> None:
        """Retire a sequence that cannot be preempted in its own favour
        (it alone outgrew the pool or its tenant's quota).  The
        sampled-but-never-forwarded tail token is dropped to keep the
        invariant that every reported non-EOS token was charged one
        decode step — and when that token was the *first*, the TTFT
        goes with it: a request retired with zero reported tokens must
        not carry a first-token time."""
        if state.has_pending_forward:
            state.generated.pop()
            if not state.generated:
                state.first_token_s = None
        if self.flight is not None:
            self.flight.instant("quota-retire", self.clock_s,
                                state.request_id,
                                tenant=state.request.tenant.name)
        self._retire(state, FinishReason.LENGTH)

    def _reject(self, request: Request) -> None:
        """Refuse a request at admission control: it still produces a
        result (``FinishReason.REJECTED``, zero tokens, no TTFT) so a
        streamed run drains and reports instead of aborting mid-trace.
        Rejection is instantaneous at arrival — ``finish_s`` is pinned
        to the arrival time so the verdict is tier-independent."""
        state = RequestState(request=request)
        state.finish_s = request.arrival_s
        self._finalize(state, FinishReason.REJECTED)

    def _pick_victim(self, pool: list[RequestState]) -> RequestState:
        """Youngest member of the lowest class present.  Scanned from
        the youngest so a single-class pool picks the last element —
        the pre-tenancy victim, bit for bit."""
        victim = pool[-1]
        worst = victim.request.tenant.rank
        if worst == _LOWEST_RANK:
            return victim
        for s in reversed(pool):
            rank = s.request.tenant.rank
            if rank > worst:
                victim, worst = s, rank
                if worst == _LOWEST_RANK:
                    break
        return victim

    def _evict(self, state: RequestState) -> None:
        """Push one running sequence out of the batch: slot freed,
        tokens kept, KV accounting unwound."""
        self.running.remove(state)
        self._cached_total -= state.position
        if self._quota_specs:
            self._uncache_tenant(state)
        self.backend.release(state)
        state.status = RequestStatus.PREEMPTED
        state.spans.append((state._span_start, self._decode_steps))
        state.position = 0
        state.logits = None
        state.resume_skip = 0  # transferred KV does not survive eviction
        state.preemptions += 1
        self._preemptions += 1
        if self.flight is not None:
            rid = state.request_id
            self.flight.instant("preempt", self.clock_s, rid,
                                tenant=state.request.tenant.name)
            self.flight.request_phase(rid, "queued", self.clock_s)

    def _outgrew_quota(self, state: RequestState) -> bool:
        """True when this sequence's recompute could never fit its
        tenant's quota again, even against an empty pool.  Such a
        sequence must not re-enter the waiting queue: its class head
        would stay quota-blocked forever and wedge the drain loop."""
        if not self._quota_specs:
            return False
        quota = self._quota_specs.get(state.request.tenant.name)
        return quota is not None \
            and state.prompt_len + state.n_generated + 1 > quota

    def _preempt_one(self,
                     candidates: list[RequestState] | None = None,
                     ) -> str | None:
        """Evict the youngest lowest-class running sequence back to its
        class queue's head.  ``candidates`` narrows the pool (quota
        pressure evicts within the offending tenant only).  A victim
        that has outgrown its own quota retires instead of requeueing
        (``"retired"`` vs ``"preempted"``; None when the pool holds no
        evictable member)."""
        pool = self.running if candidates is None else candidates
        if len(pool) <= 1:
            return None
        victim = self._pick_victim(pool)
        if self._outgrew_quota(victim):
            self._retire_overgrown(victim)
            return "retired"
        self._evict(victim)
        self.waiting.appendleft(victim)
        return "preempted"

    def _preempt_for(self, rank: int) -> bool:
        """Evict one strictly-lower-class victim so an arrived
        class-``rank`` head can be admitted; never touches work of the
        head's own class or higher.  A best-effort victim past the
        eviction limit is dropped (REJECTED) instead of requeued."""
        victims = [s for s in self.running
                   if s.request.tenant.rank > rank]
        if not victims:
            return False
        victim = self._pick_victim(victims)
        if self._outgrew_quota(victim):
            # Requeueing would wedge the victim's class queue (it can
            # never fit its quota again); retiring frees capacity for
            # the head just the same.
            self._retire_overgrown(victim)
            return True
        had_pending = victim.has_pending_forward
        self._evict(victim)
        if victim.request.tenant.rank == _LOWEST_RANK \
                and victim.preemptions > self.best_effort_eviction_limit:
            if had_pending:
                victim.generated.pop()
                if not victim.generated:
                    victim.first_token_s = None
            victim.finish_s = self.clock_s
            self._finalize(victim, FinishReason.REJECTED)
        else:
            self.waiting.appendleft(victim)
        return True

    def _admission_scan(
            self) -> tuple[int, RequestState | None, bool, bool]:
        """Next admissible head under strict priority:
        ``(rank, head, fits, pool_blocked)``.

        Classes are scanned highest-first.  A head that has not arrived
        or is over its tenant's quota yields to lower classes (a tenant
        at quota queues even when the pool has room); the first head
        past those gates is *the* candidate: ``fits`` when the pool
        admits it now, ``fits=False`` when admission needs lower-class
        evictions first.  A pool-blocked head with nothing to evict
        blocks every class below it — strict priority, no bypass —
        reported via ``pool_blocked`` so window gates know an arrived
        head is waiting on capacity."""
        if self._drain_until is not None:
            # Draining: admission is closed outright.  Arrivals inside
            # the drain window were already handed over, so nothing an
            # open scan would admit can be waiting anyway.
            return -1, None, False, False
        for rank, queue in enumerate(self.waiting.queues):
            if not queue:
                continue
            head = queue[0]
            if head.request.arrival_s > self.clock_s:
                continue
            if self._quota_blocked(head):
                continue
            if self._admit_fits(head):
                return rank, head, True, False
            if any(s.request.tenant.rank > rank for s in self.running):
                return rank, head, False, False
            return -1, None, False, True
        return -1, None, False, False

    def _admit_ready(self) -> int:
        admitted = 0
        while len(self.running) < self.max_batch:
            # Streamed runs: each admission advances the clock through
            # its prefill, so requests may arrive mid-loop — pull them
            # in before looking at the heads, exactly like a
            # materialized queue would already hold them.
            self._refill()
            rank, state, fits, _ = self._admission_scan()
            if state is None:
                break
            if not fits:
                # An arrived higher-class head: evict strictly-lower
                # -class work until it fits (or nothing is left to
                # evict, in which case it waits like everyone else).
                while self._preempt_for(rank):
                    if self._admit_fits(state):
                        fits = True
                        break
                if not fits:
                    break
            try:
                self.backend.admit(state)
            except SimulationError:
                break  # no free KV slot
            self.waiting.popleft(rank)
            if self.flight is not None:
                self.flight.request_phase(state.request_id, "prefill",
                                          self.clock_s)
            cycles = self.backend.prefill(state)
            if self._slow_factor != 1.0:
                # Slowdown faults scale cycles, not time: the identical
                # IEEE multiply is applied per element by the windowed
                # tiers, keeping clocks bit-identical.
                cycles = cycles * self._slow_factor
            state.prefill_cycles += cycles
            self._advance(cycles)
            req = state.request
            if req.resume is not None:
                if state.preemptions == 0:
                    # First prefill on the handoff target: the shipped
                    # KV (``resume_skip``) was free, zero recompute.
                    self._n_resumed += 1
                else:
                    # Evicted after resuming: the shipped KV is gone
                    # and this re-prefill recomputes the source's work.
                    self._resume_recompute_tokens += min(
                        req.resume.kv_position, state.position)
                state.resume_skip = 0
            state.status = RequestStatus.RUNNING
            state._span_start = self._decode_steps
            self.running.append(state)
            self._cached_total += state.position
            if self._quota_specs:
                self._cache_tenant(state)
            if self.flight is not None:
                self.flight.request_phase(state.request_id, "decode",
                                          self.clock_s)
            admitted += 1
            # First token (or, after preemption, the next token) samples
            # the moment prefill ends.
            if state.n_generated < state.request.max_new_tokens \
                    and state.position < self.backend.model_config.max_context:
                self._note_sampled(state, self.backend.sample(state))
            else:
                self._retire(state, FinishReason.LENGTH)
        return admitted

    # -- fast forward --------------------------------------------------------

    def _fast_forward_window(self) -> tuple[int, str | None]:
        """``(steps, break_reason)``: how far the running set can
        advance with no admission, retire, preemption, or paged block
        boundary — 0 when any could occur — plus the binding reason
        (None only when there is nothing running to advance).

        While the set is static each step only increments every context
        by one, so per-step cycles become a pure function of the step
        index and a whole window can be charged in one backend call.
        """
        pending = self.running
        if not pending:
            return 0, None
        if any(not s.has_pending_forward for s in pending):
            return 0, "retirement-unpredicted"
        if self.waiting and len(self.running) < self.max_batch:
            _, head, _, _ = self._admission_scan()
            if head is not None:
                # step() may admit (or preempt lower-class work to
                # admit) right now; blocked heads stay blocked inside a
                # window (pool and quota pressure only grow while the
                # set is static), and arrival-gated heads are handled
                # by the clock cut.
                return 0, "admission"
        max_context = self.backend.model_config.max_context
        # The window stops one step short of the earliest retirement it
        # cannot fold (this tier folds none).
        limit = min(
            min(s.request.max_new_tokens - s.n_generated for s in pending),
            min(max_context - 1 - s.position for s in pending),
        )
        reason = "retirement-unpredicted"
        if self.paged_kv is not None:
            block = self.paged_kv.block_size
            for s in pending:
                assert s.slot is not None
                if self.paged_kv.append_needs_block(s.slot):
                    return 0, "block-frontier"
                room = s.position % block
                cap = block - room if room else block
                if cap < limit:
                    limit, reason = cap, "block-frontier"
        else:
            cap = (self.kv_token_budget - self._cached_total) \
                // len(pending)
            if cap < limit:
                limit, reason = cap, "preemption-risk"
        if self._quota_specs:
            for name, quota in self._quota_specs.items():
                members = sum(1 for s in pending
                              if s.request.tenant.name == name)
                if not members:
                    continue
                # k steps are quota-safe iff cached + k*members stays
                # within the quota — the same closed form as the pool
                # cap, scoped to one tenant.
                cap = (quota - self._tenant_cached[name]) // members
                if cap < limit:
                    limit, reason = cap, "quota"
        return max(0, limit), reason

    def _next_admission_arrival(self) -> float | None:
        """Earliest future arrival that could flip the admission
        verdict mid-window: a not-yet-arrived class head, or the
        unsubmitted stream look-ahead when its class queue is empty
        (behind waiting same-class siblings it could never be admitted
        first, so it cannot cut the window)."""
        nxt = self.waiting.next_future_arrival(self.clock_s)
        head = self._stream_head
        if head is not None and head.arrival_s > self.clock_s \
                and not self.waiting.queues[head.tenant.rank] \
                and (nxt is None or head.arrival_s < nxt):
            nxt = head.arrival_s
        return nxt

    def _fast_forward_single(self) -> int:
        """Advance one static window in one closed-form charge; returns
        the steps applied.

        The per-step loop is gone: the window clock is one sequential
        ``cumsum`` over the backend's window cycles (the same IEEE fold
        as stepping ``clock += cycles / freq``), the arrival cut is a
        ``searchsorted`` into those cumulative clocks, and the
        per-member token/latency recording is bulk array work — so
        every observable is bit-identical to the step-by-step loop
        while a K-step window costs O(batch) Python operations.
        """
        limit, reason = self._fast_forward_window()
        if limit < 2:
            if reason is not None:
                self._recorder.note_break(reason)
            return 0
        pending = self.running
        planned: list[np.ndarray] = []
        for s in pending:
            tokens = np.asarray(self.backend.planned_tokens(s, limit),
                                dtype=np.int64)
            eos = s.request.eos_id
            if eos is not None:
                hits = np.nonzero(tokens == eos)[0]
                if len(hits) and int(hits[0]) < limit:
                    # The step that samples EOS retires the request: it
                    # ends the window and runs through the normal loop.
                    limit, reason = int(hits[0]), "eos"
            planned.append(tokens)
        if limit < 2:
            self._recorder.note_break(reason)
            return 0
        cycles = np.asarray(
            self.backend.fast_forward_cycles(pending, limit),
            dtype=np.float64)
        if self._slow_factor != 1.0:
            # Elementwise copy (never in place — the backend may memo
            # the unscaled array): the same IEEE multiply the eager
            # loop applies per step.
            cycles = cycles * self._slow_factor
        deltas = cycles / self.backend.freq_hz
        # Sequential prefix fold seeded with the current clock — the
        # identical IEEE adds as stepping ``clock += cycles / freq``.
        clocks = np.empty(limit + 1)
        clocks[0] = self.clock_s
        clocks[1:] = deltas
        np.cumsum(clocks, out=clocks)
        applied = limit
        if len(self.running) < self.max_batch:
            next_arrival = self._next_admission_arrival()
            if next_arrival is not None:
                # Steps apply while the clock has not reached the next
                # arrival; step() admits the head right after.
                cut = int(np.searchsorted(clocks[:limit],
                                          next_arrival, side="left"))
                if cut < applied:
                    applied, reason = cut, "arrival"
        if self._fault_actions:
            boundary = self._fault_boundary()
            if boundary is not None:
                # Same cut discipline as arrivals: steps whose
                # *pre-step* clock has reached the boundary belong to
                # the post-fault regime and must run through the eager
                # loop after the fault is serviced.
                cut = int(np.searchsorted(clocks[:limit],
                                          boundary, side="left"))
                if cut < applied:
                    applied = cut
                    reason = self._boundary_reason(boundary)
        if applied <= 0:
            # Zero-step arrival cut: no window advanced, so nothing to
            # account — the eager step takes over immediately.
            return 0
        self._recorder.note_break(reason)
        batch = len(pending)
        clock0 = self.clock_s
        self.clock_s = float(clocks[applied])
        self._decode_steps += applied
        self._recorder.record_window(clock0, clocks[1:applied + 1],
                                     batch, cycles[:applied],
                                     deltas[:applied])
        if self.flight is not None:
            self.flight.span("window", clock0, self.clock_s,
                             batch=batch, steps=applied, reason=reason)
        full = self._recorder.level == "full"
        lat_list = cycles[:applied].tolist() if full else None
        for i, s in enumerate(pending):
            if full:
                s.decode_cycles.extend(lat_list)
            s.generated.extend(planned[i][:applied].tolist())
        self.backend.commit_fast_forward(pending, applied)
        self._cached_total += applied * batch
        if self._quota_specs:
            self._grow_tenants(pending, applied)
        return applied

    def _fast_forward_multi(self) -> int:
        """Advance a multi-segment window: piecewise-static segments
        separated by *predicted* retirements and block-frontier
        crossings, all charged before control returns to the eager
        loop.  Returns the total steps applied.

        Retirement steps are pure functions of each member's planned
        token stream — the length budget is arithmetic and the EOS
        position comes from the same ``planned_tokens`` replay the
        single-segment tier consults — and paged block allocation is
        arithmetic on context length, so the event horizon (the next
        *unavoidable* scheduler state change) is computable without
        stepping.  Each segment is evaluated with the vectorized
        ``fast_forward_cycles`` machinery; between segments the batch
        shrink and block-table growth are folded in the same member
        order as the eager loop (commit, then retire in pending order),
        so every clock, event, latency, and token stream stays
        bit-identical.  Windows then break only at admission
        opportunities, arrival cuts, and genuine preemption risk.
        """
        rec = self._recorder
        freq = self.backend.freq_hz
        max_context = self.backend.model_config.max_context
        full = rec.level == "full"
        clock0 = self.clock_s
        segments: list[tuple[int, int, int]] = []
        cycle_parts: list[np.ndarray] = []
        delta_parts: list[np.ndarray] = []
        clock_parts: list[np.ndarray] = []
        total_applied = 0
        break_reason: str | None = None
        #: fault boundaries are part of the event horizon: a chain that
        #: ends exactly AT a known fault start (or drain deadline) is a
        #: planned termination, not a mid-window break — it leaves
        #: ``break_reason`` driving the loop but records no break note.
        note_break = True

        while True:
            # Re-gate at every segment start: folded retirements free
            # capacity (and slots), so the admission verdict and the
            # stream head must be re-read exactly where the eager loop
            # would next check them.
            self._refill()
            if self._fault_actions:
                fault_boundary = self._fault_boundary()
                if fault_boundary is not None \
                        and self.clock_s >= fault_boundary:
                    # A folded segment's final step crossed the fault
                    # boundary (cut == n_seg): stop the window so the
                    # run loop services the fault before any new
                    # segment.  Never binds on the first iteration —
                    # loop-top servicing guarantees clock < boundary.
                    break_reason = self._boundary_reason(fault_boundary)
                    note_break = False
                    break
            pending = list(self.running)
            if not pending:
                break  # every member retired inside the window
            if any(not s.has_pending_forward for s in pending):
                break_reason = "retirement-unpredicted"
                break
            can_admit = len(self.running) < self.max_batch
            head_arrived_unfit = False
            if can_admit and self.waiting:
                _, head, _, pool_blocked = self._admission_scan()
                if head is not None:
                    break_reason = "admission"
                    break
                # Quota-blocked heads stay blocked within a segment
                # (tenant usage only grows until the re-gate after the
                # next folded retirement); a *pool*-blocked head's
                # verdict can flip at paged block frontiers, which the
                # static-shape rule below guards.
                head_arrived_unfit = pool_blocked
            batch = len(pending)
            # Event horizon: L_i is the 0-based step index at which
            # member i forwards its final pending token and retires at
            # the length/context budget — unless a planned EOS retires
            # it earlier.
            length_caps = [
                min(s.request.max_new_tokens - s.n_generated,
                    max_context - 1 - s.position)
                for s in pending]
            horizon = min(length_caps)
            # Static capacity cap: how many steps are provably free of
            # preemption and eviction.
            if self.paged_kv is not None:
                cap = self.paged_kv.window_advance_cap(
                    [s.slot for s in pending], horizon + 1)
                cap_reason = "block-frontier"
                if head_arrived_unfit:
                    # Paged admission fitness can flip as frontiers
                    # cross (freed growth, shrunk claimable supply), and
                    # the eager loop re-checks it every step — so while
                    # an arrived head waits, segments keep the static
                    # no-crossing shape under which "unfit" provably
                    # holds to the segment end.
                    block = self.paged_kv.block_size
                    for s in pending:
                        assert s.slot is not None
                        if self.paged_kv.append_needs_block(s.slot):
                            cap = 0
                            break
                        room = s.position % block
                        cap = min(cap, block - room if room else block)
            else:
                cap = (self.kv_token_budget - self._cached_total) // batch
                cap_reason = "preemption-risk"
            if self._quota_specs:
                for name, quota in self._quota_specs.items():
                    members = sum(1 for s in pending
                                  if s.request.tenant.name == name)
                    if not members:
                        continue
                    qcap = (quota - self._tenant_cached[name]) // members
                    if qcap < cap:
                        cap, cap_reason = qcap, "quota"
            seg_cap = min(horizon + 1, cap)
            if seg_cap <= 0:
                break_reason = cap_reason
                break
            if not total_applied and seg_cap == 1 and horizon >= 1:
                # A lone static step with no boundary to fold is not
                # worth a window; the eager loop takes it (the PR 5
                # tier's ``limit < 2`` rule).
                break_reason = cap_reason
                break
            # Planned tokens up to each member's own horizon — never
            # past it: a recorded oracle stream ends at the retirement.
            planned: list[np.ndarray] = []
            bounds: list[int] = []
            kinds: list[FinishReason] = []
            for i, s in enumerate(pending):
                n_i = min(length_caps[i], seg_cap)
                tokens = np.asarray(
                    self.backend.planned_tokens(s, n_i) if n_i else (),
                    dtype=np.int64)
                r_i, kind = length_caps[i], FinishReason.LENGTH
                eos = s.request.eos_id
                if eos is not None and len(tokens):
                    hits = np.nonzero(tokens == eos)[0]
                    if len(hits) and int(hits[0]) < r_i:
                        r_i, kind = int(hits[0]), FinishReason.EOS
                planned.append(tokens)
                bounds.append(r_i)
                kinds.append(kind)
            boundary = min(bounds)
            n_seg = min(boundary + 1, seg_cap)
            seg_cycles = np.asarray(
                self.backend.fast_forward_cycles(pending, n_seg),
                dtype=np.float64)
            if self._slow_factor != 1.0:
                seg_cycles = seg_cycles * self._slow_factor
            seg_deltas = seg_cycles / freq
            # Sequential prefix fold seeded with the running clock — the
            # same IEEE adds as stepping ``clock += cycles / freq``,
            # chained across segments.
            clocks = np.empty(n_seg + 1)
            clocks[0] = self.clock_s
            clocks[1:] = seg_deltas
            np.cumsum(clocks, out=clocks)
            applied = n_seg
            if can_admit:
                next_arrival = self._next_admission_arrival()
                if next_arrival is not None:
                    cut = int(np.searchsorted(clocks[:n_seg],
                                              next_arrival, side="left"))
                    if cut < applied:
                        applied, break_reason = cut, "arrival"
            if self._fault_actions:
                fault_boundary = self._fault_boundary()
                if fault_boundary is not None:
                    cut = int(np.searchsorted(clocks[:n_seg],
                                              fault_boundary,
                                              side="left"))
                    if cut < applied:
                        # The chain ends exactly at the boundary (the
                        # first unapplied step's pre-step clock has
                        # reached it) — a planned, note-free chain end.
                        applied = cut
                        break_reason = \
                            self._boundary_reason(fault_boundary)
                        note_break = False
            if applied <= 0:
                # First possible step already crosses the arrival.  A
                # window that never advanced is note-free: no steps
                # were accounted, so no break is either — the single
                # tier's zero-step rule, kept in lockstep.
                if not total_applied:
                    break_reason = None
                break
            at_boundary = applied == n_seg and boundary < seg_cap
            self.clock_s = float(clocks[applied])
            self._decode_steps += applied
            lat_list = seg_cycles[:applied].tolist() if full else None
            for i, s in enumerate(pending):
                if full:
                    s.decode_cycles.extend(lat_list)
                if at_boundary and bounds[i] == boundary \
                        and kinds[i] is FinishReason.LENGTH:
                    # The boundary step forwards the retiree's final
                    # pending token but samples nothing.
                    s.generated.extend(planned[i][:applied - 1].tolist())
                else:
                    s.generated.extend(planned[i][:applied].tolist())
            self.backend.commit_fast_forward(pending, applied)
            self._cached_total += applied * batch
            if self._quota_specs:
                self._grow_tenants(pending, applied)
            retired = 0
            if at_boundary:
                for i, s in enumerate(pending):
                    if bounds[i] == boundary:
                        self._retire(s, kinds[i])
                        retired += 1
            segments.append((applied, batch, retired))
            cycle_parts.append(seg_cycles[:applied])
            delta_parts.append(seg_deltas[:applied])
            clock_parts.append(clocks[1:applied + 1])
            total_applied += applied
            if break_reason is not None:
                break

        if break_reason is not None and note_break:
            rec.note_break(break_reason)
        if not total_applied:
            return 0
        rec.record_window(
            clock0,
            np.concatenate(clock_parts),
            segments[0][1],
            np.concatenate(cycle_parts),
            np.concatenate(delta_parts),
            segments=tuple(segments))
        if self.flight is not None:
            self.flight.span("window", clock0, self.clock_s,
                             batch=segments[0][1], steps=total_applied,
                             segments=len(segments),
                             reason=break_reason or "drained")
        return total_applied

    # -- the scheduling loop -------------------------------------------------

    def step(self) -> StepEvent:
        """One engine iteration: admit -> prefill -> one batched decode."""
        if not self.waiting and not self.running:
            raise SimulationError("nothing to schedule")

        # Idle engine: jump to the next arrival.  Streamed and sorted
        # materialized runs hold each class queue in arrival order with
        # preempted re-entries (already arrived) at its head, so the
        # minimum over the class heads IS the next arrival — no scan.
        # Only a queue built by direct out-of-order submit() calls
        # needs the linear min.
        if not self.running and self.waiting:
            if self._stream is not None or self._stream_head is not None \
                    or self._arrival_sorted:
                next_arrival = self.waiting.min_head_arrival()
            else:
                next_arrival = min(s.request.arrival_s
                                   for s in self.waiting)
            if next_arrival > self.clock_s:
                if self._fault_actions:
                    # Never jump past a fault: land on its boundary,
                    # service it (run-loop top), then resume.  The
                    # zero-work step this produces is identical in all
                    # tiers, since windowed paths fall through to
                    # step() when nothing is running.
                    boundary = self._fault_boundary()
                    if boundary is not None \
                            and self.clock_s < boundary < next_arrival:
                        next_arrival = boundary
                self.clock_s = next_arrival
        step_start_s = self.clock_s

        admitted = self._admit_ready()

        # KV pressure: the coming step appends one token per forwarding
        # sequence; evict until the growth fits every tenant quota and
        # the pool budget.  Quota pressure is resolved first and within
        # the offending tenant only — one tenant's long decodes evict
        # its own youngest sequence, never another tenant's.
        preempted = 0
        retired = 0
        pending = [s for s in self.running if s.has_pending_forward]
        while pending:
            over = self._quota_overflow(pending)
            if over is not None:
                members, growing = over
                verdict = self._preempt_one(members)
                if verdict == "preempted":
                    preempted += 1
                elif verdict == "retired":
                    retired += 1
                else:
                    self._retire_overgrown(growing[0])
                    retired += 1
            elif self._growth_overflows(pending):
                verdict = self._preempt_one()
                if verdict == "preempted":
                    preempted += 1
                elif verdict == "retired":
                    retired += 1
                else:
                    # A lone sequence has outgrown the budget: it cannot
                    # be preempted in its own favour, so it retires
                    # where it is.
                    self._retire_overgrown(pending[0])
                    retired += 1
            else:
                break
            pending = [s for s in self.running if s.has_pending_forward]

        cycles = 0.0
        if pending:
            cycles = self.backend.decode_batch(pending)
            if self._slow_factor != 1.0:
                cycles = cycles * self._slow_factor
            self._cached_total += len(pending)
            if self._quota_specs:
                self._grow_tenants(pending, 1)
            self._advance(cycles)
            self._decode_steps += 1
            full = self._recorder.level == "full"
            for state in pending:
                if full:
                    state.decode_cycles.append(cycles)
                if state.n_generated < state.request.max_new_tokens \
                        and state.position \
                        < self.backend.model_config.max_context:
                    before = self._n_finished
                    self._note_sampled(state, self.backend.sample(state))
                    retired += self._n_finished - before
                else:
                    # Budget (or context) reached and the final token's
                    # forward was just charged: retire at the length limit.
                    self._retire(state, FinishReason.LENGTH)
                    retired += 1

        event = StepEvent(clock_s=self.clock_s, batch=len(pending),
                          cycles=cycles, admitted=admitted,
                          preempted=preempted, retired=retired)
        self._recorder.record_event(event)
        if self.flight is not None:
            self.flight.span("step", step_start_s, self.clock_s,
                             batch=len(pending), admitted=admitted,
                             preempted=preempted, retired=retired)
        return event

    def _refill(self) -> None:
        """Pull the stream into the waiting queue: every request that
        has already arrived, plus one look-ahead so the admission gate,
        the window arrival cut, and the idle jump always see the true
        next arrival.  Keeps the queue O(in-flight), not O(trace)."""
        while self._stream is not None:
            if self._stream_head is None:
                try:
                    head = next(self._stream)
                except StopIteration:
                    self._stream = None
                    return
                if head.arrival_s < self._last_stream_arrival:
                    raise SimulationError(
                        f"streamed traces must be sorted by arrival: "
                        f"request {head.request_id} arrives at "
                        f"{head.arrival_s:.6f}s after one at "
                        f"{self._last_stream_arrival:.6f}s")
                self._last_stream_arrival = head.arrival_s
                self._stream_head = head
            head = self._stream_head
            if self._down_until is not None:
                # Replica outage: arrivals during the downtime find
                # nobody listening.  Kill them here so the stream keeps
                # draining; the first survivor clears the outage.
                if head.arrival_s < self._down_until:
                    self._stream_head = None
                    self._log_kill(
                        head, max(head.arrival_s, self._down_start),
                        "arrival", 0)
                    continue
                self._down_until = None
            if self._drain_until is not None \
                    and head.arrival_s < self._drain_until:
                # Draining: in-window arrivals hand over immediately
                # instead of queueing behind a closed admission gate.
                # The flag itself clears at the deadline, not here.
                self._stream_head = None
                self._log_migration(MigratedRequest(
                    request=head,
                    migrate_s=max(head.arrival_s, self._drain_start),
                    phase="arrival"))
                continue
            if self.waiting and head.arrival_s > self.clock_s:
                return
            self._stream_head = None
            try:
                self.submit(head)
            except (CapacityError, SimulationError):
                # Admission control: an unservable request becomes a
                # REJECTED result instead of an exception escaping
                # mid-run with the engine half-drained.
                self._reject(head)

    def run(self, requests: Iterable[Request] | None = None,
            max_steps: int = 1_000_000,
            telemetry: str = "full") -> ServeReport | StreamedServeReport:
        """Drive the engine until every submitted request retires.

        A materialized ``requests`` collection (list, tuple, deque, any
        non-iterator iterable) is sorted and submitted up front, as
        before.  An *iterator* (e.g. an :func:`iter_synthetic_trace`
        generator) is consumed *incrementally* in arrival order — a
        million-request trace never exists in memory at once — and must
        already be arrival-sorted.

        ``telemetry`` picks the recording level: ``"full"`` materializes
        every per-step observable (the reference), ``"windows"`` keeps
        columnar run-length records that expand lazily to the identical
        values, ``"summary"`` keeps only aggregates and exact
        percentiles, ``"sketch"`` replaces the exact latency sample
        with a bounded-memory t-digest (percentiles within its
        documented rank-error bound; every counter stays exact).
        """
        if self.running:
            raise SimulationError("engine is already mid-run")
        self.clock_s = 0.0
        self.finished = []
        self._preemptions = 0
        self._n_finished = 0
        self._decode_steps = 0
        self._recorder = TelemetryRecorder(
            telemetry, self.backend.freq_hz,
            token_replay=getattr(self.backend, "replay_tokens", None))
        self._stream = None
        self._stream_head = None
        self._last_stream_arrival = 0.0
        # A queue populated here is arrival-sorted; one pre-filled by
        # direct submit() calls carries no such guarantee.
        self._arrival_sorted = not self.waiting
        self._tenant_cached = {name: 0 for name in self._quota_specs}
        self.killed = []
        self.drained = []
        self._fault_actions = tuple(self.fault_plan.actions) \
            if self.fault_plan is not None else ()
        self._fault_next = 0
        self._slow_factor = 1.0
        self._slow_until = None
        self._down_start = 0.0
        self._down_until = None
        self._drain_start = 0.0
        self._drain_until = None
        self._n_resumed = 0
        self._resume_recompute_tokens = 0
        self._fault_counts = {"crash": 0, "stall": 0, "slow": 0,
                              "drain": 0}
        self._downtime_s = 0.0
        self._degraded_tokens = 0
        spans = sorted(self.degraded_spans)
        self._degraded_starts = [s for s, _ in spans]
        self._degraded_ends = [e for _, e in spans]
        if requests is not None:
            if isinstance(requests, Iterator):
                self._stream = requests
            else:
                for request in sorted(requests, key=lambda r: r.arrival_s):
                    try:
                        self.submit(request)
                    except (CapacityError, SimulationError):
                        # Same admission-control verdict as the
                        # streamed path: reject, don't abort the run.
                        self._reject(request)
        self._refill()
        multi = self.fast_forward == "multi"
        steps = 0
        while self.waiting or self.running or self._stream is not None:
            if self._fault_actions:
                self._service_faults()
                # A crash may have emptied the engine (and _refill may
                # need to skip killed stream arrivals before the next
                # survivor shows up).
                self._refill()
                if not (self.waiting or self.running
                        or self._stream is not None):
                    break
            if multi:
                applied = self._fast_forward_multi()
            elif self.fast_forward:
                applied = self._fast_forward_single()
            else:
                applied = 0
            if not applied:
                self.step()
                applied = 1
            steps += applied
            if steps > max_steps:
                raise SimulationError(
                    f"engine did not drain within {max_steps} steps")
            self._refill()
        return self._report()

    def _report(self) -> ServeReport | StreamedServeReport:
        if self._recorder.level != "full":
            return StreamedServeReport(self._recorder,
                                       total_time_s=self.clock_s,
                                       preemptions=self._preemptions)
        freq = self.backend.freq_hz
        results = []
        for state in sorted(self.finished, key=lambda s: s.request_id):
            assert state.finish_reason is not None
            decode_step_s = tuple(
                (np.asarray(state.decode_cycles) / freq).tolist()) \
                if state.decode_cycles else ()
            results.append(RequestResult(
                request_id=state.request_id,
                tokens=tuple(state.generated),
                prompt_len=state.prompt_len,
                ttft_s=None if state.first_token_s is None
                else state.ttft_s,
                e2e_s=state.e2e_s,
                finish_reason=state.finish_reason,
                preemptions=state.preemptions,
                decode_step_s=decode_step_s,
                tenant_class=state.request.tenant.priority,
            ))
        return ServeReport(
            results=results,
            total_time_s=self.clock_s,
            n_steps=self._recorder.n_steps,
            preemptions=self._preemptions,
            max_batch_observed=self._recorder.max_batch,
            step_batches=[e.batch for e in self.events if e.batch],
            window_stats=self._recorder.window_stats(),
            tenant_stats=self._recorder.tenant_summaries(self.clock_s),
        )
