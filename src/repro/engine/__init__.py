"""repro.engine — the unified execution-engine layer.

One request/scheduling model over the repo's three execution paths:

* the functional pipeline (exact tokens + exact timing, small models),
* the cycle model (exact timing, any model size),
* the closed-form analytical roofline (instant estimates).

The entry point is :class:`ContinuousBatchScheduler`: submit
:class:`Request` objects (or a synthetic trace), call :meth:`run`, and
read the :class:`ServeReport` — aggregate tokens/s, per-request TTFT,
and tail latency under weight-stream amortization.

Quickstart::

    from repro import LLAMA2_7B, W4A16_KV8
    from repro.engine import (CycleModelBackend, ContinuousBatchScheduler,
                              synthetic_trace)
    backend = CycleModelBackend(LLAMA2_7B, W4A16_KV8)
    engine = ContinuousBatchScheduler(backend, max_batch=8)
    report = engine.run(synthetic_trace(LLAMA2_7B, n_requests=16))
    print(report.aggregate_tokens_per_s, report.latency_percentile_s(95))

At scale, stream instead of materializing — a generator trace is
submitted incrementally and ``telemetry=`` picks how much detail the
report keeps (``"windows"`` and ``"summary"`` are exact but
run-length-encoded; see :mod:`repro.engine.telemetry`)::

    report = engine.run(
        iter_synthetic_trace(LLAMA2_7B, n_requests=1_000_000),
        max_steps=100_000_000, telemetry="summary")
"""

from .backends import (
    AnalyticalBackend,
    CycleModelBackend,
    EngineBackend,
    FunctionalBackend,
    build_backend,
    derive_kv_token_budget,
    kv_discipline_kwargs,
)
from .request import (FinishReason, Request, RequestState, RequestStatus,
                      ResumeSpec)
from .scheduler import (ContinuousBatchScheduler, KilledRequest,
                        MigratedRequest)
from .telemetry import (
    TELEMETRY_LEVELS,
    WINDOW_BREAK_REASONS,
    RequestResult,
    ServeReport,
    StepEvent,
    StepWindow,
    StreamedServeReport,
    TenantStats,
    merge_tenant_accumulators,
    merge_window_stats,
    summarize_tenants,
    tenant_stats_from_results,
)
from .tenancy import DEFAULT_TENANT, PRIORITY_CLASSES, TenantSpec
from .trace import iter_synthetic_trace, synthetic_trace

__all__ = [
    "AnalyticalBackend",
    "ContinuousBatchScheduler",
    "CycleModelBackend",
    "DEFAULT_TENANT",
    "EngineBackend",
    "FinishReason",
    "FunctionalBackend",
    "KilledRequest",
    "MigratedRequest",
    "PRIORITY_CLASSES",
    "Request",
    "RequestResult",
    "RequestState",
    "RequestStatus",
    "ResumeSpec",
    "ServeReport",
    "StepEvent",
    "StepWindow",
    "StreamedServeReport",
    "TELEMETRY_LEVELS",
    "TenantSpec",
    "TenantStats",
    "WINDOW_BREAK_REASONS",
    "build_backend",
    "derive_kv_token_budget",
    "iter_synthetic_trace",
    "kv_discipline_kwargs",
    "merge_tenant_accumulators",
    "merge_window_stats",
    "summarize_tenants",
    "synthetic_trace",
    "tenant_stats_from_results",
]
