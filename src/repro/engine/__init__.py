"""repro.engine — the unified execution-engine layer.

One request/scheduling model over the repo's three execution paths:

* the functional pipeline (exact tokens + exact timing, small models),
* the cycle model (exact timing, any model size),
* the closed-form analytical roofline (instant estimates).

The entry point is :class:`ContinuousBatchScheduler`: submit
:class:`Request` objects (or a synthetic trace), call :meth:`run`, and
read the :class:`ServeReport` — aggregate tokens/s, per-request TTFT,
and tail latency under weight-stream amortization.

Quickstart::

    from repro import LLAMA2_7B, W4A16_KV8
    from repro.engine import (CycleModelBackend, ContinuousBatchScheduler,
                              synthetic_trace)
    backend = CycleModelBackend(LLAMA2_7B, W4A16_KV8)
    engine = ContinuousBatchScheduler(backend, max_batch=8)
    report = engine.run(synthetic_trace(LLAMA2_7B, n_requests=16))
    print(report.aggregate_tokens_per_s, report.latency_percentile_s(95))
"""

from .backends import (
    AnalyticalBackend,
    CycleModelBackend,
    EngineBackend,
    FunctionalBackend,
    build_backend,
    derive_kv_token_budget,
    kv_discipline_kwargs,
)
from .request import FinishReason, Request, RequestState, RequestStatus
from .scheduler import (
    ContinuousBatchScheduler,
    RequestResult,
    ServeReport,
    StepEvent,
)
from .trace import synthetic_trace

__all__ = [
    "AnalyticalBackend",
    "ContinuousBatchScheduler",
    "CycleModelBackend",
    "EngineBackend",
    "FinishReason",
    "FunctionalBackend",
    "Request",
    "RequestResult",
    "RequestState",
    "RequestStatus",
    "ServeReport",
    "StepEvent",
    "build_backend",
    "derive_kv_token_budget",
    "kv_discipline_kwargs",
    "synthetic_trace",
]
