"""Request model of the execution engine.

A :class:`Request` is what a client submits: a prompt, a generation
budget, an arrival time, and (for functional backends) a sampler.  A
:class:`RequestState` is the engine's mutable view of one request as it
moves through admission, prefill, batched decode, possible preemption,
and retirement.

The decode state machine mirrors the bare-metal loop exactly so that a
single-request engine reproduces ``Accelerator.decode`` step for step:

* prefill feeds the prompt and yields logits; the first new token is
  sampled the moment prefill ends (TTFT = prefill latency),
* every sampled non-EOS token is then *forwarded* through the model in a
  later batched step (charged one step of decode time), producing the
  logits for the next sample,
* a sampled EOS retires the request immediately — the EOS token itself
  is never forwarded, so no decode step is charged for it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..model.sampler import Sampler
from .tenancy import DEFAULT_TENANT, TenantSpec


class RequestStatus(enum.Enum):
    """Lifecycle of a request inside the engine."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"


class FinishReason(enum.Enum):
    """Why a request retired."""

    EOS = "eos"
    LENGTH = "length"
    #: refused by admission control — oversized for the budget or its
    #: tenant's quota, or best-effort work dropped under pressure.  A
    #: rejected request still produces a :class:`RequestResult`, so a
    #: streamed run drains and reports instead of aborting mid-trace.
    REJECTED = "rejected"
    #: lost to replica faults after exhausting its retry budget — the
    #: router surfaces the loss as a result (zero tokens, no TTFT)
    #: instead of silently dropping the request.  Appended last so the
    #: columnar small-int reason codes of earlier members stay stable.
    FAILED = "failed"


@dataclass(frozen=True)
class ResumeSpec:
    """Handoff state a migrated request carries to its target replica.

    ``kv_position`` leading sequence tokens arrive with the checkpoint
    (their KV was computed on the source and shipped over the
    interconnect), so the target's first prefill skips them — zero
    recompute.  ``n_generated`` tokens of the generated suffix are
    replayed from the deterministic token stream, and
    ``first_token_s`` carries the instant the source already streamed
    the first token, so TTFT stays the client-visible one.
    """

    kv_position: int
    n_generated: int = 0
    first_token_s: float | None = None

    def __post_init__(self) -> None:
        if self.kv_position < 0 or self.n_generated < 0:
            raise SimulationError(
                "resume spec needs kv_position >= 0 and n_generated >= 0")


@dataclass(frozen=True)
class Request:
    """One client generation request."""

    request_id: int
    prompt: tuple[int, ...]
    max_new_tokens: int
    arrival_s: float = 0.0
    sampler: Sampler | None = None
    eos_id: int | None = None
    tenant: TenantSpec = DEFAULT_TENANT
    #: latency-ledger origin: the client-visible arrival TTFT and e2e
    #: are measured from.  A retry or migration re-dispatch schedules
    #: at its new ``arrival_s`` but keeps the original arrival here —
    #: the client has been waiting since then.  None = ``arrival_s``.
    accounted_arrival_s: float | None = None
    #: KV-checkpoint handoff state (migration re-dispatch); None for a
    #: fresh request.
    resume: ResumeSpec | None = None

    def __post_init__(self) -> None:
        if not self.prompt:
            raise SimulationError(
                f"request {self.request_id}: prompt must not be empty")
        if self.max_new_tokens <= 0:
            raise SimulationError(
                f"request {self.request_id}: max_new_tokens must be positive")
        if self.arrival_s < 0:
            raise SimulationError(
                f"request {self.request_id}: arrival time must be >= 0")
        if not isinstance(self.tenant, TenantSpec):
            raise SimulationError(
                f"request {self.request_id}: tenant must be a TenantSpec")
        object.__setattr__(self, "prompt", tuple(self.prompt))

    @property
    def ledger_arrival_s(self) -> float:
        """The arrival latency metrics run from (see
        ``accounted_arrival_s``)."""
        return self.arrival_s if self.accounted_arrival_s is None \
            else self.accounted_arrival_s


@dataclass
class RequestState:
    """Mutable engine-side state of one request."""

    request: Request
    status: RequestStatus = RequestStatus.QUEUED
    generated: list[int] = field(default_factory=list)
    #: tokens fed through the model so far (prompt + forwarded generated);
    #: equals the KV-cache occupancy of this sequence.
    position: int = 0
    slot: int | None = None
    logits: object | None = None
    prefill_cycles: float = 0.0
    decode_cycles: list[float] = field(default_factory=list)
    first_token_s: float | None = None
    finish_s: float | None = None
    finish_reason: FinishReason | None = None
    preemptions: int = 0
    #: leading sequence tokens the next prefill may skip because their
    #: KV arrived with a migration checkpoint; cleared after that
    #: prefill (an eviction on this replica loses the transferred KV,
    #: so any later re-prefill recomputes in full).
    resume_skip: int = 0
    #: half-open ranges of global decode-step indices this request was
    #: batched into — one per admission (preemption closes a span).
    #: ``decode_step_s`` is exactly the scheduler's per-step latency
    #: stream gathered over these spans, which is what lets windowed
    #: telemetry drop the per-request latency lists.
    spans: list[tuple[int, int]] = field(default_factory=list)
    _span_start: int = field(default=0, repr=False)

    # -- identity ---------------------------------------------------------

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def prompt_len(self) -> int:
        return len(self.request.prompt)

    @property
    def n_generated(self) -> int:
        return len(self.generated)

    # -- decode state machine ----------------------------------------------

    @property
    def context(self) -> int:
        """Cached tokens this sequence's next forward attends over."""
        return self.position

    @property
    def pending_token(self) -> int:
        """The sampled-but-not-yet-forwarded token (next forward input)."""
        if not self.has_pending_forward:
            raise SimulationError(
                f"request {self.request_id}: no pending forward")
        return self.generated[self.position - self.prompt_len]

    @property
    def has_pending_forward(self) -> bool:
        """A sampled token still owes its decode step."""
        # Hot path (checked per running sequence per scheduler step):
        # reads lengths directly instead of through sibling properties.
        return (self.status == RequestStatus.RUNNING
                and self.position < len(self.request.prompt)
                + len(self.generated))

    @property
    def done(self) -> bool:
        return self.status == RequestStatus.FINISHED

    def sequence_tokens(self) -> list[int]:
        """Prompt plus everything generated so far (recompute input)."""
        return list(self.request.prompt) + self.generated

    # -- timing -----------------------------------------------------------

    @property
    def ttft_s(self) -> float:
        """Client-visible arrival to first sampled token (queueing +
        prefill; a re-dispatch measures from the original arrival)."""
        if self.first_token_s is None:
            raise SimulationError(
                f"request {self.request_id}: no token produced yet")
        return self.first_token_s - self.request.ledger_arrival_s

    @property
    def e2e_s(self) -> float:
        """Client-visible arrival to retirement."""
        if self.finish_s is None:
            raise SimulationError(
                f"request {self.request_id}: not finished")
        return self.finish_s - self.request.ledger_arrival_s
