"""Multi-tenant serving: priority classes, KV quotas, TTFT SLOs.

A :class:`TenantSpec` attaches a *tenant identity* to every
:class:`repro.engine.request.Request`:

* a **priority class** — ``interactive`` > ``batch`` > ``best_effort``.
  Admission is priority-ordered (the scheduler keeps one arrival-sorted
  waiting deque per class) and preemption is priority-aware: capacity
  pressure always evicts from the *lowest* class present, and an
  arrived higher-class request may evict lower-class work to get in.
  Best-effort work that keeps getting evicted in favour of higher
  classes is eventually dropped (``FinishReason.REJECTED``) so it
  cannot thrash the pool while interactive traffic waits.
* an optional **KV quota** — a per-tenant cap on cached KV tokens
  (``kv_quota_tokens``, both disciplines) or on KV blocks
  (``kv_quota_blocks``, paged only; converted to tokens through the
  pool's block size).  A tenant at quota queues even when the pool has
  room, and decode growth past the quota preempts that tenant's own
  youngest sequence — one tenant's long decodes cannot crowd out the
  rest of the pool.
* an optional **TTFT SLO target** (``ttft_slo_s``) — carried through
  to the per-class telemetry so reports and benchmarks can score
  goodput against it; the scheduler itself does not act on it.

``DEFAULT_TENANT`` (batch class, no quota) is attached to every request
that names no tenant; a default-only run is bit-identical to the
pre-tenancy scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

#: Priority classes, highest first.  A class's *rank* is its index —
#: lower rank wins admission, higher rank is evicted first.
PRIORITY_CLASSES = ("interactive", "batch", "best_effort")

_RANKS = {name: rank for rank, name in enumerate(PRIORITY_CLASSES)}


@dataclass(frozen=True)
class TenantSpec:
    """Identity and service terms of one tenant."""

    name: str = "default"
    priority: str = "batch"
    kv_quota_tokens: int | None = None
    kv_quota_blocks: int | None = None
    ttft_slo_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("tenant name must not be empty")
        if self.priority not in PRIORITY_CLASSES:
            raise SimulationError(
                f"tenant {self.name!r}: unknown priority class "
                f"{self.priority!r}; choose from {PRIORITY_CLASSES}")
        if self.kv_quota_tokens is not None \
                and self.kv_quota_blocks is not None:
            raise SimulationError(
                f"tenant {self.name!r}: give the KV quota in tokens or "
                "blocks, not both")
        for label, quota in (("kv_quota_tokens", self.kv_quota_tokens),
                             ("kv_quota_blocks", self.kv_quota_blocks)):
            if quota is not None and quota <= 0:
                raise SimulationError(
                    f"tenant {self.name!r}: {label} must be positive: "
                    f"{quota}")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise SimulationError(
                f"tenant {self.name!r}: ttft_slo_s must be positive: "
                f"{self.ttft_slo_s}")

    @property
    def rank(self) -> int:
        """Admission/eviction rank (0 = highest priority)."""
        return _RANKS[self.priority]

    @property
    def has_quota(self) -> bool:
        return self.kv_quota_tokens is not None \
            or self.kv_quota_blocks is not None


#: The tenant of every request that names none — batch class, no quota.
DEFAULT_TENANT = TenantSpec()
