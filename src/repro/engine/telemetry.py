"""Serving telemetry: per-step records, run-length windows, reports.

The scheduler can record what happened at four levels of detail
(``telemetry=`` on :meth:`ContinuousBatchScheduler.run`):

* ``"full"`` — every decode step materializes a :class:`StepEvent`,
  every request keeps its per-token latencies and tokens, and the run
  returns the eager :class:`ServeReport`.  This is the reference
  representation the differential harness compares against.
* ``"windows"`` — a fast-forwarded static window is stored as ONE
  :class:`StepWindow` (count + per-step cycle array shared by every
  batch member) and per-request detail collapses to columnar scalars
  plus *span* indices into the global decode-step stream.  The step
  stream itself lives in :class:`repro.obs.ColumnarRecords` — typed
  columns, a few dozen bytes per record instead of a Python object —
  so million-request runs fit in bounded memory.  The existing APIs —
  ``events``, ``step_batches``, ``results`` with ``decode_step_s`` and
  ``tokens`` — are served by lazy exact expansion, so every value is
  bit-identical to ``"full"``.
* ``"summary"`` — only aggregate counters and the run-length latency
  sample survive; percentiles stay exact, per-request results are
  gone.
* ``"sketch"`` — like ``"summary"``, but the O(decode-steps)
  run-length latency sample is replaced by a :class:`repro.stats.
  TDigest` percentile sketch: O(compression) memory, latency
  percentiles approximate within the digest's documented rank-error
  bound.  Counters, TTFT aggregates, window stats, and tenant stats
  stay exact.  The cheapest level, for million-request sweeps.

Percentiles never need the expansion: the multiset of all requests'
per-token latencies is exactly "each decode step's latency, once per
batch member", so a run-length sample over the step stream
(:func:`repro.stats.percentile_of_runs`) answers identically.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..obs.columns import ColumnarRecords, StepEvent, StepWindow
from .request import FinishReason, RequestState
from .tenancy import PRIORITY_CLASSES

TELEMETRY_LEVELS = ("full", "windows", "summary", "sketch")

#: Levels that keep the step-record stream (events + windows).
_RECORDING_LEVELS = ("full", "windows")

#: Why a fast-forward window ended (or could not start).  Fixed key set
#: so histograms from different runs/replicas merge by plain addition.
#: ``"quota"`` marks windows capped where a tenant's KV quota could
#: force a preemption decision the window must not fold over;
#: ``"fault"`` marks windows cut at an injected fault boundary (crash /
#: hang / slowdown transition) so fast-forward never folds over a
#: scheduler state change a fault would have caused mid-window;
#: ``"drain"`` is the same cut at a drain transition (admission stops,
#: or the drain deadline checkpoints the survivors for migration).
WINDOW_BREAK_REASONS = ("admission", "arrival", "retirement-unpredicted",
                        "preemption-risk", "block-frontier", "eos",
                        "quota", "fault", "drain")

#: FinishReason <-> small-int codes for the columnar result store.
_REASON_LIST = list(FinishReason)
_REASON_CODES = {reason: i for i, reason in enumerate(_REASON_LIST)}


@dataclass(frozen=True)
class RequestResult:
    """Summary of one retired request.

    ``ttft_s`` is None for a request that never produced a first token
    (rejected at admission, or retired with zero reported tokens) —
    such requests are excluded from every TTFT aggregate.
    """

    request_id: int
    tokens: tuple[int, ...]
    prompt_len: int
    ttft_s: float | None
    e2e_s: float
    finish_reason: FinishReason
    preemptions: int
    decode_step_s: tuple[float, ...]
    tenant_class: str = "batch"


@dataclass
class ServeReport:
    """Aggregate serving metrics of one engine run."""

    results: list[RequestResult] = field(default_factory=list)
    total_time_s: float = 0.0
    n_steps: int = 0
    preemptions: int = 0
    max_batch_observed: int = 0
    step_batches: list[int] = field(default_factory=list)
    #: fast-forward window accounting (window/segment counts plus a
    #: break-reason histogram) — empty when fast-forward never ran.
    window_stats: dict = field(default_factory=dict)
    #: per-priority-class serving stats (see :class:`TenantStats`) —
    #: one summary dict per class that retired at least one request.
    tenant_stats: dict = field(default_factory=dict)
    #: lazy percentile caches — reports are built once and then queried;
    #: mutate ``results`` and these go stale.
    _decode_lat_sorted: list[float] | None = field(
        default=None, init=False, repr=False, compare=False)
    _ttft_sorted: list[float] | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def n_requests(self) -> int:
        return len(self.results)

    @property
    def total_new_tokens(self) -> int:
        return sum(len(r.tokens) for r in self.results)

    @property
    def aggregate_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            raise SimulationError("report covers no simulated time")
        return self.total_new_tokens / self.total_time_s

    @property
    def mean_ttft_s(self) -> float:
        ttfts = [r.ttft_s for r in self.results if r.ttft_s is not None]
        if not ttfts:
            raise SimulationError("no retired requests")
        return sum(ttfts) / len(ttfts)

    @property
    def mean_batch(self) -> float:
        if not self.step_batches:
            raise SimulationError("no decode steps recorded")
        return sum(self.step_batches) / len(self.step_batches)

    def _sorted_decode_latencies(self) -> list[float]:
        """Decode latencies flattened and sorted once, then reused by
        every percentile query (serve-sim asks for three per report)."""
        if self._decode_lat_sorted is None:
            self._decode_lat_sorted = sorted(
                s for r in self.results for s in r.decode_step_s)
        return self._decode_lat_sorted

    def _sorted_ttfts(self) -> list[float]:
        if self._ttft_sorted is None:
            self._ttft_sorted = sorted(
                r.ttft_s for r in self.results if r.ttft_s is not None)
        return self._ttft_sorted

    def latency_percentile_s(self, percentile: float) -> float:
        """Per-token decode latency percentile across all requests."""
        from ..stats import percentile_of_sorted

        lats = self._sorted_decode_latencies()
        if not lats:
            raise SimulationError("no decode steps recorded")
        return percentile_of_sorted(lats, percentile)

    def ttft_percentile_s(self, percentile: float) -> float:
        """Time-to-first-token percentile across retired requests."""
        from ..stats import percentile_of_sorted

        ttfts = self._sorted_ttfts()
        if not ttfts:
            raise SimulationError("no retired requests")
        return percentile_of_sorted(ttfts, percentile)


def merge_window_stats(stats: "list[dict]") -> dict:
    """Sum fast-forward window stats across replica reports.

    Every counter is additive and the break histogram has a fixed key
    set, so a cluster merge is plain addition; empty dicts (a replica
    that never fast-forwarded) contribute nothing.
    """
    merged = {
        "n_windows": 0,
        "n_segments": 0,
        "folded_retirements": 0,
        "breaks": {reason: 0 for reason in WINDOW_BREAK_REASONS},
    }
    for s in stats:
        if not s:
            continue
        merged["n_windows"] += s.get("n_windows", 0)
        merged["n_segments"] += s.get("n_segments", 0)
        merged["folded_retirements"] += s.get("folded_retirements", 0)
        for reason, count in s.get("breaks", {}).items():
            merged["breaks"][reason] = \
                merged["breaks"].get(reason, 0) + count
    return merged


class TenantStats:
    """Per-priority-class serving accumulator.

    Counts are plain integers; the TTFT and end-to-end latency samples
    are per-request columns (one value each, so run-length encoding
    buys nothing here).  Rejected requests count toward ``n_rejected``
    only, and requests lost to faults past their retry budget toward
    ``n_failed`` only — their tokens and timings never enter the
    goodput or the latency samples (a FAILED request's wasted service
    shows up in throughput, not as a fake latency sample).  Requests
    that finished without producing a first token contribute e2e but no
    TTFT.

    Accumulators from different runs or replicas merge by column
    concatenation (:func:`merge_tenant_accumulators`); every summary
    statistic is computed over the *sorted* sample, so the summary is a
    pure function of the multiset and identical across scheduler tiers
    and merge orders.
    """

    __slots__ = ("n_requests", "n_rejected", "n_failed", "new_tokens",
                 "ttfts", "e2es")

    def __init__(self) -> None:
        self.n_requests = 0
        self.n_rejected = 0
        self.n_failed = 0
        self.new_tokens = 0
        self.ttfts = array("d")
        self.e2es = array("d")

    def fold(self, state: RequestState) -> None:
        self.n_requests += 1
        if state.finish_reason is FinishReason.REJECTED:
            self.n_rejected += 1
            return
        if state.finish_reason is FinishReason.FAILED:
            self.n_failed += 1
            return
        self.new_tokens += len(state.generated)
        if state.first_token_s is not None:
            self.ttfts.append(state.ttft_s)
        self.e2es.append(state.e2e_s)

    def absorb(self, other: "TenantStats") -> None:
        self.n_requests += other.n_requests
        self.n_rejected += other.n_rejected
        self.n_failed += other.n_failed
        self.new_tokens += other.new_tokens
        self.ttfts.extend(other.ttfts)
        self.e2es.extend(other.e2es)

    def summary(self, total_time_s: float) -> dict:
        from ..stats import percentile_of_sorted

        ttfts = sorted(self.ttfts)
        e2es = sorted(self.e2es)
        out = {
            "n_requests": self.n_requests,
            "n_rejected": self.n_rejected,
            "n_failed": self.n_failed,
            "new_tokens": self.new_tokens,
            "goodput_tokens_per_s": self.new_tokens / total_time_s
            if total_time_s > 0 else 0.0,
            "mean_ttft_s": sum(ttfts) / len(ttfts) if ttfts else None,
        }
        for p in (50, 99):
            out[f"p{p}_ttft_s"] = percentile_of_sorted(ttfts, p) \
                if ttfts else None
            out[f"p{p}_e2e_s"] = percentile_of_sorted(e2es, p) \
                if e2es else None
        return out


def summarize_tenants(accs: "dict[str, TenantStats]",
                      total_time_s: float) -> dict:
    """Per-class summary dicts, in priority order."""
    return {name: accs[name].summary(total_time_s)
            for name in PRIORITY_CLASSES if name in accs}


def merge_tenant_accumulators(
        accs: "list[dict[str, TenantStats]]") -> "dict[str, TenantStats]":
    """Additive cluster merge of per-replica tenant accumulators."""
    merged: dict[str, TenantStats] = {}
    for one in accs:
        for name, acc in one.items():
            merged.setdefault(name, TenantStats()).absorb(acc)
    return merged


def tenant_stats_from_results(results: "list[RequestResult]",
                              total_time_s: float) -> dict:
    """Per-class summaries recomputed from eager per-request results —
    the cluster merge path at ``telemetry="full"``, where the merged
    result list already carries every per-request fact."""
    accs: dict[str, TenantStats] = {}
    for r in results:
        acc = accs.setdefault(r.tenant_class, TenantStats())
        acc.n_requests += 1
        if r.finish_reason is FinishReason.REJECTED:
            acc.n_rejected += 1
            continue
        if r.finish_reason is FinishReason.FAILED:
            acc.n_failed += 1
            continue
        acc.new_tokens += len(r.tokens)
        if r.ttft_s is not None:
            acc.ttfts.append(r.ttft_s)
        acc.e2es.append(r.e2e_s)
    return summarize_tenants(accs, total_time_s)


class RunLengthSample:
    """Run-length-encoded latency sample: values with multiplicities.

    One decode step contributes its latency once per batch member, so
    a window of K steps at batch B adds K runs of count B — O(K)
    storage for K x B samples.  Queries sort the runs once (stable)
    and select by cumulative count, matching
    :func:`repro.stats.percentile_of_sorted` over the expanded sample
    exactly.
    """

    def __init__(self) -> None:
        # One flat (value, count) pair per decode step, packed into
        # growable typed arrays — 16 bytes per run, no per-window
        # object overhead, so a million-request sweep stays lean.
        self._vals = array("d")
        self._cnts = array("q")
        self._sorted: tuple[np.ndarray, np.ndarray] | None = None

    def add_single(self, value: float, count: int) -> None:
        self._vals.append(value)
        self._cnts.append(count)
        self._sorted = None

    def add_run(self, values: np.ndarray, count: int) -> None:
        """``count`` occurrences of every entry of ``values``."""
        if len(values):
            self._vals.frombytes(np.ascontiguousarray(values).tobytes())
            self._cnts.frombytes(
                np.full(len(values), count, dtype=np.int64).tobytes())
            self._sorted = None

    @property
    def n_samples(self) -> int:
        return int(sum(self._cnts))

    def sorted_runs(self) -> tuple[np.ndarray, np.ndarray]:
        """``(values, counts)`` with values ascending."""
        if self._sorted is None:
            values = np.frombuffer(self._vals, dtype=np.float64) \
                if len(self._vals) else np.empty(0, dtype=np.float64)
            counts = np.frombuffer(self._cnts, dtype=np.int64) \
                if len(self._cnts) else np.empty(0, dtype=np.int64)
            order = np.argsort(values, kind="stable")
            self._sorted = (values[order], counts[order])
        return self._sorted

    def percentile(self, percentile: float) -> float:
        from ..stats import percentile_of_runs

        values, counts = self.sorted_runs()
        if not len(values):
            raise SimulationError("no decode steps recorded")
        return percentile_of_runs(values, counts, percentile)


class TelemetryRecorder:
    """Accumulates one run's step records and retired-request columns.

    The scheduler drives it level-agnostically: every eager step calls
    :meth:`record_event`, every fast-forwarded window calls
    :meth:`record_window`, every retirement at a streaming level calls
    :meth:`fold_result` (at ``"full"`` the scheduler keeps the state
    object instead).
    """

    def __init__(self, level: str, freq_hz: float,
                 token_replay=None) -> None:
        if level not in TELEMETRY_LEVELS:
            raise SimulationError(
                f"unknown telemetry level {level!r}; choose from "
                f"{TELEMETRY_LEVELS}")
        self.level = level
        self.freq_hz = freq_hz
        #: ``replay(request_id, n, eos_id) -> tuple`` for backends whose
        #: token stream is a pure function; None stores tokens eagerly.
        self.token_replay = token_replay
        #: the step-record stream — a plain list at ``"full"`` (the
        #: eager oracle materializes anyway), typed columns at
        #: ``"windows"`` so million-record streams stay O(bytes), and
        #: unused (empty list) at the aggregate-only levels.
        self.records: "ColumnarRecords | list[StepEvent]" = \
            ColumnarRecords(freq_hz) if level == "windows" else []
        self.n_steps = 0
        self.n_decode_steps = 0
        self.batch_sum = 0
        self.max_batch = 0
        self.runs = RunLengthSample()
        #: percentile sketch replacing ``runs`` at ``"sketch"`` level.
        self.digest = None
        if level == "sketch":
            from ..stats import TDigest
            self.digest = TDigest()
        # Fast-forward window accounting (all levels; O(1) state).
        self.n_windows = 0
        self.n_window_segments = 0
        self.n_folded_retirements = 0
        self.window_breaks = {reason: 0 for reason in WINDOW_BREAK_REASONS}
        # Per-priority-class accumulators (all levels).
        self.tenants: dict[str, TenantStats] = {}
        # Columnar per-request results (streaming levels).
        self.ids = array("q")
        self.prompt_lens = array("q")
        self.n_tokens = array("q")
        self.ttfts = array("d")
        #: 1 where the aligned ``ttfts`` entry is a real first-token
        #: time, 0 for requests that never produced one (the stored
        #: 0.0 is a placeholder excluded from every TTFT aggregate).
        self.ttft_valid = array("b")
        self.e2es = array("d")
        self.reasons = array("b")
        self.n_preempts = array("q")
        self.eos_ids = array("q")
        self.tenant_ranks = array("b")
        # Request decode spans, flattened: request i's spans are the
        # ``(lo, hi)`` pairs at ``span_bounds[2k:2k+2]`` for ``k`` in
        # ``[span_starts[i], span_starts[i] + span_counts[i])``.
        self.span_bounds = array("q")
        self.span_starts = array("q")
        self.span_counts = array("q")
        self.stored_tokens: list[tuple[int, ...]] | None = \
            None if token_replay is not None else []
        self.total_new_tokens = 0
        self._events_cache: tuple[int, list[StepEvent]] | None = None
        self._lat_stream: tuple[int, np.ndarray] | None = None

    # -- recording ---------------------------------------------------------

    def record_event(self, event: StepEvent) -> None:
        self.n_steps += 1
        if event.batch:
            self.n_decode_steps += 1
            self.batch_sum += event.batch
            if event.batch > self.max_batch:
                self.max_batch = event.batch
            if self.level == "sketch":
                self.digest.add(event.cycles / self.freq_hz, event.batch)
            elif self.level != "full":
                self.runs.add_single(event.cycles / self.freq_hz,
                                     event.batch)
        if self.level in _RECORDING_LEVELS:
            self.records.append(event)

    def note_break(self, reason: str) -> None:
        """Count why the current fast-forward window ended."""
        self.window_breaks[reason] += 1

    def window_stats(self) -> dict:
        """Window/segment counts and break-reason histogram (a fresh
        dict; safe to stash on a report)."""
        return {
            "n_windows": self.n_windows,
            "n_segments": self.n_window_segments,
            "folded_retirements": self.n_folded_retirements,
            "breaks": dict(self.window_breaks),
        }

    def record_window(self, clock0_s: float, clocks_after: np.ndarray,
                      batch: int, cycles: np.ndarray,
                      latencies: np.ndarray,
                      segments: tuple[tuple[int, int, int], ...] | None
                      = None) -> None:
        """One fast-forwarded window of ``len(cycles)`` decode steps.

        ``clocks_after[j]`` is the engine clock after step ``j`` and
        ``latencies`` is ``cycles / freq_hz`` — both already computed
        by the scheduler's closed-form charge, so recording reuses the
        exact floats instead of re-deriving them.  ``segments`` (one
        ``(count, batch, retired)`` triple per piecewise-static
        segment) describes a multi-segment window whose batch shrinks
        at predicted retirements; None means one static segment of
        ``batch`` throughout.
        """
        count = len(cycles)
        self.n_steps += count
        self.n_decode_steps += count
        self.n_windows += 1
        if segments is None:
            segments_iter: tuple[tuple[int, int, int], ...] = \
                ((count, batch, 0),)
        else:
            segments_iter = segments
        self.n_window_segments += len(segments_iter)
        for seg_count, seg_batch, seg_retired in segments_iter:
            self.batch_sum += seg_batch * seg_count
            if seg_batch > self.max_batch:
                self.max_batch = seg_batch
            self.n_folded_retirements += seg_retired
        if self.level == "full":
            clock_list = clocks_after.tolist()
            cycle_list = cycles.tolist()
            pos = 0
            for seg_count, seg_batch, seg_retired in segments_iter:
                for j in range(seg_count):
                    self.records.append(StepEvent(
                        clock_s=clock_list[pos], batch=seg_batch,
                        cycles=cycle_list[pos], admitted=0, preempted=0,
                        retired=seg_retired if j == seg_count - 1 else 0))
                    pos += 1
            return
        pos = 0
        for seg_count, seg_batch, _ in segments_iter:
            if self.level == "sketch":
                self.digest.add_array(latencies[pos:pos + seg_count],
                                      seg_batch)
            else:
                self.runs.add_run(latencies[pos:pos + seg_count],
                                  seg_batch)
            pos += seg_count
        if self.level == "windows":
            self.records.append_window(clock0_s, batch, cycles, segments)

    def fold_tenant(self, state: RequestState) -> None:
        """Absorb one retired request into its class's accumulator
        (every level — the scheduler calls this on every retirement)."""
        priority = state.request.tenant.priority
        acc = self.tenants.get(priority)
        if acc is None:
            acc = self.tenants[priority] = TenantStats()
        acc.fold(state)

    def tenant_summaries(self, total_time_s: float) -> dict:
        return summarize_tenants(self.tenants, total_time_s)

    def fold_result(self, state: RequestState) -> None:
        """Absorb one retired request into the columns and drop it."""
        self.total_new_tokens += len(state.generated)
        has_ttft = state.first_token_s is not None
        self.ttfts.append(state.ttft_s if has_ttft else 0.0)
        self.ttft_valid.append(1 if has_ttft else 0)
        self.ids.append(state.request_id)  # n_requests + result ordering
        if self.level in ("summary", "sketch"):
            return
        self.prompt_lens.append(state.prompt_len)
        self.n_tokens.append(len(state.generated))
        self.e2es.append(state.e2e_s)
        assert state.finish_reason is not None
        self.reasons.append(_REASON_CODES[state.finish_reason])
        self.n_preempts.append(state.preemptions)
        eos = state.request.eos_id
        self.eos_ids.append(-1 if eos is None else eos)
        self.tenant_ranks.append(state.request.tenant.rank)
        self.span_starts.append(len(self.span_bounds) >> 1)
        self.span_counts.append(len(state.spans))
        for lo, hi in state.spans:
            self.span_bounds.append(lo)
            self.span_bounds.append(hi)
        if self.stored_tokens is not None:
            self.stored_tokens.append(tuple(state.generated))

    def request_spans(self, i: int) -> list[tuple[int, int]]:
        """Request ``i``'s (retire-order) decode spans — ``(lo, hi)``
        half-open index pairs into :meth:`latency_stream`."""
        start = self.span_starts[i]
        bounds = self.span_bounds
        return [(bounds[2 * k], bounds[2 * k + 1])
                for k in range(start, start + self.span_counts[i])]

    # -- lazy exact expansion ----------------------------------------------

    def expanded_events(self) -> list[StepEvent]:
        """The eager per-step event list (windows expanded, cached)."""
        if self.level not in _RECORDING_LEVELS:
            raise SimulationError(
                f"telemetry='{self.level}' records no step events")
        if self.level == "full":
            return self.records  # type: ignore[return-value]
        if self._events_cache is None \
                or self._events_cache[0] != len(self.records):
            events: list[StepEvent] = []
            for record in self.records:
                if isinstance(record, StepWindow):
                    events.extend(record.expand())
                else:
                    events.append(record)
            self._events_cache = (len(self.records), events)
        return self._events_cache[1]

    def step_batches(self) -> list[int]:
        if self.level not in _RECORDING_LEVELS:
            raise SimulationError(
                f"telemetry='{self.level}' records no step batches")
        out: list[int] = []
        for record in self.records:
            if isinstance(record, StepWindow):
                if record.segments is None:
                    out.extend([record.batch] * record.count)
                else:
                    for seg_count, seg_batch, _ in record.segments:
                        out.extend([seg_batch] * seg_count)
            elif record.batch:
                out.append(record.batch)
        return out

    def latency_stream(self) -> np.ndarray:
        """Latency of every decode step, in global decode-step order —
        the array request spans index into."""
        if self.level not in _RECORDING_LEVELS:
            raise SimulationError(
                f"telemetry='{self.level}' records no decode latencies")
        if self._lat_stream is None \
                or self._lat_stream[0] != len(self.records):
            parts: list[np.ndarray] = []
            for record in self.records:
                if isinstance(record, StepWindow):
                    parts.append(record.latencies())
                elif record.batch:
                    parts.append(np.array([record.cycles / self.freq_hz]))
            stream = np.concatenate(parts) if parts \
                else np.empty(0, dtype=np.float64)
            self._lat_stream = (len(self.records), stream)
        return self._lat_stream[1]


class StreamedServeReport:
    """:class:`ServeReport`-compatible view over run-length telemetry.

    Scalar aggregates are exact by construction; ``results``,
    ``events``-style expansions and per-request ``decode_step_s`` /
    ``tokens`` are materialized lazily (``"windows"`` level) from the
    window records, the span columns, and the backend's pure token
    replay — bit-identical to the eager report, paid only when asked.
    """

    def __init__(self, recorder: TelemetryRecorder, total_time_s: float,
                 preemptions: int) -> None:
        self._rec = recorder
        self.telemetry = recorder.level
        self.total_time_s = total_time_s
        self.n_steps = recorder.n_steps
        self.preemptions = preemptions
        self.max_batch_observed = recorder.max_batch
        self.window_stats = recorder.window_stats()
        #: retire-order -> request-id order, fixed once at build time so
        #: every materialization walks requests the way the eager report
        #: does (results are sorted by request id).
        self._order = np.argsort(
            np.frombuffer(recorder.ids, dtype=np.int64)
            if len(recorder.ids) else np.empty(0, dtype=np.int64),
            kind="stable")
        self._results: list[RequestResult] | None = None

    # -- aggregate metrics --------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self._rec.ids)

    @property
    def total_new_tokens(self) -> int:
        return self._rec.total_new_tokens

    @property
    def aggregate_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            raise SimulationError("report covers no simulated time")
        return self.total_new_tokens / self.total_time_s

    @property
    def mean_ttft_s(self) -> float:
        valid = self._ttft_valid_mask()
        n_valid = int(valid.sum())
        if not n_valid:
            raise SimulationError("no retired requests")
        # Sum in request-id order — the accumulation order of the eager
        # report's mean, so the float matches bit for bit.
        ttfts = np.frombuffer(self._rec.ttfts, dtype=np.float64)
        ordered = ttfts[self._order]
        mask = valid[self._order]
        return sum(ordered[mask].tolist()) / n_valid

    @property
    def mean_batch(self) -> float:
        if not self._rec.n_decode_steps:
            raise SimulationError("no decode steps recorded")
        return self._rec.batch_sum / self._rec.n_decode_steps

    # -- percentiles --------------------------------------------------------

    def latency_percentile_s(self, percentile: float) -> float:
        if self.telemetry == "sketch":
            return self._rec.digest.percentile(percentile)
        return self._rec.runs.percentile(percentile)

    def ttft_percentile_s(self, percentile: float) -> float:
        from ..stats import percentile_of_sorted

        ttfts = self.sorted_ttfts()
        if not len(ttfts):
            raise SimulationError("no retired requests")
        return percentile_of_sorted(ttfts, percentile)

    def _ttft_valid_mask(self) -> np.ndarray:
        if not len(self._rec.ttft_valid):
            return np.empty(0, dtype=bool)
        return np.frombuffer(self._rec.ttft_valid,
                             dtype=np.int8).astype(bool)

    def sorted_ttfts(self) -> np.ndarray:
        if getattr(self, "_ttft_sorted", None) is None:
            ttfts = np.frombuffer(self._rec.ttfts, dtype=np.float64) \
                if len(self._rec.ttfts) else np.empty(0, dtype=np.float64)
            self._ttft_sorted = np.sort(ttfts[self._ttft_valid_mask()])
        return self._ttft_sorted

    def latency_runs(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted ``(values, counts)`` of the decode-latency sample."""
        if self.telemetry == "sketch":
            raise SimulationError(
                "telemetry='sketch' keeps a percentile sketch, not the "
                "exact latency sample; use latency_digest()")
        return self._rec.runs.sorted_runs()

    def latency_digest(self):
        """The decode-latency :class:`repro.stats.TDigest` (``"sketch"``
        level only) — what a cluster merge combines across replicas."""
        if self.telemetry != "sketch":
            raise SimulationError(
                f"telemetry='{self.telemetry}' keeps the exact latency "
                "sample, not a sketch; use latency_runs()")
        return self._rec.digest

    # -- merge accessors (cluster aggregation without expansion) ------------

    def ttft_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(request_ids, ttfts, valid)`` in retire order — what a
        cluster merge needs to re-establish global request-id summation
        order without touching the recorder's storage layout.  Entries
        with ``valid`` False are placeholders (no first token) and must
        be excluded from TTFT aggregates."""
        if not len(self._rec.ids):
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=bool))
        return (np.frombuffer(self._rec.ids, dtype=np.int64),
                np.frombuffer(self._rec.ttfts, dtype=np.float64),
                self._ttft_valid_mask())

    def tenant_accumulators(self) -> "dict[str, TenantStats]":
        """The live per-class accumulators — the cluster merge path."""
        return self._rec.tenants

    @property
    def tenant_stats(self) -> dict:
        return self._rec.tenant_summaries(self.total_time_s)

    @property
    def batch_sum(self) -> int:
        """Sum of batch sizes over all decode steps."""
        return self._rec.batch_sum

    @property
    def n_decode_steps(self) -> int:
        return self._rec.n_decode_steps

    # -- lazy per-step / per-request detail ---------------------------------

    @property
    def step_batches(self) -> list[int]:
        return self._rec.step_batches()

    @property
    def events(self) -> list[StepEvent]:
        return self._rec.expanded_events()

    @property
    def results(self) -> list[RequestResult]:
        if self.telemetry in ("summary", "sketch"):
            raise SimulationError(
                f"telemetry='{self.telemetry}' keeps no per-request "
                "results; use 'windows' or 'full'")
        if self._results is None:
            rec = self._rec
            stream = rec.latency_stream()
            ids = np.frombuffer(rec.ids, dtype=np.int64)
            out: list[RequestResult] = []
            for i in self._order.tolist():
                n = rec.n_tokens[i]
                if rec.stored_tokens is not None:
                    tokens = rec.stored_tokens[i]
                else:
                    eos = rec.eos_ids[i]
                    tokens = rec.token_replay(
                        int(ids[i]), int(n), None if eos < 0 else int(eos))
                lats: list[float] = []
                for lo, hi in rec.request_spans(i):
                    lats.extend(stream[lo:hi].tolist())
                out.append(RequestResult(
                    request_id=int(ids[i]),
                    tokens=tokens,
                    prompt_len=int(rec.prompt_lens[i]),
                    ttft_s=rec.ttfts[i] if rec.ttft_valid[i] else None,
                    e2e_s=rec.e2es[i],
                    finish_reason=_REASON_LIST[rec.reasons[i]],
                    preemptions=int(rec.n_preempts[i]),
                    decode_step_s=tuple(lats),
                    tenant_class=PRIORITY_CLASSES[rec.tenant_ranks[i]],
                ))
            self._results = out
        return self._results
