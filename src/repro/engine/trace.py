"""Synthetic request traces for serving simulation.

A trace is a stream of :class:`repro.engine.request.Request` with
Poisson arrivals and randomized prompt/decode lengths — enough to
exercise admission, continuous batching, and preemption without real
user data.  Generation is fully deterministic from the seed.

:func:`iter_synthetic_trace` is the generator form: requests come out
one by one in arrival order with nothing materialized up front, so a
million-request sweep feeds :meth:`ContinuousBatchScheduler.run`
incrementally at O(in-flight) memory.  :func:`synthetic_trace` is the
same stream collected into a list — the two are element-for-element
identical for equal parameters.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..config import ModelConfig
from ..errors import SimulationError
from .request import Request
from .tenancy import TenantSpec


def iter_synthetic_trace(model: ModelConfig, n_requests: int,
                         arrival_rate_rps: float = 1.0,
                         prompt_len: tuple[int, int] = (4, 16),
                         decode_len: tuple[int, int] = (8, 32),
                         seed: int = 0,
                         eos_id: int | None = None,
                         shared_prefix_len: int = 0,
                         tenant_mix: Sequence[tuple[TenantSpec, float]]
                         | None = None) -> Iterator[Request]:
    """Generate ``n_requests`` synthetic requests against ``model``.

    Arrivals are exponential inter-arrival times at ``arrival_rate_rps``
    requests per second of *simulated* time; prompt and decode lengths
    are uniform over the given inclusive ranges, clamped so every
    request fits the model's context window.

    ``shared_prefix_len > 0`` prepends one fixed "system prompt" of that
    many tokens (drawn once from the seed) to every request — the
    workload shape that paged KV with prefix reuse is built for.  The
    per-request prompt tail still follows ``prompt_len``, so a prompt is
    never shorter than the shared prefix.  A prefix that leaves no room
    for the minimum tail plus one generated token raises; a prefix that
    only squeezes the *top* of the tail range clamps that range once, up
    front (and every draw uses the clamped range), rather than silently
    collapsing out-of-range samples onto the cap.

    ``tenant_mix`` is a sequence of ``(TenantSpec, share)`` pairs: each
    request draws its tenant from the given specs with probabilities
    proportional to the shares (normalized; they need not sum to 1).
    The tenant draw is one extra RNG call per block *after* the
    existing draws, so ``tenant_mix=None`` leaves the default stream —
    arrivals, lengths, and tokens — bit-identical to before.
    """
    if n_requests <= 0:
        raise SimulationError(f"n_requests must be positive: {n_requests}")
    if arrival_rate_rps <= 0:
        raise SimulationError(
            f"arrival rate must be positive: {arrival_rate_rps}")
    if shared_prefix_len < 0:
        raise SimulationError(
            f"shared prefix length must be >= 0: {shared_prefix_len}")
    lo_p, hi_p = prompt_len
    lo_d, hi_d = decode_len
    if not 1 <= lo_p <= hi_p or not 1 <= lo_d <= hi_d:
        raise SimulationError(
            f"bad length ranges prompt={prompt_len} decode={decode_len}")
    if shared_prefix_len + lo_p + 1 >= model.max_context:
        raise SimulationError(
            f"shared prefix of {shared_prefix_len} tokens leaves no room "
            f"for a >= {lo_p}-token prompt tail plus one generated token "
            f"in {model.name}'s {model.max_context}-token context")
    # Longest tail that fits beside the shared prefix, one sampled token
    # and the final forward; clamping the range ONCE keeps the draw
    # uniform instead of piling every oversized sample onto the cap.
    tail_cap = model.max_context - 2 - shared_prefix_len
    hi_p = min(hi_p, tail_cap)
    specs: tuple[TenantSpec, ...] | None = None
    thresholds: np.ndarray | None = None
    if tenant_mix is not None:
        if not tenant_mix:
            raise SimulationError("tenant_mix must not be empty")
        specs = tuple(spec for spec, _ in tenant_mix)
        shares = np.asarray([share for _, share in tenant_mix],
                            dtype=np.float64)
        for spec, share in tenant_mix:
            if not isinstance(spec, TenantSpec):
                raise SimulationError(
                    f"tenant_mix entries need a TenantSpec: {spec!r}")
            if share <= 0:
                raise SimulationError(
                    f"tenant {spec.name!r}: mix share must be positive: "
                    f"{share}")
        thresholds = np.cumsum(shares / shares.sum())

    # Validation stays eager (above); only the draws are deferred, so a
    # bad parameter set fails at the call, not at the first next().
    def generate() -> Iterator[Request]:
        rng = np.random.default_rng(seed)
        system_prompt = tuple(int(t) for t in rng.integers(
            0, model.vocab_size, size=shared_prefix_len))
        decode_cap = model.max_context - shared_prefix_len
        clock = 0.0
        rid = 0
        # Draws come in blocks (4 RNG calls per up-to-1024 requests
        # instead of 4 per request); the stream itself stays lazy, so
        # peak memory is one block, not the trace.
        while rid < n_requests:
            block = min(1024, n_requests - rid)
            gaps = rng.exponential(1.0 / arrival_rate_rps, size=block)
            n_prompts = rng.integers(lo_p, hi_p + 1, size=block)
            n_decodes = rng.integers(lo_d, hi_d + 1, size=block)
            tokens = rng.integers(0, model.vocab_size,
                                  size=int(n_prompts.sum()))
            if specs is not None:
                # Drawn after the base block so the default stream
                # (tenant_mix=None) consumes the RNG identically.
                picks = np.minimum(
                    np.searchsorted(thresholds, rng.random(size=block),
                                    side="right"),
                    len(specs) - 1)
            offset = 0
            for i in range(block):
                clock += float(gaps[i])
                n_prompt = int(n_prompts[i])
                prompt = system_prompt + tuple(
                    tokens[offset:offset + n_prompt].tolist())
                offset += n_prompt
                kwargs = {} if specs is None \
                    else {"tenant": specs[int(picks[i])]}
                yield Request(
                    request_id=rid,
                    prompt=prompt,
                    max_new_tokens=min(int(n_decodes[i]),
                                       decode_cap - n_prompt),
                    arrival_s=clock,
                    eos_id=eos_id,
                    **kwargs,
                )
                rid += 1

    return generate()


def synthetic_trace(model: ModelConfig, n_requests: int,
                    arrival_rate_rps: float = 1.0,
                    prompt_len: tuple[int, int] = (4, 16),
                    decode_len: tuple[int, int] = (8, 32),
                    seed: int = 0,
                    eos_id: int | None = None,
                    shared_prefix_len: int = 0,
                    tenant_mix: Sequence[tuple[TenantSpec, float]]
                    | None = None) -> list[Request]:
    """:func:`iter_synthetic_trace`, materialized into a list."""
    return list(iter_synthetic_trace(
        model, n_requests, arrival_rate_rps=arrival_rate_rps,
        prompt_len=prompt_len, decode_len=decode_len, seed=seed,
        eos_id=eos_id, shared_prefix_len=shared_prefix_len,
        tenant_mix=tenant_mix))
