"""KV-cache scale-zero FIFO packing (paper Fig. 4B, Sec. V-B2).

Every freshly quantized key/value head vector produces one 32-bit
scale-zero pack (16-bit FP16 scale, 8-bit signed zero point, 8-bit pad).
Writing 4 bytes to DDR at a time would wreck bandwidth, so the hardware
keeps a FIFO with one element per (K/V, layer, head) stream; each element
is a 512-bit bus word accumulating the packs of 16 consecutive tokens.
Generation order is head-wise then layer-wise, so the FIFO is popped,
appended, and pushed back in strict round-robin — and once the 16th
token's packs start arriving, full words retire to DDR as whole-beat
writes.

:class:`KVScaleZeroFifo` reproduces the mechanism and reports both the
write transactions (for the DDR model) and the peak FIFO occupancy (for
the resource model).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import LayoutError
from ..quant.kv8 import KVQuantParams
from .busformat import BUS_BYTES

PACK_BYTES = 4


def encode_pack(params: KVQuantParams) -> bytes:
    """One 32-bit pack: FP16 scale | 8-bit zero magnitude | 8-bit pad.

    KV8 zero points live in ``[-255, 0]`` (the quantization range always
    includes zero), so the byte stores ``-zero``.
    """
    if not -255 <= params.zero <= 0:
        raise LayoutError(f"zero point {params.zero} outside [-255, 0]")
    scale_bits = np.float16(params.scale).tobytes()  # 2 bytes LE
    return scale_bits + struct.pack("<B", -params.zero) + b"\x00"


def decode_pack(data: bytes) -> KVQuantParams:
    """Inverse of :func:`encode_pack`."""
    if len(data) != PACK_BYTES:
        raise LayoutError(f"pack must be {PACK_BYTES} bytes, got {len(data)}")
    scale = np.frombuffer(data[:2], dtype=np.float16)[0]
    (neg_zero,) = struct.unpack("<B", data[2:3])
    return KVQuantParams(scale=scale, zero=-int(neg_zero))


def decode_pack_word(word: bytes, count: int | None = None,
                     ) -> list[KVQuantParams]:
    """Split one bus word into its (up to 16) scale-zero packs."""
    if len(word) % PACK_BYTES:
        raise LayoutError(f"word length {len(word)} not a multiple of 4")
    n = len(word) // PACK_BYTES if count is None else count
    return [decode_pack(word[i * PACK_BYTES : (i + 1) * PACK_BYTES])
            for i in range(n)]


@dataclass
class _FifoElement:
    stream_key: tuple  # (is_value, layer, head)
    packs: list[bytes] = field(default_factory=list)


class KVScaleZeroFifo:
    """Round-robin pack accumulator with whole-beat DDR writeback."""

    def __init__(self, num_layers: int, num_kv_heads: int,
                 bus_bytes: int = BUS_BYTES) -> None:
        if num_layers <= 0 or num_kv_heads <= 0:
            raise LayoutError("layers and heads must be positive")
        self.bus_bytes = bus_bytes
        self.packs_per_word = bus_bytes // PACK_BYTES
        self.num_layers = num_layers
        self.num_kv_heads = num_kv_heads
        # One element per (K/V, layer, head) stream, in generation order:
        # for each layer, for each head, first the key pack then the value
        # pack (quantization happens as K then V are produced, Fig. 3).
        self._elements: list[_FifoElement] = []
        for layer in range(num_layers):
            for head in range(num_kv_heads):
                self._elements.append(_FifoElement((False, layer, head)))
                self._elements.append(_FifoElement((True, layer, head)))
        self._cursor = 0
        self.flushed_words: list[tuple[tuple, bytes]] = []
        self.peak_buffered_packs = 0

    @property
    def n_streams(self) -> int:
        return len(self._elements)

    def _expected_key(self) -> tuple:
        return self._elements[self._cursor].stream_key

    def push(self, layer: int, head: int, is_value: bool,
             params: KVQuantParams) -> bytes | None:
        """Insert one pack in generation order; returns a retired bus word
        when the target element was already full (the 17th token's pack
        evicts the word holding tokens 1-16)."""
        key = (is_value, layer, head)
        if key != self._expected_key():
            raise LayoutError(
                f"pack for stream {key} arrived out of order; expected "
                f"{self._expected_key()}"
            )
        element = self._elements[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._elements)

        retired: bytes | None = None
        if len(element.packs) == self.packs_per_word:
            word = b"".join(element.packs)
            self.flushed_words.append((element.stream_key, word))
            element.packs = []
            retired = word
        element.packs.append(encode_pack(params))

        buffered = sum(len(e.packs) for e in self._elements)
        self.peak_buffered_packs = max(self.peak_buffered_packs, buffered)
        return retired

    def flush_all(self) -> list[tuple[tuple, bytes]]:
        """Drain every element at end of generation (padding to a beat)."""
        drained = []
        for element in self._elements:
            if element.packs:
                word = b"".join(element.packs)
                word += b"\x00" * (self.bus_bytes - len(word))
                drained.append((element.stream_key, word))
                element.packs = []
        self.flushed_words.extend(drained)
        return drained

    # -- reporting for the Fig. 4B benchmark --------------------------------

    def buffer_bytes(self) -> int:
        """On-chip buffer footprint: one bus word per stream."""
        return self.n_streams * self.bus_bytes

    @staticmethod
    def naive_write_count(num_layers: int, num_kv_heads: int,
                          n_tokens: int) -> int:
        """DDR writes without the FIFO: one 4-byte write per pack."""
        return 2 * num_layers * num_kv_heads * n_tokens

    def fifo_write_count(self) -> int:
        """DDR writes with the FIFO: whole bus words only."""
        return len(self.flushed_words)
