"""Bus-width-aligned data arrangement formats (paper Sec. V-B, Fig. 4).

* :mod:`repro.packing.busformat` — 512-bit bus-word primitives.
* :mod:`repro.packing.weight_layout` — the interleaved zero/scale/weight
  model-weight format (Fig. 4A), bit-exact encode/decode, plus the naive
  split layout used as the efficiency baseline.
* :mod:`repro.packing.kv_layout` — the KV scale-zero FIFO packing
  (Fig. 4B).
* :mod:`repro.packing.memimage` — whole-DDR memory image construction and
  capacity reporting (Fig. 1's 93.3%).
"""

from .busformat import BUS_BITS, BUS_BYTES, beats_for, pad_to_beat, split_beats
from .kv_layout import KVScaleZeroFifo, decode_pack_word, encode_pack
from .memimage import MemoryImage, build_memory_image
from .weight_layout import (
    WeightLayoutSpec,
    decode_weight_stream,
    encode_weight_stream,
    interleaved_read_transactions,
    naive_read_transactions,
)

__all__ = [
    "BUS_BITS",
    "BUS_BYTES",
    "beats_for",
    "pad_to_beat",
    "split_beats",
    "KVScaleZeroFifo",
    "decode_pack_word",
    "encode_pack",
    "MemoryImage",
    "build_memory_image",
    "WeightLayoutSpec",
    "decode_weight_stream",
    "encode_weight_stream",
    "interleaved_read_transactions",
    "naive_read_transactions",
]
