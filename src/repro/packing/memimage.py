"""Whole-DDR memory image construction and capacity reporting.

Reproduces the placement of Sec. VII-A and the capacity breakdown of
Fig. 1: the embedding table, all quantized layer weights, and the KV cache
of the first half of the layers go to the upper 2 GB; the remaining layers'
KV cache, the KV scale-zero region, and runtime buffers go to the lower
2 GB (which also holds the 1 MB compiler reservation).

For big models the image is *virtual* — regions carry exact sizes computed
from the configs without materializing 3.5 GB of bytes.  For tiny test
models, :func:`build_memory_image` can materialize every region from an
actual quantized checkpoint so tests can round-trip the bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ModelConfig, QuantConfig
from ..errors import CapacityError
from ..memory.memmap import AddressMap, Allocation, kv260_address_map
from ..units import MIB
from .busformat import BUS_BYTES, pad_to_beat
from .weight_layout import WeightLayoutSpec


@dataclass
class MemoryImage:
    """A placed memory image: allocations plus optional materialized bytes."""

    model: ModelConfig
    quant: QuantConfig
    context: int
    address_map: AddressMap
    allocations: dict[str, Allocation] = field(default_factory=dict)
    data: dict[str, bytes] = field(default_factory=dict)

    # -- capacity report (Fig. 1) -------------------------------------------

    def weight_bytes(self) -> int:
        return sum(a.size for name, a in self.allocations.items()
                   if name.startswith(("weights.", "embedding", "norms")))

    def kv_bytes(self) -> int:
        return sum(a.size for name, a in self.allocations.items()
                   if name.startswith("kv."))

    def total_bytes(self) -> int:
        return sum(a.size for a in self.allocations.values())

    def weight_mib(self) -> float:
        return self.weight_bytes() / MIB

    def kv_mib(self) -> float:
        return self.kv_bytes() / MIB

    def capacity_utilization(self, dram_bytes: int = 4 * 1024 * MIB) -> float:
        """Fraction of raw DRAM used by weights + KV (the 93.3% figure)."""
        return self.total_bytes() / dram_bytes


def _layer_stream_bytes(model: ModelConfig, quant: QuantConfig,
                        spec: WeightLayoutSpec) -> list[tuple[str, int]]:
    """(name, size) for each projection of one layer, in stream order."""
    h = model.hidden_size
    kv = model.kv_dim
    inter = model.intermediate_size
    shapes = [("wq", h, h), ("wk", kv, h), ("wv", kv, h), ("wo", h, h)]
    if model.gated_mlp:
        shapes.append(("w_gate", inter, h))
    shapes += [("w_up", inter, h), ("w_down", h, inter)]
    out = []
    for name, out_f, in_f in shapes:
        n_groups = out_f * (in_f // spec.group_size)
        out.append((name, spec.stream_bytes(n_groups)))
    return out


def build_memory_image(model: ModelConfig, quant: QuantConfig,
                       context: int | None = None,
                       address_map: AddressMap | None = None,
                       qweights=None) -> MemoryImage:
    """Place the full model in DDR; optionally materialize from weights.

    ``qweights`` (a :class:`repro.model.weights.QuantizedModelWeights`)
    triggers materialization: every region's bytes are produced with the
    interleaved encoder so the image is loadable by the simulated MCU.
    """
    if context is None:
        context = model.max_context
    if context > model.max_context:
        raise CapacityError(
            f"context {context} exceeds the model's max {model.max_context}"
        )
    if address_map is None:
        address_map = kv260_address_map()
    if model.hidden_size % quant.weight_group_size == 0:
        group = quant.weight_group_size
    else:
        raise CapacityError(
            f"hidden size {model.hidden_size} not divisible by quant group "
            f"{quant.weight_group_size}"
        )
    spec = WeightLayoutSpec(weight_bits=quant.weight_bits,
                            scale_bits=quant.weight_scale_bits,
                            zero_bits=quant.weight_zero_bits,
                            group_size=group)

    image = MemoryImage(model=model, quant=quant, context=context,
                        address_map=address_map)

    def place(name: str, size: int, region: str,
              payload: bytes | None = None) -> None:
        # Preferred region first; the paper fills the upper 2 GB to the
        # brim and places "the remaining data" low, so spill to the other
        # region before declaring the model unfit.
        other = "low" if region == "high" else "high"
        try:
            alloc = address_map.allocate(name, size, region)
        except CapacityError:
            alloc = address_map.allocate(name, size, other)
        image.allocations[name] = alloc
        if payload is not None:
            if len(payload) != size:
                raise CapacityError(
                    f"payload for {name} is {len(payload)} B, expected {size}"
                )
            image.data[name] = payload

    # Sec. VII-A placement: the embedding table plus the weights and KV
    # space of the first 16 (= half the) layers go to the upper 2 GB; the
    # remaining layers, the LM head, and the scale-zero region go low.
    split = model.num_layers - model.num_layers // 2

    # Embedding table (FP16 rows, read one row per token) -> high region.
    emb_size = model.embedding_params() * quant.activation_bits // 8
    emb_payload = None
    if qweights is not None:
        emb_payload = pad_to_beat(qweights.embedding.tobytes())
        emb_size = len(emb_payload)
    place("embedding", emb_size, "high", emb_payload)

    # Layer weights and KV space, one interleaved stream per projection.
    from .weight_layout import encode_weight_stream

    kv_per_layer = 2 * context * model.kv_dim * quant.kv_bits // 8
    kv_per_layer = -(-kv_per_layer // BUS_BYTES) * BUS_BYTES
    for layer in range(model.num_layers):
        region = "high" if layer < split else "low"
        for proj, size in _layer_stream_bytes(model, quant, spec):
            payload = None
            if qweights is not None:
                result = qweights.projection(layer, proj)
                payload = encode_weight_stream(result.params, spec)
                size = len(payload)
            place(f"weights.layer{layer}.{proj}", size, region, payload)
        place(f"kv.layer{layer}", kv_per_layer, region)

    # LM head stream -> low region.
    head_groups = model.vocab_size * (model.hidden_size // group)
    head_size = spec.stream_bytes(head_groups)
    head_payload = None
    if qweights is not None:
        head_payload = encode_weight_stream(qweights.lm_head.params, spec)
        head_size = len(head_payload)
    place("weights.lm_head", head_size, "low", head_payload)

    # Norm weights (FP16, tiny) -> low region.
    norm_size = model.norm_params() * 2
    norm_size = -(-norm_size // BUS_BYTES) * BUS_BYTES
    place("norms", norm_size, "low")

    # KV scale-zero packs -> low region (written in whole bus words).
    packs = 2 * model.num_layers * model.kv_heads * context
    pack_bytes = packs * quant.kv_pack_bits // 8
    pack_bytes = -(-pack_bytes // BUS_BYTES) * BUS_BYTES
    place("kv.scale_zero", pack_bytes, "low")

    return image
