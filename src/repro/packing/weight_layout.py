"""The interleaved model-weight arrangement format (paper Fig. 4A).

Quantized weights travel as one long consecutive burst in which zero
points, scales, and weight codes are interleaved so that (a) the stream
never stops for a scattered metadata fetch and (b) the on-chip buffer for
metadata stays tiny — each superblock's metadata arrives just before the
weights it describes.

Superblock structure (for the default 512-bit bus, 4-bit weights, FP16
scales, 8-bit zeros, group size 128):

    [1 beat: 64 zero points][2 beats: 64 scales][64 beats: 64 groups' codes]

i.e. one beat of zeros covers exactly the groups whose scales fill the
next two beats and whose codes fill the next 64 beats.  The group sequence
is row-major over the (out_features, n_groups) grid; a final partial
superblock is padded with null groups.

The module also provides the *naive split* layout (zeros, scales, and
weights in three separate DDR regions, metadata fetched group-by-group)
that the paper argues against; the Fig. 4 benchmark feeds both transaction
streams to the DDR model to reproduce the efficiency gap.

Note: the paper's prose says "64 4-bit weights ... or 16 16-bit scales"
per 512-bit transaction, which fills only half the bus and contradicts
Fig. 5B's 512-bit -> 128-weight dequantizer.  We follow the
self-consistent full-bus packing (128 weights or 32 scales per beat); the
overhead per weight — (16 + 8) bits per 128-weight group — matches the
paper's capacity numbers either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LayoutError
from ..quant.groupquant import GroupQuantParams, pack_codes, unpack_codes
from .busformat import BUS_BYTES

_DUMMY_SCALE = np.float16(1.0)


@dataclass(frozen=True)
class WeightLayoutSpec:
    """Parameters of the interleaved format."""

    bus_bytes: int = BUS_BYTES
    weight_bits: int = 4
    scale_bits: int = 16
    zero_bits: int = 8
    group_size: int = 128

    def __post_init__(self) -> None:
        bus_bits = self.bus_bytes * 8
        for name, bits in (("weight", self.weight_bits),
                           ("scale", self.scale_bits),
                           ("zero", self.zero_bits)):
            if bits <= 0 or bus_bits % bits:
                raise LayoutError(f"{name}_bits={bits} does not divide the bus")
        if self.group_size * self.weight_bits % 8:
            raise LayoutError("group payload must be whole bytes")

    @property
    def groups_per_superblock(self) -> int:
        """One beat of zero points covers this many groups."""
        return self.bus_bytes * 8 // self.zero_bits

    @property
    def zero_beats(self) -> int:
        return 1

    @property
    def scale_beats(self) -> int:
        bits = self.groups_per_superblock * self.scale_bits
        return -(-bits // (self.bus_bytes * 8))

    @property
    def weight_beats_per_group(self) -> float:
        """Beats per group's codes; fractional for sub-beat groups."""
        return self.group_size * self.weight_bits / (self.bus_bytes * 8)

    @property
    def code_beats_per_superblock(self) -> int:
        """Whole beats holding one superblock's codes, packed contiguously."""
        bits = self.groups_per_superblock * self.group_size * self.weight_bits
        return -(-bits // (self.bus_bytes * 8))

    @property
    def superblock_beats(self) -> int:
        return (self.zero_beats + self.scale_beats
                + self.code_beats_per_superblock)

    @property
    def superblock_bytes(self) -> int:
        return self.superblock_beats * self.bus_bytes

    def stream_bytes(self, n_groups: int) -> int:
        """Stored bytes for ``n_groups`` groups (padded superblocks)."""
        blocks = -(-n_groups // self.groups_per_superblock)
        return blocks * self.superblock_bytes

    def overhead_fraction(self) -> float:
        """Metadata + padding bytes as a fraction of code bytes."""
        code = (self.groups_per_superblock * self.group_size
                * self.weight_bits // 8)
        return (self.superblock_bytes - code) / code


def _group_grid(params: GroupQuantParams) -> tuple[np.ndarray, int]:
    """Row-major (n_total_groups, group_size) code grid and group count."""
    out, inp = params.codes.shape
    n_groups = out * (inp // params.group_size)
    grid = params.codes.reshape(n_groups, params.group_size)
    return grid, n_groups


def encode_weight_stream(params: GroupQuantParams,
                         spec: WeightLayoutSpec | None = None) -> bytes:
    """Serialize quantized weights into the interleaved burst format."""
    if spec is None:
        spec = WeightLayoutSpec(weight_bits=params.bits,
                                group_size=params.group_size)
    if params.bits != spec.weight_bits:
        raise LayoutError(
            f"params quantized to {params.bits} bits but spec expects "
            f"{spec.weight_bits}"
        )
    if params.group_size != spec.group_size:
        raise LayoutError(
            f"params group size {params.group_size} != spec {spec.group_size}"
        )

    grid, n_groups = _group_grid(params)
    scales = params.scales.reshape(-1)
    zeros = params.zeros.reshape(-1)
    gps = spec.groups_per_superblock

    chunks: list[bytes] = []
    for block_start in range(0, n_groups, gps):
        block_groups = min(gps, n_groups - block_start)
        sl = slice(block_start, block_start + block_groups)
        pad = gps - block_groups

        z = np.concatenate([zeros[sl].astype(np.uint32),
                            np.zeros(pad, dtype=np.uint32)])
        chunks.append(pack_codes(z, spec.zero_bits))

        s = np.concatenate([scales[sl].astype(np.float16),
                            np.full(pad, _DUMMY_SCALE, dtype=np.float16)])
        scale_bytes = s.tobytes()  # little-endian FP16
        pad_bytes = spec.scale_beats * spec.bus_bytes - len(scale_bytes)
        chunks.append(scale_bytes + b"\x00" * pad_bytes)

        codes = np.concatenate([
            grid[sl].reshape(-1).astype(np.uint32),
            np.zeros(pad * spec.group_size, dtype=np.uint32),
        ])
        code_bytes = pack_codes(codes, spec.weight_bits)
        code_pad = spec.code_beats_per_superblock * spec.bus_bytes \
            - len(code_bytes)
        if code_pad < 0:
            raise LayoutError("weight payload overflows its superblock slot")
        chunks.append(code_bytes + b"\x00" * code_pad)

    return b"".join(chunks)


def decode_weight_stream(data: bytes, out_features: int, in_features: int,
                         spec: WeightLayoutSpec | None = None,
                         ) -> GroupQuantParams:
    """Bit-exact inverse of :func:`encode_weight_stream`."""
    if spec is None:
        spec = WeightLayoutSpec()
    if in_features % spec.group_size:
        raise LayoutError(
            f"in_features {in_features} not divisible by group "
            f"{spec.group_size}"
        )
    n_groups = out_features * (in_features // spec.group_size)
    expected = spec.stream_bytes(n_groups)
    if len(data) != expected:
        raise LayoutError(
            f"stream is {len(data)} bytes, expected {expected} for "
            f"{n_groups} groups"
        )

    gps = spec.groups_per_superblock
    zero_bytes = spec.zero_beats * spec.bus_bytes
    scale_bytes = spec.scale_beats * spec.bus_bytes
    weight_bytes = spec.code_beats_per_superblock * spec.bus_bytes

    zeros = np.empty(n_groups, dtype=np.uint8)
    scales = np.empty(n_groups, dtype=np.float16)
    codes = np.empty(n_groups * spec.group_size, dtype=np.uint8)

    offset = 0
    for block_start in range(0, n_groups, gps):
        block_groups = min(gps, n_groups - block_start)
        sl = slice(block_start, block_start + block_groups)

        z_chunk = data[offset : offset + zero_bytes]
        zeros[sl] = unpack_codes(z_chunk, spec.zero_bits, gps)[:block_groups]
        offset += zero_bytes

        s_chunk = data[offset : offset + scale_bytes]
        s = np.frombuffer(s_chunk[: gps * 2], dtype=np.float16)
        scales[sl] = s[:block_groups]
        offset += scale_bytes

        w_chunk = data[offset : offset + weight_bytes]
        w = unpack_codes(w_chunk, spec.weight_bits, gps * spec.group_size)
        codes[block_start * spec.group_size :
              (block_start + block_groups) * spec.group_size] = \
            w[: block_groups * spec.group_size]
        offset += weight_bytes

    groups_per_row = in_features // spec.group_size
    return GroupQuantParams(
        codes=codes.reshape(out_features, in_features),
        scales=scales.reshape(out_features, groups_per_row),
        zeros=zeros.reshape(out_features, groups_per_row),
        bits=spec.weight_bits,
        group_size=spec.group_size,
    )


# ---------------------------------------------------------------------------
# Transaction generators for the Fig. 4 efficiency comparison
# ---------------------------------------------------------------------------


def interleaved_read_transactions(n_groups: int, base_address: int = 0,
                                  spec: WeightLayoutSpec | None = None,
                                  max_burst_bytes: int = 1 << 20):
    """Transactions for streaming one matrix in the interleaved format:
    a handful of maximal consecutive bursts."""
    from ..memory.ddr import Transaction

    if spec is None:
        spec = WeightLayoutSpec()
    total = spec.stream_bytes(n_groups)
    txns = []
    address = base_address
    remaining = total
    while remaining > 0:
        size = min(max_burst_bytes, remaining)
        txns.append(Transaction(address=address, size=size))
        address += size
        remaining -= size
    return txns


def naive_read_transactions(n_groups: int, base_address: int = 0,
                            spec: WeightLayoutSpec | None = None):
    """Transactions for the split layout the paper rejects: weights stream
    in group-sized bursts while each group's scale and zero point are
    fetched individually from their own regions."""
    from ..memory.ddr import Transaction

    if spec is None:
        spec = WeightLayoutSpec()
    group_bytes = spec.group_size * spec.weight_bits // 8
    scale_entry = spec.scale_bits // 8
    zero_entry = max(1, spec.zero_bits // 8)

    weight_base = base_address
    scale_base = base_address + n_groups * group_bytes
    zero_base = scale_base + n_groups * scale_entry

    txns = []
    for g in range(n_groups):
        txns.append(Transaction(address=scale_base + g * scale_entry,
                                size=scale_entry))
        txns.append(Transaction(address=zero_base + g * zero_entry,
                                size=zero_entry))
        txns.append(Transaction(address=weight_base + g * group_bytes,
                                size=group_bytes))
    return txns
