"""KV-cache address layouts: why the cache is stored head-major.

The head-wise pipeline (Fig. 3) reads one head's entire history per QK/AV
stage.  Whether that read is one clean burst or a strided mess depends on
the in-DDR layout of the per-layer KV region:

* ``head-major``  — [head][token][dim]: one head's history is contiguous;
  the per-token *write* scatters across head strides (16 small writes).
* ``token-major`` — [token][head][dim]: the write is one contiguous
  append, but each head's history read is strided by ``kv_dim``.

The paper streams ~3.3 GB of reads per token against ~256 KB of writes,
so the layout must favour reads; this module computes both layouts'
addresses and transaction lists so the benchmark can show the read-cost
asymmetry on the DDR model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig, QuantConfig
from ..errors import LayoutError


@dataclass(frozen=True)
class KVAddressMap:
    """Address arithmetic for one layer's K (or V) cache region."""

    model: ModelConfig
    quant: QuantConfig
    base: int = 0
    layout: str = "head-major"  # or "token-major"
    max_context: int | None = None

    def __post_init__(self) -> None:
        if self.layout not in ("head-major", "token-major"):
            raise LayoutError(f"unknown KV layout {self.layout!r}")

    @property
    def context(self) -> int:
        return self.max_context if self.max_context is not None \
            else self.model.max_context

    @property
    def head_bytes(self) -> int:
        return self.model.head_dim * self.quant.kv_bits // 8

    @property
    def token_bytes(self) -> int:
        return self.model.kv_heads * self.head_bytes

    @property
    def region_bytes(self) -> int:
        return self.context * self.token_bytes

    def address(self, head: int, token: int) -> int:
        """DDR address of one head vector."""
        if not 0 <= head < self.model.kv_heads:
            raise LayoutError(f"head {head} out of range")
        if not 0 <= token < self.context:
            raise LayoutError(f"token {token} out of range")
        if self.layout == "head-major":
            return self.base + head * self.context * self.head_bytes \
                + token * self.head_bytes
        return self.base + token * self.token_bytes + head * self.head_bytes

    # -- transaction generators (for the DDR model) ---------------------------

    def head_read_transactions(self, head: int, length: int):
        """Read one head's history of ``length`` tokens."""
        from ..memory.ddr import Transaction

        if length <= 0:
            raise LayoutError("length must be positive")
        if self.layout == "head-major":
            return [Transaction(address=self.address(head, 0),
                                size=length * self.head_bytes)]
        return [Transaction(address=self.address(head, t),
                            size=self.head_bytes)
                for t in range(length)]

    def token_write_transactions(self, token: int):
        """Write one new token's vectors for every head."""
        from ..memory.ddr import Transaction

        if self.layout == "token-major":
            return [Transaction(address=self.address(0, token),
                                size=self.token_bytes, is_write=True)]
        return [Transaction(address=self.address(h, token),
                            size=self.head_bytes, is_write=True)
                for h in range(self.model.kv_heads)]

    def read_write_cost(self, context: int):
        """(read ns, write ns) for one decode step on the DDR model."""
        from ..memory.ddr import DdrModel

        reads = DdrModel()
        for head in range(self.model.kv_heads):
            reads.run(self.head_read_transactions(head, context))
        writes = DdrModel()
        writes.run(self.token_write_transactions(context))
        return reads.total_ns, writes.total_ns
