"""KV-cache address layouts: why the cache is stored head-major.

The head-wise pipeline (Fig. 3) reads one head's entire history per QK/AV
stage.  Whether that read is one clean burst or a strided mess depends on
the in-DDR layout of the per-layer KV region:

* ``head-major``  — [head][token][dim]: one head's history is contiguous;
  the per-token *write* scatters across head strides (16 small writes).
* ``token-major`` — [token][head][dim]: the write is one contiguous
  append, but each head's history read is strided by ``kv_dim``.
* ``paged``       — block indirection: tokens live in fixed-size blocks
  placed anywhere in the region by a block table (the paged KV cache's
  physical layout).  Inside a block the arrangement is head-major, so a
  head's read is one burst *per block* instead of one per history —
  the price of block granularity is one transaction per ``block_size``
  tokens, the reward is allocation and prefix sharing at block rather
  than max-context granularity.

The paper streams ~3.3 GB of reads per token against ~256 KB of writes,
so the layout must favour reads; this module computes the layouts'
addresses and transaction lists so the benchmark can show the read-cost
asymmetry on the DDR model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig, QuantConfig
from ..errors import LayoutError


@dataclass(frozen=True)
class KVAddressMap:
    """Address arithmetic for one layer's K (or V) cache region."""

    model: ModelConfig
    quant: QuantConfig
    base: int = 0
    layout: str = "head-major"  # or "token-major" / "paged"
    max_context: int | None = None
    #: paged layout only: tokens per block and the block table mapping
    #: logical block index -> physical block index within the region.
    block_size: int | None = None
    block_table: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.layout not in ("head-major", "token-major", "paged"):
            raise LayoutError(f"unknown KV layout {self.layout!r}")
        if self.layout == "paged":
            if self.block_size is None or self.block_size <= 0:
                raise LayoutError(
                    "paged layout needs a positive block_size")
            if self.block_table is None:
                raise LayoutError("paged layout needs a block_table")
            covered = len(self.block_table) * self.block_size
            if covered < self.context:
                raise LayoutError(
                    f"block table covers {covered} tokens, "
                    f"context is {self.context}")
        elif self.block_size is not None or self.block_table is not None:
            raise LayoutError(
                f"{self.layout} layout takes no block parameters")

    @property
    def context(self) -> int:
        return self.max_context if self.max_context is not None \
            else self.model.max_context

    @property
    def head_bytes(self) -> int:
        return self.model.head_dim * self.quant.kv_bits // 8

    @property
    def token_bytes(self) -> int:
        return self.model.kv_heads * self.head_bytes

    @property
    def block_bytes(self) -> int:
        """Paged layout: bytes of one physical block (all heads)."""
        if self.block_size is None:
            raise LayoutError(f"{self.layout} layout has no blocks")
        return self.block_size * self.token_bytes

    @property
    def region_bytes(self) -> int:
        if self.layout == "paged":
            assert self.block_table is not None
            return len(self.block_table) * self.block_bytes
        return self.context * self.token_bytes

    def address(self, head: int, token: int) -> int:
        """DDR address of one head vector."""
        if not 0 <= head < self.model.kv_heads:
            raise LayoutError(f"head {head} out of range")
        if not 0 <= token < self.context:
            raise LayoutError(f"token {token} out of range")
        if self.layout == "head-major":
            return self.base + head * self.context * self.head_bytes \
                + token * self.head_bytes
        if self.layout == "paged":
            assert self.block_size is not None
            assert self.block_table is not None
            block, offset = divmod(token, self.block_size)
            return self.base + self.block_table[block] * self.block_bytes \
                + head * self.block_size * self.head_bytes \
                + offset * self.head_bytes
        return self.base + token * self.token_bytes + head * self.head_bytes

    # -- transaction generators (for the DDR model) ---------------------------

    def head_read_transactions(self, head: int, length: int):
        """Read one head's history of ``length`` tokens."""
        from ..memory.ddr import Transaction

        if length <= 0:
            raise LayoutError("length must be positive")
        if self.layout == "head-major":
            return [Transaction(address=self.address(head, 0),
                                size=length * self.head_bytes)]
        if self.layout == "paged":
            # One burst per resident block: a head's tokens are
            # contiguous inside each block, so the read cost scales with
            # blocks touched, not tokens.
            assert self.block_size is not None
            txns = []
            for start in range(0, length, self.block_size):
                occupied = min(length - start, self.block_size)
                txns.append(Transaction(
                    address=self.address(head, start),
                    size=occupied * self.head_bytes))
            return txns
        return [Transaction(address=self.address(head, t),
                            size=self.head_bytes)
                for t in range(length)]

    def token_write_transactions(self, token: int):
        """Write one new token's vectors for every head."""
        from ..memory.ddr import Transaction

        if self.layout == "token-major":
            return [Transaction(address=self.address(0, token),
                                size=self.token_bytes, is_write=True)]
        return [Transaction(address=self.address(h, token),
                            size=self.head_bytes, is_write=True)
                for h in range(self.model.kv_heads)]

    def read_write_cost(self, context: int):
        """(read ns, write ns) for one decode step on the DDR model."""
        from ..memory.ddr import DdrModel

        reads = DdrModel()
        for head in range(self.model.kv_heads):
            reads.run(self.head_read_transactions(head, context))
        writes = DdrModel()
        writes.run(self.token_write_transactions(context))
        return reads.total_ns, writes.total_ns
