"""Single-file checkpoint format — the SD-card image of Sec. VII-A.

The paper converts the AutoAWQ checkpoint into "our proposed format" and
loads it from an SD card.  This module defines that container: a flat
binary with a fixed header, a region table (name, offset, size, CRC32),
and the concatenated region payloads — exactly the memory-image regions,
stored in placement order so the bare-metal loader can stream them to
their DDR addresses with sequential reads.

Layout (all little-endian):

    magic     8 bytes   b"REPROCKP"
    version   u32
    n_regions u32
    regions   n x { name_len u16, name utf-8, dst_addr u64,
                    size u64, crc32 u32 }
    payloads  concatenated, in table order
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass

from ..errors import LayoutError
from .memimage import MemoryImage

MAGIC = b"REPROCKP"
VERSION = 1


@dataclass(frozen=True)
class CheckpointRegion:
    """One entry of the region table."""

    name: str
    dst_addr: int
    size: int
    crc32: int


def write_checkpoint(image: MemoryImage, stream: io.BufferedIOBase) -> int:
    """Serialize a *materialized* memory image; returns bytes written.

    Regions are emitted in ascending DDR address order so the loader's SD
    reads stay sequential.
    """
    if not image.data:
        raise LayoutError(
            "memory image has no materialized regions; build it with "
            "qweights to create a checkpoint"
        )
    named = sorted(image.data.items(),
                   key=lambda kv: image.allocations[kv[0]].start)

    table = []
    for name, payload in named:
        alloc = image.allocations[name]
        if len(payload) != alloc.size:
            raise LayoutError(
                f"region {name!r}: payload {len(payload)} B != allocation "
                f"{alloc.size} B"
            )
        table.append((name, alloc.start, payload))

    written = 0

    def put(data: bytes) -> None:
        nonlocal written
        stream.write(data)
        written += len(data)

    put(MAGIC)
    put(struct.pack("<II", VERSION, len(table)))
    for name, addr, payload in table:
        encoded = name.encode("utf-8")
        put(struct.pack("<H", len(encoded)))
        put(encoded)
        put(struct.pack("<QQI", addr, len(payload), zlib.crc32(payload)))
    for _, _, payload in table:
        put(payload)
    return written


def read_checkpoint(stream: io.BufferedIOBase,
                    verify: bool = True) -> dict[str, tuple[CheckpointRegion, bytes]]:
    """Parse a checkpoint; returns {name: (region meta, payload)}.

    With ``verify`` (the default, as the bare-metal loader should), every
    payload's CRC is checked and a mismatch raises :class:`LayoutError`.
    """
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise LayoutError(f"bad checkpoint magic {magic!r}")
    version, n_regions = struct.unpack("<II", stream.read(8))
    if version != VERSION:
        raise LayoutError(f"unsupported checkpoint version {version}")

    regions: list[CheckpointRegion] = []
    for _ in range(n_regions):
        (name_len,) = struct.unpack("<H", stream.read(2))
        name = stream.read(name_len).decode("utf-8")
        addr, size, crc = struct.unpack("<QQI", stream.read(20))
        regions.append(CheckpointRegion(name, addr, size, crc))

    out: dict[str, tuple[CheckpointRegion, bytes]] = {}
    for region in regions:
        payload = stream.read(region.size)
        if len(payload) != region.size:
            raise LayoutError(f"truncated payload for region {region.name!r}")
        if verify and zlib.crc32(payload) != region.crc32:
            raise LayoutError(f"CRC mismatch in region {region.name!r}")
        out[region.name] = (region, payload)
    return out


def checkpoint_matches_image(parsed: dict, image: MemoryImage) -> bool:
    """True when a parsed checkpoint byte-matches a memory image."""
    if set(parsed) != set(image.data):
        return False
    for name, (region, payload) in parsed.items():
        alloc = image.allocations[name]
        if region.dst_addr != alloc.start or payload != image.data[name]:
            return False
    return True
