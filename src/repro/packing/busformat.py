"""512-bit bus-word primitives.

The concatenated AXI stream delivers 512 bits (64 bytes) per PL cycle;
every DDR-resident structure in the design is sized and aligned in units
of this bus word ("beat").
"""

from __future__ import annotations

from ..errors import LayoutError

BUS_BITS = 512
BUS_BYTES = BUS_BITS // 8


def beats_for(n_bytes: int, bus_bytes: int = BUS_BYTES) -> int:
    """Number of whole bus beats needed to carry ``n_bytes``."""
    if n_bytes < 0:
        raise LayoutError(f"negative byte count {n_bytes}")
    return -(-n_bytes // bus_bytes)


def pad_to_beat(data: bytes, bus_bytes: int = BUS_BYTES) -> bytes:
    """Zero-pad a byte string to a whole number of bus beats."""
    remainder = len(data) % bus_bytes
    if remainder == 0:
        return data
    return data + b"\x00" * (bus_bytes - remainder)


def split_beats(data: bytes, bus_bytes: int = BUS_BYTES) -> list[bytes]:
    """Split a beat-aligned byte string into individual bus words."""
    if len(data) % bus_bytes:
        raise LayoutError(
            f"{len(data)} bytes is not a whole number of {bus_bytes}-byte beats"
        )
    return [data[i : i + bus_bytes] for i in range(0, len(data), bus_bytes)]
