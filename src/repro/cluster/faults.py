"""Deterministic fault injection for replicated serving clusters.

A :class:`FaultSchedule` is a seeded, immutable timeline of replica
faults — crash, hang, slowdown, and interconnect degradation — pinned
to *simulated* timestamps.  Determinism is the whole design: the same
seed replays the same faults against the same trace and produces a
bit-identical cluster report, across every scheduler fast-forward tier
(the engine cuts windows at fault boundaries; see the ``"fault"``
window break reason), so a chaos run is as diffable and regression-
testable as a healthy one.

The schedule compiles per replica into a :class:`ReplicaFaultPlan` of
scheduler-facing actions:

* ``"crash"`` — the replica loses all volatile state at ``start_s``:
  running sequences drop their KV and generated tokens, queued work is
  lost, and arrivals during the outage find nobody listening.  The
  engine logs every killed request (:class:`KilledRequest`) for the
  router to re-dispatch; after ``duration_s`` the replica restarts,
  optionally serving through a warm-up slowdown while caches refill.
* ``"stall"`` — a hang: the replica freezes for ``duration_s`` (a GC
  pause, a driver wedge), then resumes with all state intact.
* ``"slow"`` — degraded service: every prefill/decode step costs
  ``factor``x cycles over ``[start_s, start_s + duration_s)``.  An
  ``interconnect`` fault maps here too — on a TP-sharded replica the
  per-step collectives serialize with compute, so a link running at
  ``1/factor`` bandwidth is conservatively modeled as a replica-wide
  service-rate reduction.
* ``"drain"`` — a *planned* disruption (rolling restart, maintenance):
  admission closes at ``start_s``, running sequences decode on toward
  the ``duration_s`` deadline, and whatever is still in flight then
  checkpoints (:class:`repro.engine.scheduler.MigratedRequest`) for
  the router to hand over to a healthy replica — work moves, nothing
  dies.

Correlated failures ride on a :class:`FailureDomain` topology (racks,
hosts, power feeds): :meth:`FaultSchedule.generate` draws one fault
process per domain and expands each domain event into per-member
events with a shared clock, so a rack outage takes all of its replicas
down together instead of PR 9's independent-crash assumption.

Health tracking (:class:`HealthTracker`) models the router's view: a
fault is *detected* only after ``detection_delay_s`` of missed
queue-clock heartbeats, so arrivals inside the detection window still
route into the failing replica (and come back as kills to retry).
Retry dispatch uses a capped exponential backoff
(:class:`RetryPolicy`) with a per-request budget; the budget exhausted
surfaces as ``FinishReason.FAILED``, never a silent loss.  Degraded-
mode admission (:class:`DegradedModeConfig`) sheds ``best_effort``
then ``batch`` traffic cluster-wide while healthy capacity is reduced.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

#: Event kinds a schedule may carry (validated on construction).
FAULT_KINDS = ("crash", "hang", "slowdown", "interconnect", "drain")

#: Scheduler-facing action kinds a plan expands events into.
ACTION_KINDS = ("crash", "stall", "slow", "drain")


@dataclass(frozen=True)
class FailureDomain:
    """One correlated-failure blast radius — a rack, a host, a power
    feed: the replicas that go down together when the domain does."""

    name: str
    replicas: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "replicas", tuple(self.replicas))
        if not self.replicas:
            raise SimulationError(
                f"failure domain {self.name!r} needs at least one replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise SimulationError(
                f"failure domain {self.name!r} repeats a replica")
        if any(r < 0 for r in self.replicas):
            raise SimulationError(
                f"failure domain {self.name!r} has a negative replica id")


def _domain_map(topology: "tuple[FailureDomain, ...]",
                n_replicas: int) -> dict[int, str]:
    """replica -> domain name; validates disjointness and bounds."""
    names: set[str] = set()
    members: dict[int, str] = {}
    for domain in topology:
        if domain.name in names:
            raise SimulationError(
                f"duplicate failure domain name {domain.name!r}")
        names.add(domain.name)
        for replica in domain.replicas:
            if replica >= n_replicas:
                raise SimulationError(
                    f"domain {domain.name!r} targets replica {replica} "
                    f"of a {n_replicas}-replica cluster")
            if replica in members:
                raise SimulationError(
                    f"replica {replica} belongs to both "
                    f"{members[replica]!r} and {domain.name!r}")
            members[replica] = domain.name
    return members


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault on one replica (see module docstring)."""

    kind: str
    replica: int
    start_s: float
    duration_s: float
    #: service-rate multiplier for ``slowdown``/``interconnect``
    #: (cycles per step scale by this; must be > 1).
    factor: float = 1.0
    #: post-crash warm-up: the restarted replica serves at
    #: ``warmup_factor``x cycles for ``warmup_s`` while caches refill.
    warmup_s: float = 0.0
    warmup_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{FAULT_KINDS}")
        if self.replica < 0:
            raise SimulationError(
                f"fault replica must be >= 0: {self.replica}")
        if self.start_s < 0:
            raise SimulationError(
                f"fault start must be >= 0: {self.start_s}")
        if self.duration_s <= 0:
            raise SimulationError(
                f"fault duration must be positive: {self.duration_s}")
        if self.kind in ("slowdown", "interconnect") and self.factor <= 1:
            raise SimulationError(
                f"{self.kind} factor must be > 1: {self.factor}")
        if self.warmup_s < 0 or self.warmup_factor < 1:
            raise SimulationError(
                "crash warm-up needs warmup_s >= 0 and "
                f"warmup_factor >= 1: {self.warmup_s}/{self.warmup_factor}")

    @property
    def end_s(self) -> float:
        """When the replica is fully healthy again (warm-up included)."""
        end = self.start_s + self.duration_s
        if self.kind == "crash":
            end += self.warmup_s
        return end


@dataclass(frozen=True)
class FaultAction:
    """One scheduler-facing action of a replica's compiled plan."""

    kind: str  # "crash" | "stall" | "slow"
    start_s: float
    duration_s: float
    factor: float = 1.0

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class ReplicaFaultPlan:
    """One replica's action timeline, sorted and non-overlapping."""

    replica: int
    actions: tuple[FaultAction, ...]

    def __post_init__(self) -> None:
        prev_end = -1.0
        for action in self.actions:
            if action.kind not in ACTION_KINDS:
                raise SimulationError(
                    f"unknown fault action {action.kind!r}")
            if action.start_s < prev_end:
                raise SimulationError(
                    f"replica {self.replica}: fault actions overlap at "
                    f"t={action.start_s:.6f}s")
            prev_end = action.end_s


class FaultSchedule:
    """An immutable, validated multi-replica fault timeline."""

    def __init__(self, events: "list[FaultEvent] | tuple[FaultEvent, ...]",
                 seed: int | None = None,
                 topology: "tuple[FailureDomain, ...] | None" = None,
                 ) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(sorted(
            events, key=lambda e: (e.start_s, e.replica)))
        #: the generating seed, carried for provenance only (None for a
        #: hand-built schedule); replay needs just the events.
        self.seed = seed
        #: the failure-domain topology the events were drawn over (if
        #: any) — the router's :class:`HealthTracker` picks it up so
        #: retry rotation and affinity become domain-aware.
        self.topology: tuple[FailureDomain, ...] = \
            tuple(topology) if topology else ()
        if self.topology:
            # Disjointness/uniqueness now; the bounds check against the
            # actual cluster size happens where that size is known
            # (generate(), HealthTracker).
            _domain_map(self.topology,
                        max(r for d in self.topology
                            for r in d.replicas) + 1)
        # Per-replica non-overlap (warm-up included) is what lets the
        # engine keep a single active slowdown/outage at a time.
        for replica in {e.replica for e in self.events}:
            self.plan_for(replica)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultSchedule) \
            and self.events == other.events

    def plan_for(self, replica: int) -> ReplicaFaultPlan:
        """Compile this replica's events into scheduler actions.  A
        crash expands into the outage plus (optionally) a warm-up
        slowdown starting the moment the replica restarts."""
        actions: list[FaultAction] = []
        for event in self.events:
            if event.replica != replica:
                continue
            if event.kind == "crash":
                actions.append(FaultAction(
                    "crash", event.start_s, event.duration_s))
                if event.warmup_s > 0 and event.warmup_factor > 1:
                    actions.append(FaultAction(
                        "slow", event.start_s + event.duration_s,
                        event.warmup_s, event.warmup_factor))
            elif event.kind == "hang":
                actions.append(FaultAction(
                    "stall", event.start_s, event.duration_s))
            elif event.kind == "drain":
                actions.append(FaultAction(
                    "drain", event.start_s, event.duration_s))
            else:  # slowdown / interconnect
                actions.append(FaultAction(
                    "slow", event.start_s, event.duration_s,
                    event.factor))
        actions.sort(key=lambda a: a.start_s)
        return ReplicaFaultPlan(replica, tuple(actions))

    # -- constructors -------------------------------------------------

    @classmethod
    def single_crash(cls, replica: int, at_s: float, downtime_s: float,
                     warmup_s: float = 0.0,
                     warmup_factor: float = 2.0) -> "FaultSchedule":
        """The canonical chaos experiment: one replica crashes once."""
        return cls([FaultEvent("crash", replica, at_s, downtime_s,
                               warmup_s=warmup_s,
                               warmup_factor=warmup_factor)])

    @classmethod
    def generate(cls, n_replicas: int, horizon_s: float, seed: int = 0,
                 mean_gap_s: float | None = None,
                 kind_weights: "dict[str, float] | None" = None,
                 downtime_s: tuple[float, float] = (0.002, 0.01),
                 hang_s: tuple[float, float] = (0.001, 0.005),
                 slow_s: tuple[float, float] = (0.005, 0.02),
                 slow_factor: tuple[float, float] = (1.5, 4.0),
                 warmup_s: float = 0.002,
                 drain_s: tuple[float, float] = (0.005, 0.02),
                 topology: "tuple[FailureDomain, ...] | None" = None,
                 ) -> "FaultSchedule":
        """A seeded random schedule: exponentially spaced faults over
        ``[0, horizon_s)`` with kinds drawn from ``kind_weights``.
        Pure function of its arguments — the deterministic-replay
        contract of the whole subsystem.

        Without ``topology`` every replica runs its own fault process
        (PR 9's independent-failure assumption).  With it, each
        :class:`FailureDomain` runs ONE process whose events expand to
        every member replica with a shared clock — a rack outage takes
        the whole rack down at the same instant — and replicas outside
        any domain keep independent draws.  ``"drain"`` only appears
        when ``kind_weights`` gives it weight (planned disruptions are
        usually placed explicitly, not drawn)."""
        if n_replicas <= 0 or horizon_s <= 0:
            raise SimulationError(
                "generate needs n_replicas >= 1 and horizon_s > 0")
        weights = kind_weights or {"crash": 0.4, "hang": 0.2,
                                   "slowdown": 0.3, "interconnect": 0.1}
        kinds = sorted(weights)
        probs = np.array([weights[k] for k in kinds], dtype=np.float64)
        if (probs < 0).any() or probs.sum() <= 0:
            raise SimulationError("kind_weights must be non-negative "
                                  "with a positive sum")
        probs = probs / probs.sum()
        gap = mean_gap_s if mean_gap_s is not None else horizon_s / 3
        covered = _domain_map(tuple(topology), n_replicas) \
            if topology else {}
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []

        def draw_process(targets: tuple[int, ...]) -> None:
            t = 0.0
            while True:
                t += float(rng.exponential(gap))
                if t >= horizon_s:
                    break
                kind = kinds[int(rng.choice(len(kinds), p=probs))]
                if kind == "crash":
                    duration = float(rng.uniform(*downtime_s))
                    for replica in targets:
                        events.append(FaultEvent(
                            "crash", replica, t, duration,
                            warmup_s=warmup_s))
                    t += duration + warmup_s
                elif kind == "hang":
                    duration = float(rng.uniform(*hang_s))
                    for replica in targets:
                        events.append(FaultEvent(
                            "hang", replica, t, duration))
                    t += duration
                elif kind == "drain":
                    duration = float(rng.uniform(*drain_s))
                    for replica in targets:
                        events.append(FaultEvent(
                            "drain", replica, t, duration))
                    t += duration
                else:
                    duration = float(rng.uniform(*slow_s))
                    factor = float(rng.uniform(*slow_factor))
                    for replica in targets:
                        events.append(FaultEvent(
                            kind, replica, t, duration, factor=factor))
                    t += duration

        # Domain processes first (declaration order), then uncovered
        # replicas ascending: with topology=None this consumes the rng
        # exactly as the pre-topology generator did, so existing seeds
        # replay unchanged.
        for domain in (topology or ()):
            draw_process(tuple(domain.replicas))
        for replica in range(n_replicas):
            if replica not in covered:
                draw_process((replica,))
        return cls(events, seed=seed, topology=topology)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with a per-request retry budget.

    Attempt ``k`` (1-based) of a killed request is re-dispatched
    ``min(cap_s, base_s * multiplier**(k-1))`` after its kill; a
    request killed more than ``budget`` times surfaces as
    ``FinishReason.FAILED`` at its final kill time.
    """

    base_s: float = 0.0005
    multiplier: float = 2.0
    cap_s: float = 0.01
    budget: int = 3

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise SimulationError(
                "retry backoff needs 0 < base_s <= cap_s")
        if self.multiplier < 1:
            raise SimulationError(
                f"retry multiplier must be >= 1: {self.multiplier}")
        if self.budget < 0:
            raise SimulationError(
                f"retry budget must be >= 0: {self.budget}")

    def delay_s(self, attempt: int) -> float:
        if attempt < 1:
            raise SimulationError(
                f"retry attempts are 1-based: {attempt}")
        return min(self.cap_s, self.base_s * self.multiplier
                   ** (attempt - 1))


@dataclass(frozen=True)
class DegradedModeConfig:
    """Cluster-wide load shedding while healthy capacity is reduced.

    Thresholds are healthy-capacity fractions: with fraction ``f``,
    ``best_effort`` arrivals are shed when ``f < shed_best_effort_below``
    and ``batch`` arrivals additionally when ``f < shed_batch_below``.
    Interactive traffic is never shed — protecting it is the point.
    """

    shed_best_effort_below: float = 1.0
    shed_batch_below: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.shed_batch_below
                <= self.shed_best_effort_below <= 1.0):
            raise SimulationError(
                "degraded-mode thresholds need 0 <= shed_batch_below "
                "<= shed_best_effort_below <= 1")

    def shed_classes(self, healthy_fraction: float) -> frozenset:
        if healthy_fraction < self.shed_batch_below:
            return frozenset(("best_effort", "batch"))
        if healthy_fraction < self.shed_best_effort_below:
            return frozenset(("best_effort",))
        return frozenset()


# The engine owns the kill and migration records (it cannot import
# cluster code); re-exported here because callers naturally reach for
# them next to the schedule and the retry policy.
from ..engine.scheduler import (  # noqa: E402,F401
    KilledRequest,
    MigratedRequest,
)


class HealthTracker:
    """The router's health view of a schedule: per-replica unhealthy
    intervals after a detection delay of missed queue-clock heartbeats.

    A crash is detected ``detection_delay_s`` after it starts and the
    replica reads unhealthy until restart *plus warm-up* (a warming
    replica accepts retries only once its service rate recovers); a
    hang long enough to miss heartbeats reads unhealthy until it ends.
    Slowdowns keep heartbeats flowing and stay healthy — they degrade
    goodput, not liveness.  A drain is *planned*: the router knows the
    window in advance, so the replica reads unhealthy over the whole
    ``[start_s, end_s)`` with no detection delay — but a drain is not
    an outage (work hands over, nothing dies), so it joins neither the
    repair ledger nor the degraded spans.

    With a :class:`FailureDomain` topology (passed explicitly or
    carried by the schedule), the tracker also reports per-domain
    health and computes domain-aware retry candidates: never back into
    the blast radius the request just died in, away from partially
    failing domains while clean ones remain, interleaved across
    domains so consecutive attempts spread the risk.
    """

    def __init__(self, schedule: FaultSchedule, n_replicas: int,
                 detection_delay_s: float = 0.0005,
                 topology: "tuple[FailureDomain, ...] | None" = None,
                 ) -> None:
        if n_replicas <= 0:
            raise SimulationError(
                f"n_replicas must be >= 1: {n_replicas}")
        if detection_delay_s < 0:
            raise SimulationError(
                f"detection delay must be >= 0: {detection_delay_s}")
        self.schedule = schedule
        self.n_replicas = n_replicas
        self.detection_delay_s = detection_delay_s
        if topology is None:
            topology = getattr(schedule, "topology", None)
        self.topology: tuple[FailureDomain, ...] = \
            tuple(topology) if topology else ()
        self._domain_of = _domain_map(self.topology, n_replicas)
        #: replica -> merged, sorted (start, end) unhealthy intervals.
        self._unhealthy: dict[int, list[tuple[float, float]]] = \
            {r: [] for r in range(n_replicas)}
        #: crash repair times (fault start -> healthy again), for MTTR.
        self._repairs: list[float] = []
        #: capacity-reducing outage spans (crash incl. warm-up), for
        #: goodput-during-recovery accounting.
        outages: list[tuple[float, float]] = []
        for event in schedule.events:
            if event.replica >= n_replicas:
                raise SimulationError(
                    f"fault targets replica {event.replica} of a "
                    f"{n_replicas}-replica cluster")
            if event.kind == "crash":
                lo = event.start_s + detection_delay_s
                hi = event.end_s
                self._repairs.append(hi - event.start_s)
                outages.append((event.start_s, hi))
            elif event.kind == "hang" \
                    and event.duration_s > detection_delay_s:
                lo = event.start_s + detection_delay_s
                hi = event.start_s + event.duration_s
            elif event.kind == "drain":
                # Planned: no detection delay, no repair, no outage.
                lo = event.start_s
                hi = event.end_s
            else:
                continue
            if hi > lo:
                self._unhealthy[event.replica].append((lo, hi))
        for replica, spans in self._unhealthy.items():
            self._unhealthy[replica] = _merge_spans(spans)
        self._degraded = _merge_spans(outages)
        #: bisect keys per replica (interval starts).
        self._starts = {r: [s for s, _ in spans]
                        for r, spans in self._unhealthy.items()}

    def is_healthy(self, replica: int, t_s: float) -> bool:
        spans = self._unhealthy[replica]
        i = bisect.bisect_right(self._starts[replica], t_s) - 1
        return not (i >= 0 and t_s < spans[i][1])

    def healthy_replicas(self, t_s: float) -> tuple[int, ...]:
        return tuple(r for r in range(self.n_replicas)
                     if self.is_healthy(r, t_s))

    def healthy_fraction(self, t_s: float) -> float:
        return len(self.healthy_replicas(t_s)) / self.n_replicas

    def degraded_spans(self) -> tuple[tuple[float, float], ...]:
        """Cluster-wide capacity-reduced intervals (crash outages plus
        their warm-ups), merged across replicas."""
        return tuple(self._degraded)

    def degraded_time_s(self) -> float:
        return sum(hi - lo for lo, hi in self._degraded)

    def mttr_s(self) -> float | None:
        """Mean time to repair a crash (fault start to fully healthy:
        detection + restart + warm-up); None without crashes."""
        if not self._repairs:
            return None
        return sum(self._repairs) / len(self._repairs)

    # -- failure domains ----------------------------------------------

    def domain_of(self, replica: int) -> str | None:
        """The failure domain ``replica`` belongs to (None outside
        every domain)."""
        return self._domain_of.get(replica)

    def domain_health(self, t_s: float) -> dict[str, float]:
        """domain name -> healthy fraction of its members at ``t_s``."""
        return {
            d.name: sum(1 for r in d.replicas
                        if self.is_healthy(r, t_s)) / len(d.replicas)
            for d in self.topology}

    def retry_candidates(self, t_s: float,
                         died_on: int | None = None) -> tuple[int, ...]:
        """Replicas a retry (or migration handoff) at ``t_s`` should
        rotate over, best first.

        Healthy replicas only; the domain the request just died in is
        excluded outright while survivors exist outside it, and
        partially-unhealthy domains are dropped while fully-clean
        candidates remain.  The result interleaves domains round-robin
        so attempt ``k`` and attempt ``k+1`` land in different blast
        radii.  Falls back gracefully: with every candidate suspect,
        suspicion is ignored; with none at all, the tuple is empty and
        the caller decides (fail, or re-dispatch blind).
        """
        healthy = [r for r in range(self.n_replicas)
                   if self.is_healthy(r, t_s)]
        if not healthy:
            return ()
        if not self._domain_of:
            if died_on is not None:
                kept = [r for r in healthy if r != died_on]
                if kept:
                    return tuple(kept)
            return tuple(healthy)
        bad = self._domain_of.get(died_on) \
            if died_on is not None else None
        if bad is not None:
            outside = [r for r in healthy
                       if self._domain_of.get(r) != bad]
            if outside:
                healthy = outside
        if died_on is not None and died_on in healthy:
            kept = [r for r in healthy if r != died_on]
            if kept:
                healthy = kept
        suspect = {d.name for d in self.topology
                   if any(not self.is_healthy(r, t_s)
                          for r in d.replicas)}
        if suspect:
            clean = [r for r in healthy
                     if self._domain_of.get(r) not in suspect]
            if clean:
                healthy = clean
        # Interleave across domains (ungrouped replicas count as their
        # own singleton domain) so consecutive retries spread out.
        groups: dict[object, list[int]] = {}
        for r in healthy:
            groups.setdefault(self._domain_of.get(r, r), []).append(r)
        ordered = sorted(groups.values(), key=lambda g: g[0])
        out: list[int] = []
        for i in range(max(len(g) for g in ordered)):
            for group in ordered:
                if i < len(group):
                    out.append(group[i])
        return tuple(out)


def _merge_spans(
        spans: "list[tuple[float, float]]",
) -> list[tuple[float, float]]:
    """Sorted union of half-open intervals."""
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted(spans):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
