"""Checkpoint-style KV migration and hedged dispatch policies.

A draining replica (``FaultEvent("drain", ...)``) hands its in-flight
work over instead of losing it: the engine checkpoints each surviving
sequence (:class:`repro.engine.scheduler.MigratedRequest`) and the
router re-admits it on a healthy replica.  :class:`MigrationPolicy`
prices that handoff — serialize the KV checkpoint, push it over the
cluster interconnect (:class:`repro.cluster.interconnect.LinkSpec`),
and re-admit with a prefill that *skips* the transferred positions
(the ``start=`` prefix-skip path), so a migrated request resumes with
its context intact and zero recompute.  The cost is a pure function of
the checkpoint's byte size, which keeps the whole migration timeline
deterministic across scheduler fast-forward tiers.

:class:`HedgePolicy` is the classic tail-tolerance mechanism measured
against the retry-only baseline: a request still waiting for its first
token ``delay_s`` after arrival is duplicated onto a second healthy
failure domain, and whichever copy streams a token first wins — the
loser is cancelled at its first token.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .interconnect import TEN_GIG_ETHERNET, LinkSpec


@dataclass(frozen=True)
class MigrationPolicy:
    """Cost model of one KV-checkpoint handoff between replicas.

    ``handoff_s(kv_bytes)`` = ``serialize_s`` (gather + frame the
    quantized KV codes on the source) + the link's base latency + the
    payload's store-and-forward time.  A queued or just-arrived
    migrant ships zero KV bytes and pays only the fixed terms.
    """

    link: LinkSpec = TEN_GIG_ETHERNET
    #: source-side checkpoint gather/frame time, charged once per
    #: handoff regardless of size (DMA descriptor setup, metadata).
    serialize_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.serialize_s < 0:
            raise SimulationError(
                f"serialize_s must be >= 0: {self.serialize_s}")

    def handoff_s(self, kv_bytes: int) -> float:
        """Checkpoint-to-readmission latency for ``kv_bytes`` of KV."""
        if kv_bytes < 0:
            raise SimulationError(f"kv_bytes must be >= 0: {kv_bytes}")
        return self.serialize_s + self.link.latency_s \
            + kv_bytes / self.link.bandwidth_bytes_per_s


@dataclass(frozen=True)
class HedgePolicy:
    """First-token-wins duplicate dispatch for tail tolerance.

    A request whose first token has not streamed ``delay_s`` after its
    arrival is duplicated onto a healthy replica in a *different*
    failure domain (at most ``max_hedges`` copies per request); the
    first copy to produce a token wins and the loser is cancelled at
    its own first token.  Pick ``delay_s`` from a baseline run's TTFT
    tail — :meth:`from_report` reads the quantile off any report with
    a ``ttft_percentile_s`` method.
    """

    delay_s: float
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.delay_s <= 0:
            raise SimulationError(
                f"hedge delay must be positive: {self.delay_s}")
        if self.max_hedges < 1:
            raise SimulationError(
                f"max_hedges must be >= 1: {self.max_hedges}")

    @classmethod
    def from_report(cls, report, quantile: float = 95.0,
                    max_hedges: int = 1) -> "HedgePolicy":
        """Hedge past the baseline's ``quantile`` TTFT percentile."""
        delay = report.ttft_percentile_s(quantile)
        if delay is None or delay <= 0:
            raise SimulationError(
                "baseline report has no usable TTFT percentile to "
                "derive a hedge delay from")
        return cls(delay_s=float(delay), max_hedges=max_hedges)
