"""TP x DP scaling sweeps: how serving throughput grows with boards.

Replays one synthetic trace through every (tensor-parallel degree,
replica count) grid point on cycle-model backends and records cluster
throughput.  The expected shape on a bandwidth-bound model: TP divides
the per-step weight stream, so throughput rises with TP but sub-
linearly (the interconnect's all-reduce time is the gap the link model
charges); DP multiplies serving capacity near-linearly as replicas
split the queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..engine.scheduler import ContinuousBatchScheduler
from ..engine.trace import iter_synthetic_trace, synthetic_trace
from ..errors import SimulationError
from .interconnect import TEN_GIG_ETHERNET, LinkSpec
from .router import ReplicaRouter
from .tp import ShardedCycleBackend


@dataclass(frozen=True)
class ScalingPoint:
    """One grid point of a scaling sweep."""

    tp: int
    replicas: int
    aggregate_tokens_per_s: float
    #: vs the fewest-board grid point — (tp=1, replicas=1) when swept.
    speedup: float
    total_time_s: float
    mean_batch: float
    comm_step_time_s: float     # interconnect share of one decode step
    kv_budget_tokens: int
    #: boards of the grid point the speedups are measured against.
    baseline_boards: int = 1

    @property
    def n_boards(self) -> int:
        return self.tp * self.replicas

    @property
    def efficiency(self) -> float:
        """Per-board speedup vs the baseline's per-board throughput —
        1.0 is perfect linear scaling."""
        return self.speedup * self.baseline_boards / self.n_boards


def scaling_sweep(model: ModelConfig, quant: QuantConfig,
                  platform: PlatformConfig = KV260,
                  tp_values=(1, 2, 4), dp_values=(1, 2),
                  interconnect: LinkSpec = TEN_GIG_ETHERNET,
                  n_requests: int = 10, max_batch: int = 8,
                  mode: str = "fused", router_policy: str = "round_robin",
                  prompt_len=(6, 12), decode_len=(12, 20),
                  seed: int = 0, telemetry: str = "full",
                  max_steps: int = 1_000_000) -> list[ScalingPoint]:
    """Replay one trace over the TP x DP grid on cycle backends.

    The same trace (same seed) hits every grid point, so points differ
    only in how the cluster splits the work: TP shards every step, DP
    shards the queue.

    ``telemetry != "full"`` streams: every grid point regenerates the
    trace lazily (identical requests — generation is pure in the seed)
    and the replica metrics merge without per-token lists, so the grid
    scales to million-request traces at O(in-flight) memory.
    """
    if not tp_values or not dp_values:
        raise SimulationError("scaling sweep needs tp and dp values")

    def trace_factory():
        return iter_synthetic_trace(
            model, n_requests=n_requests, arrival_rate_rps=1e9,
            prompt_len=prompt_len, decode_len=decode_len, seed=seed)

    trace = synthetic_trace(
        model, n_requests=n_requests, arrival_rate_rps=1e9,
        prompt_len=prompt_len, decode_len=decode_len, seed=seed) \
        if telemetry == "full" else trace_factory
    runs: list[dict] = []
    for tp in tp_values:
        for dp in dp_values:
            backends = [
                ShardedCycleBackend(model, quant, platform, tp=tp,
                                    interconnect=interconnect, mode=mode,
                                    n_slots=max_batch)
                for _ in range(dp)
            ]
            engines = [ContinuousBatchScheduler(b, max_batch=max_batch)
                       for b in backends]
            router = ReplicaRouter(engines, policy=router_policy)
            report = router.run(trace, telemetry=telemetry,
                                max_steps=max_steps)
            comm_s = backends[0].comm.decode_step_cost(
                max(1, round(report.mean_batch))).time_s
            runs.append(dict(
                tp=tp, dp=dp,
                throughput=report.aggregate_tokens_per_s,
                total_time_s=report.total_time_s,
                mean_batch=report.mean_batch,
                comm_step_time_s=comm_s,
                kv_budget_tokens=engines[0].kv_token_budget,
            ))
    # Speedups are relative to the fewest-board configuration in the
    # grid — (tp=1, replicas=1) whenever it was swept — regardless of
    # iteration order.
    baseline = min(runs, key=lambda r: (r["tp"] * r["dp"], r["tp"]))
    return [ScalingPoint(
        tp=r["tp"], replicas=r["dp"],
        aggregate_tokens_per_s=r["throughput"],
        speedup=r["throughput"] / baseline["throughput"],
        total_time_s=r["total_time_s"],
        mean_batch=r["mean_batch"],
        comm_step_time_s=r["comm_step_time_s"],
        kv_budget_tokens=r["kv_budget_tokens"],
        baseline_boards=baseline["tp"] * baseline["dp"],
    ) for r in runs]


def tp_scaling_is_sane(points: list[ScalingPoint]) -> bool:
    """Acceptance shape at fixed DP: throughput strictly rises with TP
    but stays below linear whenever the interconnect charges time."""
    by_dp: dict[int, list[ScalingPoint]] = {}
    for p in points:
        by_dp.setdefault(p.replicas, []).append(p)
    for series in by_dp.values():
        series.sort(key=lambda p: p.tp)
        for prev, cur in zip(series, series[1:]):
            if cur.aggregate_tokens_per_s <= prev.aggregate_tokens_per_s:
                return False
            gain = cur.aggregate_tokens_per_s / prev.aggregate_tokens_per_s
            if cur.comm_step_time_s > 0 and gain >= cur.tp / prev.tp:
                return False
    return True
