"""Tensor-parallel weight and KV partitioning (Megatron-style).

One transformer layer splits across ``tp`` shards without any
mid-layer communication:

* **column-parallel** — Q/K/V (whole heads per shard) and the MLP
  gate/up projections (intermediate channels per shard): the *output*
  rows are divided, every shard reads the full hidden vector;
* **row-parallel** — the attention output projection and the MLP down
  projection: the *input* columns are divided, every shard produces a
  full-width partial sum that the interconnect all-reduces;
* the LM head splits over vocabulary rows (logits are all-gathered);
* norm weights, the embedding table, and all activations between
  layers are replicated.

Each shard's weights therefore stream as ``1/tp`` of the unsharded
image, in the same interleaved superblock format
(:class:`repro.packing.weight_layout.WeightLayoutSpec`) — a shard is
just a smaller matrix.  :func:`shard_quant_params` /
:func:`unshard_quant_params` cut a quantized matrix into per-shard
streams and stitch them back; :func:`validate_shard_tiling` proves the
round trip is bit-exact through the encoded byte streams, i.e. the
shard layouts tile back to the unsharded image.

The KV cache splits with the KV heads: :func:`shard_model_config`
builds the per-shard shape (``hidden/tp``, ``heads/tp`` — head_dim
preserved) that sizes one shard's :class:`QuantizedKVCache` or
:class:`PagedKVCache`, and :func:`validate_kv_tiling` checks the
per-shard head-major address maps partition the unsharded region.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..config import ModelConfig, QuantConfig
from ..errors import ConfigError, LayoutError
from ..numerics.fp16 import fp16
from ..packing.kv_addressing import KVAddressMap
from ..packing.weight_layout import (WeightLayoutSpec, decode_weight_stream,
                                     encode_weight_stream)
from ..quant.groupquant import GroupQuantParams

#: how each canonical projection splits across shards.
PROJECTION_AXES = {
    "wq": "column", "wk": "column", "wv": "column", "wo": "row",
    "w_gate": "column", "w_up": "column", "w_down": "row",
    "lm_head": "column",
}


def validate_tp(model: ModelConfig, tp: int) -> None:
    """Raise unless ``model`` divides evenly into ``tp`` shards."""
    if tp < 1:
        raise ConfigError(f"tensor-parallel degree must be >= 1: {tp}")
    for what, size in (("num_heads", model.num_heads),
                       ("kv_heads", model.kv_heads),
                       ("hidden_size", model.hidden_size),
                       ("intermediate_size", model.intermediate_size),
                       ("vocab_size", model.vocab_size)):
        if size % tp:
            raise ConfigError(
                f"{model.name}: {what} {size} does not divide into "
                f"tp={tp} shards")


def shard_model_config(model: ModelConfig, tp: int) -> ModelConfig:
    """Per-shard shape: heads and channels divided, head_dim preserved.

    This config sizes one shard's KV cache and activations; it is NOT a
    parameter-accounting config (column/row-parallel matrices are
    rectangular — use :func:`shard_stream_params` for byte counts).
    """
    validate_tp(model, tp)
    if tp == 1:
        return model
    return replace(
        model,
        name=f"{model.name}[tp{tp}]",
        hidden_size=model.hidden_size // tp,
        num_heads=model.num_heads // tp,
        num_kv_heads=model.kv_heads // tp,
        intermediate_size=model.intermediate_size // tp,
    )


def projection_shapes(model: ModelConfig, tp: int = 1) -> dict[str, tuple]:
    """``name -> (out_features, in_features)`` of one shard's matrices."""
    validate_tp(model, tp)
    h, kv, inter = model.hidden_size, model.kv_dim, model.intermediate_size
    shapes = {
        "wq": (h // tp, h),
        "wk": (kv // tp, h),
        "wv": (kv // tp, h),
        "wo": (h, h // tp),
        "w_up": (inter // tp, h),
        "w_down": (h, inter // tp),
        "lm_head": (model.vocab_size // tp, h),
    }
    if model.gated_mlp:
        shapes["w_gate"] = (inter // tp, h)
    return shapes


def shard_stream_params(model: ModelConfig, tp: int) -> int:
    """Weight parameters ONE shard streams per decoded token.

    Projections divide ``tp`` ways; the norm weights are replicated and
    stream in full on every shard.  ``tp = 1`` equals
    :meth:`ModelConfig.decode_stream_params` exactly.
    """
    validate_tp(model, tp)
    sharded = model.decode_stream_params() - model.norm_params()
    return sharded // tp + model.norm_params()


def shard_kv_bytes_per_token(model: ModelConfig, tp: int,
                             kv_bits: int = 8) -> int:
    """KV payload bytes one shard appends per token (its KV heads only)."""
    validate_tp(model, tp)
    return 2 * model.num_layers * (model.kv_dim // tp) * kv_bits // 8


# ---------------------------------------------------------------------------
# Sharded quantized-weight streams (packing.weight_layout variants)
# ---------------------------------------------------------------------------


def shard_quant_params(params: GroupQuantParams, tp: int,
                       axis: str) -> list[GroupQuantParams]:
    """Cut one quantized matrix into ``tp`` per-shard matrices.

    ``axis="column"`` splits output rows (codes, scales and zeros slice
    row-wise — always group-aligned).  ``axis="row"`` splits input
    columns, which must land on group boundaries or the per-group
    scale/zero metadata could not be divided.
    """
    if axis not in ("column", "row"):
        raise LayoutError(f"unknown shard axis {axis!r}")
    out, inp = params.codes.shape
    if axis == "column":
        if out % tp:
            raise LayoutError(
                f"{out} output rows do not divide into tp={tp} shards")
        step = out // tp
        return [GroupQuantParams(
            codes=params.codes[s * step:(s + 1) * step],
            scales=params.scales[s * step:(s + 1) * step],
            zeros=params.zeros[s * step:(s + 1) * step],
            bits=params.bits, group_size=params.group_size)
            for s in range(tp)]
    if inp % tp:
        raise LayoutError(
            f"{inp} input columns do not divide into tp={tp} shards")
    step = inp // tp
    if step % params.group_size:
        raise LayoutError(
            f"row-parallel shard width {step} does not land on "
            f"{params.group_size}-wide group boundaries")
    gstep = step // params.group_size
    return [GroupQuantParams(
        codes=params.codes[:, s * step:(s + 1) * step],
        scales=params.scales[:, s * gstep:(s + 1) * gstep],
        zeros=params.zeros[:, s * gstep:(s + 1) * gstep],
        bits=params.bits, group_size=params.group_size)
        for s in range(tp)]


def unshard_quant_params(shards: list[GroupQuantParams],
                         axis: str) -> GroupQuantParams:
    """Stitch per-shard matrices back into the unsharded image."""
    if not shards:
        raise LayoutError("nothing to unshard")
    if axis not in ("column", "row"):
        raise LayoutError(f"unknown shard axis {axis!r}")
    cat = 0 if axis == "column" else 1
    first = shards[0]
    return GroupQuantParams(
        codes=np.concatenate([s.codes for s in shards], axis=cat),
        scales=np.concatenate([s.scales for s in shards], axis=cat),
        zeros=np.concatenate([s.zeros for s in shards], axis=cat),
        bits=first.bits, group_size=first.group_size)


def validate_shard_tiling(params: GroupQuantParams, tp: int, axis: str,
                          spec: WeightLayoutSpec | None = None) -> None:
    """Prove the per-shard interleaved streams tile back bit-exactly.

    Each shard is encoded with :func:`encode_weight_stream`, decoded
    back, and the stitched result compared against the original codes,
    scales and zero points.  Raises :class:`LayoutError` on any
    mismatch — the invariant every TP deployment of the SD-card image
    relies on.
    """
    if spec is None:
        spec = WeightLayoutSpec(weight_bits=params.bits,
                                group_size=params.group_size)
    shards = shard_quant_params(params, tp, axis)
    decoded = []
    for shard in shards:
        stream = encode_weight_stream(shard, spec)
        decoded.append(decode_weight_stream(
            stream, shard.out_features, shard.in_features, spec))
    stitched = unshard_quant_params(decoded, axis)
    if not (np.array_equal(stitched.codes, params.codes)
            and np.array_equal(stitched.scales, params.scales)
            and np.array_equal(stitched.zeros, params.zeros)):
        raise LayoutError(
            f"tp={tp} {axis}-parallel shard streams do not tile back "
            "to the unsharded matrix")


def validate_kv_tiling(model: ModelConfig, quant: QuantConfig,
                       tp: int, context: int | None = None) -> None:
    """Check the per-shard head-major KV regions partition the full one.

    Each shard holds its own KV heads' history; the per-shard address
    map must cover exactly ``1/tp`` of the unsharded region bytes so
    that ``tp`` shard regions tile the single-device image.
    """
    validate_tp(model, tp)
    if context is None:
        context = model.max_context
    full = KVAddressMap(model, quant, max_context=context)
    shard = KVAddressMap(shard_model_config(model, tp), quant,
                         max_context=context)
    if shard.region_bytes * tp != full.region_bytes:
        raise LayoutError(
            f"tp={tp} KV shards cover {shard.region_bytes * tp} bytes, "
            f"unsharded region is {full.region_bytes}")


# ---------------------------------------------------------------------------
# Functional (bit-exact) weight slices
# ---------------------------------------------------------------------------


def _is_pow2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


def functional_reduction_is_exact(model: ModelConfig, tp: int,
                                  lanes: int = 128) -> bool:
    """Whether TP partial-sum reduction reproduces single-device FP16.

    The DOT engine accumulates each output element tile-by-tile
    (``lanes`` inputs per tile) through an FP16 adder tree, then chains
    tile sums in an FP16 register.  A pairwise-tree reduction of shard
    partials (:func:`repro.numerics.fp16.fp16_tree_combine`) lands on
    exactly the same rounding when every row-parallel input width
    (``hidden_size`` for the O projection, ``intermediate_size`` for
    down) decomposes into shard slices aligned with that structure:

    * the whole row fits one tile (``in_f <= lanes``) and both ``in_f``
      and ``tp`` are powers of two — shard partials are subtrees of the
      single adder tree; or
    * the row is exactly two tiles (``in_f == 2 * lanes``) with a
      power-of-two ``tp`` — the two-tile FP16 accumulation chain *is* a
      two-leaf tree, and each tile again decomposes into subtrees.

    Anything wider accumulates 3+ tile sums sequentially, which no tree
    reduction can reproduce; the functional sharded backend refuses
    such configs rather than silently drifting.
    """
    if tp == 1:
        return True
    if not _is_pow2(tp):
        return False
    for in_f in (model.hidden_size, model.intermediate_size):
        if in_f % tp:
            return False
        if in_f <= lanes:
            if not _is_pow2(in_f):
                return False
        elif not (in_f == 2 * lanes and _is_pow2(lanes)):
            return False
    return True


@dataclass
class FunctionalShard:
    """One shard's dequantized FP16 weights plus replicated pieces.

    Matrices are *views* into the full dequantized weights (slicing
    after the FP16 rounding, so shard values are bit-identical to the
    corresponding slice of the single-device matrices).
    """

    rank: int
    tp: int
    config: ModelConfig          # the full model
    shard_config: ModelConfig    # per-shard KV/activation shapes
    mats: list[dict[str, np.ndarray]]
    lm_head: np.ndarray
    embedding: np.ndarray
    norms: list[tuple[np.ndarray, np.ndarray]]
    final_norm: np.ndarray

    @property
    def local_heads(self) -> int:
        return self.config.num_heads // self.tp

    @property
    def local_kv_heads(self) -> int:
        return self.config.kv_heads // self.tp


def shard_functional_weights(qweights, tp: int) -> list[FunctionalShard]:
    """Slice dequantized model weights into ``tp`` functional shards.

    Dequantization happens once for the full model (exactly as
    :class:`repro.model.quantized.QuantizedModel` does), then each
    shard takes row/column views per :data:`PROJECTION_AXES`, so the
    sharded math starts from bit-identical weight values.
    """
    model = qweights.config
    validate_tp(model, tp)
    h, kv, inter = model.hidden_size, model.kv_dim, model.intermediate_size
    full_layers = []
    for layer in qweights.layers:
        full_layers.append({name: fp16(result.effective_weight())
                            for name, result in layer.items()})
    full_head = fp16(qweights.lm_head.effective_weight())
    vocab_rows = full_head.shape[0] // tp

    shards = []
    for rank in range(tp):
        heads = slice(rank * (h // tp), (rank + 1) * (h // tp))
        kv_rows = slice(rank * (kv // tp), (rank + 1) * (kv // tp))
        cols = slice(rank * (h // tp), (rank + 1) * (h // tp))
        ch = slice(rank * (inter // tp), (rank + 1) * (inter // tp))
        mats = []
        for full in full_layers:
            sliced = {
                "wq": full["wq"][heads],
                "wk": full["wk"][kv_rows],
                "wv": full["wv"][kv_rows],
                "wo": full["wo"][:, cols],
                "w_up": full["w_up"][ch],
                "w_down": full["w_down"][:, ch],
            }
            if "w_gate" in full:
                sliced["w_gate"] = full["w_gate"][ch]
            mats.append(sliced)
        shards.append(FunctionalShard(
            rank=rank, tp=tp, config=model,
            shard_config=shard_model_config(model, tp),
            mats=mats,
            lm_head=full_head[rank * vocab_rows:(rank + 1) * vocab_rows],
            embedding=qweights.embedding,
            norms=qweights.norms,
            final_norm=qweights.final_norm,
        ))
    return shards
