"""Tensor-parallel engine backends: N shards + interconnect, one clock.

Three sharded counterparts of the single-device engine backends, all
implementing the :class:`repro.engine.backends.EngineBackend` protocol
so the continuous-batching scheduler drives a TP group exactly like one
accelerator:

* :class:`ShardedCycleBackend` — N identical per-shard cycle models
  (the ``tp``-aware :class:`repro.core.cyclemodel.CycleModel`) plus the
  collective costs of :class:`repro.cluster.interconnect.TPCommModel`.
  Shards run in lock step, so the group's step time is one shard's
  cycles plus the all-reduce/all-gather time.
* :class:`ShardedAnalyticalBackend` — the per-shard roofline (1/tp of
  the weight and KV streams against one board's DRAM bandwidth) plus
  the same collective costs.
* :class:`ShardedFunctionalBackend` — runs the real quantized-model
  math per shard (column-parallel Q/K/V and gate/up, row-parallel O and
  down over each shard's own KV8 cache) and combines the row-parallel
  partial sums with an FP16 pairwise tree
  (:func:`repro.numerics.fp16.fp16_tree_combine`), which reproduces the
  single-device DOT-engine rounding bit for bit on alignment-compatible
  models — so TP=N generation emits the identical token stream as TP=1.

Capacity scales with the cluster: each board stores ``1/tp`` of the
projections (plus replicated embedding/norms) and ``1/tp`` of every
token's KV, so :func:`derive_tp_kv_token_budget` frees far more than
``tp`` times the single-device KV headroom.
"""

from __future__ import annotations

import numpy as np

from ..config import KV260, ModelConfig, PlatformConfig, QuantConfig
from ..core.vpu import VpuSpec
from ..engine.backends import (AnalyticalBackend, CycleModelBackend,
                               TokenOracle, _CycleTimedBackend)
from ..engine.request import RequestState
from ..errors import CapacityError, SimulationError
from ..kv import PagedKVCache, blocks_for_budget
from ..model.kvcache import SlottedKVCache
from ..model.quantized import attend_grouped
from ..numerics.fp16 import (as_fp16_grid, fp16, fp16_matmul_t,
                             fp16_matvec, fp16_tree_combine)
from ..numerics.rmsnorm import batched_two_pass_rmsnorm, two_pass_rmsnorm
from ..numerics.rope import HardwareRope
from ..numerics.silu import hardware_gated_silu, hardware_silu
from .interconnect import TEN_GIG_ETHERNET, LinkSpec, TPCommModel
from .sharding import (FunctionalShard, functional_reduction_is_exact,
                       shard_functional_weights, validate_tp)


def derive_tp_kv_token_budget(model: ModelConfig, quant: QuantConfig,
                              platform: PlatformConfig, tp: int,
                              cap_tokens: int, system=None) -> int:
    """KV tokens one board of a ``tp`` group holds beyond its weights.

    Each shard stores ``1/tp`` of the projections, the full embedding
    table and norm weights (replicated), and ``1/tp`` of every resident
    token's KV — so the per-board budget in *tokens* grows faster than
    linearly with ``tp``: sharding frees weight bytes AND shrinks the
    per-token cost.  ``tp = 1`` matches
    :func:`repro.engine.backends.derive_kv_token_budget` exactly.
    """
    validate_tp(model, tp)
    if system is None:
        from ..runtime.baremetal import BareMetalSystem

        system = BareMetalSystem(platform)
    report = system.capacity_report(model, quant, 1)
    replicated = (model.embedding_params() + model.norm_params()) * 2
    shard_weights = (report.weight_bytes - replicated) / tp + replicated
    per_token = report.kv_bytes / tp
    free = report.dram_bytes - shard_weights - report.reserved_bytes
    if free < per_token:
        raise CapacityError(
            f"{model.name} shard weights leave no KV room on "
            f"{platform.name} at tp={tp}")
    return int(min(free // per_token, cap_tokens))


def _default_paged_blocks(model: ModelConfig, quant: QuantConfig,
                          platform: PlatformConfig, tp: int, n_slots: int,
                          block_size: int,
                          n_kv_blocks: int | None) -> int | None:
    """Size the per-board paged pool from the sharded capacity report."""
    if n_kv_blocks is not None:
        return n_kv_blocks
    budget = derive_tp_kv_token_budget(
        model, quant, platform, tp,
        cap_tokens=n_slots * model.max_context)
    return blocks_for_budget(budget, block_size)


class _ShardedTimingMixin:
    """Adds collective time on top of a per-shard timing backend.

    Requires ``self.comm`` (a :class:`TPCommModel`) and the per-shard
    ``step_cycles`` / ``prefill_cycles`` of the superclass.
    """

    comm: TPCommModel

    def _decode_comm_cycles(self, batch: int) -> float:
        """Memoized ``comm.decode_step_cycles`` — a deterministic
        function of the batch size, queried once per segment by the
        multi-segment fast-forward path, so the collective model runs
        once per distinct batch instead of once per call."""
        memo = getattr(self, "_comm_memo", None)
        if memo is None:
            memo = self._comm_memo = {}
        val = memo.get(batch)
        if val is None:
            val = memo[batch] = self.comm.decode_step_cycles(batch)
        return val

    def step_cycles(self, contexts, fetched=None) -> float:
        return super().step_cycles(contexts, fetched) \
            + self._decode_comm_cycles(len(contexts))

    def prefill_cycles(self, n_tokens: int, start: int = 0) -> float:
        return super().prefill_cycles(n_tokens, start) \
            + self.comm.prefill_cycles(n_tokens - start)

    def _fast_forward_cycles(self, contexts, fetched, n_steps):
        """Per-shard window cycles plus the (batch-constant) collective
        time, added per step in the same order as :meth:`step_cycles`.

        The whole-window add pairs the same operands per step as the
        per-step ``c + comm``, so the floats are unchanged whether the
        superclass returned a list or a vectorized window.
        """
        comm = self._decode_comm_cycles(len(contexts))
        shard = super()._fast_forward_cycles(contexts, fetched, n_steps)
        if n_steps > 1:
            return np.asarray(shard) + comm
        return [c + comm for c in shard]

    def derive_kv_token_budget(self, cap_tokens: int, system=None) -> int:
        return derive_tp_kv_token_budget(
            self.model_config, self.quant, self.platform, self.tp,
            cap_tokens, system=system)


class ShardedCycleBackend(_ShardedTimingMixin, CycleModelBackend):
    """Timing-only TP group: per-shard cycle model + interconnect."""

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, tp: int = 2,
                 interconnect: LinkSpec = TEN_GIG_ETHERNET,
                 mode: str = "fused", n_slots: int = 8,
                 vpu: VpuSpec | None = None, kv_mode: str = "slotted",
                 block_size: int = 16, n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True,
                 token_oracle: TokenOracle | None = None) -> None:
        validate_tp(model_config, tp)
        if kv_mode == "paged":
            n_kv_blocks = _default_paged_blocks(
                model_config, quant, platform, tp, n_slots, block_size,
                n_kv_blocks)
        super().__init__(model_config, quant, platform, mode=mode,
                         n_slots=n_slots, vpu=vpu, kv_mode=kv_mode,
                         block_size=block_size, n_kv_blocks=n_kv_blocks,
                         prefix_sharing=prefix_sharing,
                         token_oracle=token_oracle, tp=tp)
        self.interconnect = interconnect
        self.comm = TPCommModel(model_config, quant, interconnect, tp,
                                self.freq_hz)


class ShardedAnalyticalBackend(_ShardedTimingMixin, AnalyticalBackend):
    """Roofline TP group: per-shard bandwidth/compute + interconnect."""

    def __init__(self, model_config: ModelConfig, quant: QuantConfig,
                 platform: PlatformConfig = KV260, tp: int = 2,
                 interconnect: LinkSpec = TEN_GIG_ETHERNET,
                 n_slots: int = 8, lanes: int = 128,
                 ddr_efficiency: float = 0.95, kv_mode: str = "slotted",
                 block_size: int = 16, n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True,
                 token_oracle: TokenOracle | None = None) -> None:
        validate_tp(model_config, tp)
        if kv_mode == "paged":
            n_kv_blocks = _default_paged_blocks(
                model_config, quant, platform, tp, n_slots, block_size,
                n_kv_blocks)
        super().__init__(model_config, quant, platform, n_slots=n_slots,
                         lanes=lanes, ddr_efficiency=ddr_efficiency,
                         kv_mode=kv_mode, block_size=block_size,
                         n_kv_blocks=n_kv_blocks,
                         prefix_sharing=prefix_sharing,
                         token_oracle=token_oracle, tp=tp)
        self.interconnect = interconnect
        self.comm = TPCommModel(model_config, quant, interconnect, tp,
                                self.freq_hz)


class _ShardWorker:
    """One shard's functional math and KV storage.

    Mirrors :class:`repro.model.quantized.QuantizedModel` over the
    shard's head/channel slices; column-parallel outputs are exact
    slices of the single-device intermediates, row-parallel outputs are
    partial sums the backend tree-combines.
    """

    def __init__(self, shard: FunctionalShard, n_slots: int, kv_mode: str,
                 block_size: int, n_kv_blocks: int | None, kv_bits: int,
                 prefix_sharing: bool, lanes: int = 128) -> None:
        self.shard = shard
        self.lanes = lanes
        cfg = shard.config
        self.rope = HardwareRope(cfg.head_dim, cfg.rope_theta)
        group = cfg.num_heads // cfg.kv_heads
        self._head_map = np.repeat(np.arange(shard.local_kv_heads), group)
        self._inv_sqrt_d = fp16(1.0 / np.sqrt(cfg.head_dim)) \
            .astype(np.float32)
        # Float32 copies carrying the FP16-grid weight values — the
        # tiled kernels' native representation (shard.mats stays float16
        # for the tiling validators).
        # (in, out)-contiguous float32 weights for the transposed matmul
        # kernel (shard.mats stays float16 for the tiling validators).
        self._mats32_t = [
            {name: as_fp16_grid(np.asarray(mat, dtype=np.float32).T)
             for name, mat in layer.items()}
            for layer in shard.mats]
        self._lm_head32 = as_fp16_grid(shard.lm_head)
        self._lm_head32_t = as_fp16_grid(self._lm_head32.T)
        if kv_mode == "paged":
            assert n_kv_blocks is not None
            self.kv: PagedKVCache | SlottedKVCache = PagedKVCache(
                shard.shard_config, n_kv_blocks, block_size,
                kv_bits=kv_bits, store_data=True,
                prefix_sharing=prefix_sharing)
        else:
            self.kv = SlottedKVCache(shard.shard_config, n_slots, kv_bits)

    def _matvec(self, mat: np.ndarray, x: np.ndarray) -> np.ndarray:
        return fp16_matvec(mat, x, lanes=self.lanes)

    def _matmul_t(self, mat_t: np.ndarray, x: np.ndarray) -> np.ndarray:
        return fp16_matmul_t(mat_t, x, lanes=self.lanes)

    def _attend_many(self, layer_idx: int, q: np.ndarray, caches,
                     lengths) -> np.ndarray:
        """All local heads' scaled-dot attention for several rows.

        One shared implementation with the single-device model
        (:func:`repro.model.quantized.attend_grouped`), over this
        shard's local heads — global and local GQA offsets cancel per
        shard, so the local head map is exact.
        """
        return attend_grouped(q, caches, layer_idx, lengths,
                              self._head_map, self._inv_sqrt_d,
                              lanes=self.lanes)

    def attention_partial_batch(self, layer_idx: int, x: np.ndarray,
                                caches, positions) -> np.ndarray:
        """This shard's row-parallel O partials for a stack of tokens.

        ``x`` is (n, hidden) with one cache view and position per row —
        either n concurrent sequences (decode) or n prompt positions of
        one sequence (prefill; same view repeated, appends land before
        any row attends, which matches the sequential order because
        appends only extend the history a causal slice never reads).
        """
        cfg = self.shard.config
        d = cfg.head_dim
        mats = self._mats32_t[layer_idx]
        input_norm, _ = self.shard.norms[layer_idx]
        normed = batched_two_pass_rmsnorm(x, input_norm, cfg.norm_eps)

        local_heads = self.shard.local_heads
        local_kv = self.shard.local_kv_heads
        q = self._matmul_t(mats["wq"], normed.T).T \
            .reshape(-1, local_heads, d)
        k = self._matmul_t(mats["wk"], normed.T).T.reshape(-1, local_kv, d)
        v = self._matmul_t(mats["wv"], normed.T).T.reshape(-1, local_kv, d)
        q = self.rope.apply_many(q, positions)
        k = self.rope.apply_many(k, positions)
        for i, (cache, position) in enumerate(zip(caches, positions)):
            cache.append(layer_idx, k[i], v[i], position)
        attn = self._attend_many(layer_idx, q, caches,
                                 [p + 1 for p in positions])
        return self._matmul_t(mats["wo"], attn.T).T

    def mlp_partial_batch(self, layer_idx: int, x: np.ndarray) -> np.ndarray:
        """This shard's row-parallel down partials: ``x`` is (n, hidden)."""
        cfg = self.shard.config
        mats = self._mats32_t[layer_idx]
        _, post_norm = self.shard.norms[layer_idx]
        normed = batched_two_pass_rmsnorm(x, post_norm, cfg.norm_eps)
        up = self._matmul_t(mats["w_up"], normed.T)
        if cfg.gated_mlp:
            gate = self._matmul_t(mats["w_gate"], normed.T)
            hidden = hardware_gated_silu(gate, up)
        else:
            hidden = hardware_silu(up)
        return self._matmul_t(mats["w_down"], hidden).T

    def head_partial(self, normed: np.ndarray) -> np.ndarray:
        """This shard's vocabulary slice of the logits."""
        return self._matvec(self._lm_head32, normed)

    def head_partial_batch(self, normed: np.ndarray) -> np.ndarray:
        """Vocabulary-slice logits for a stack: (n, vocab / tp)."""
        return self._matmul_t(self._lm_head32_t, normed.T).T


class ShardedFunctionalBackend(_ShardedTimingMixin, _CycleTimedBackend):
    """Bit-exact functional TP group over per-shard KV8 caches.

    Token streams are identical to the single-device
    :class:`repro.engine.backends.FunctionalBackend` (the FP16 tree
    reduction reproduces the DOT engine's rounding); timing is the
    per-shard cycle model plus interconnect, the sharded analogue of
    how the single-device functional backend is timed.
    """

    def __init__(self, qweights, platform: PlatformConfig = KV260,
                 tp: int = 2, interconnect: LinkSpec = TEN_GIG_ETHERNET,
                 mode: str = "fused", n_slots: int = 8,
                 kv_mode: str = "slotted", block_size: int = 16,
                 n_kv_blocks: int | None = None,
                 prefix_sharing: bool = True, lanes: int = 128,
                 allow_inexact: bool = False) -> None:
        model = qweights.config
        validate_tp(model, tp)
        if not allow_inexact \
                and not functional_reduction_is_exact(model, tp, lanes):
            raise SimulationError(
                f"{model.name} at tp={tp} does not align with the "
                f"{lanes}-lane FP16 accumulation tree, so sharded "
                "partial sums would not be bit-identical to one device; "
                "pass allow_inexact=True to accept drifting tokens")
        if kv_mode == "paged":
            n_kv_blocks = _default_paged_blocks(
                model, qweights.quant, platform, tp, n_slots, block_size,
                n_kv_blocks)
        super().__init__(model, qweights.quant, platform, mode, n_slots,
                         kv_mode=kv_mode, block_size=block_size,
                         n_kv_blocks=n_kv_blocks,
                         prefix_sharing=prefix_sharing,
                         store_kv_data=False, tp=tp)
        self.interconnect = interconnect
        self.comm = TPCommModel(model, qweights.quant, interconnect, tp,
                                self.freq_hz)
        if kv_mode == "paged":
            assert self.paged_kv is not None
            n_kv_blocks = self.paged_kv.n_total_blocks
        self.workers = [
            _ShardWorker(shard, n_slots, kv_mode, block_size, n_kv_blocks,
                         qweights.quant.kv_bits, prefix_sharing, lanes)
            for shard in shard_functional_weights(qweights, tp)
        ]
        self.embedding = qweights.embedding
        self.final_norm = qweights.final_norm

    # -- KV mirroring -------------------------------------------------------

    def admit(self, state: RequestState) -> None:
        super().admit(state)  # the accounting twin decides admission
        tokens = state.sequence_tokens()
        for worker in self.workers:
            if isinstance(worker.kv, PagedKVCache):
                slot = worker.kv.allocate(tokens)
            else:
                slot = worker.kv.allocate()
            # Same allocator, same call sequence: shard slot ids must
            # mirror the accounting twin's, or workers would read the
            # wrong sequence's KV.
            if slot != state.slot:
                raise SimulationError(
                    f"shard {worker.shard.rank}: slot {slot} diverged "
                    f"from the accounting twin's {state.slot}")

    def release(self, state: RequestState) -> None:
        slot = state.slot
        super().release(state)
        for worker in self.workers:
            worker.kv.free(slot)

    # -- functional math ----------------------------------------------------

    def _embed(self, token: int) -> np.ndarray:
        if not 0 <= token < self.model_config.vocab_size:
            raise SimulationError(f"token {token} outside vocabulary")
        return self.embedding[token]

    def _forward_rows(self, tokens, view_rows, positions) -> np.ndarray:
        """A stack of tokens through every shard; all-reduces per layer.

        ``view_rows[i]`` holds one KV view per shard for row ``i`` —
        distinct sequences for a batched decode step, or the same
        sequence repeated for a prefill's prompt positions.  The
        projections of all rows ride one matmul per shard per weight
        matrix; the FP16 tree-combine of the row-parallel partials is
        elementwise, so each row reduces exactly as it would alone.
        Returns the final (n, hidden) hidden states.
        """
        x = fp16(np.stack([self._embed(t) for t in tokens]))
        for layer in range(self.model_config.num_layers):
            partials = [
                w.attention_partial_batch(
                    layer, x, [row[i] for row in view_rows], positions)
                for i, w in enumerate(self.workers)]
            out = fp16_tree_combine(partials)
            x = fp16(x.astype(np.float32) + out.astype(np.float32))
            partials = [w.mlp_partial_batch(layer, x)
                        for w in self.workers]
            out = fp16_tree_combine(partials)
            x = fp16(x.astype(np.float32) + out.astype(np.float32))
        return x

    # -- EngineBackend ------------------------------------------------------

    def prefill(self, state: RequestState) -> float:
        if state.slot is None:
            raise SimulationError(
                f"request {state.request_id} not admitted")
        tokens = state.sequence_tokens()
        if len(tokens) > self.model_config.max_context:
            raise SimulationError(
                f"request {state.request_id}: {len(tokens)} tokens exceed "
                f"the {self.model_config.max_context}-token context")
        cached = self._cached_prefix(state)
        positions = list(range(cached, len(tokens)))
        views = [w.kv.view(state.slot) for w in self.workers]
        hidden = self._forward_rows([tokens[p] for p in positions],
                                    [views] * len(positions), positions)
        normed = two_pass_rmsnorm(hidden[-1], self.final_norm,
                                  self.model_config.norm_eps)
        # All-gather of the vocabulary-sharded logits (last position only
        # — its forward seeds the first sample).
        logits = np.concatenate([w.head_partial(normed)
                                 for w in self.workers])
        if self.paged_kv is not None:
            # The accounting twin has no data path: charge its occupancy
            # explicitly, then publish the prefix on every cache.
            self.paged_kv.advance(state.slot, len(tokens) - cached)
            self.paged_kv.commit_prefix(state.slot, tokens)
            for worker in self.workers:
                worker.kv.commit_prefix(state.slot, tokens)
        state.logits = logits
        state.position = len(tokens)
        return self.prefill_cycles(len(tokens), start=cached)

    def sample(self, state: RequestState) -> int:
        if state.logits is None:
            raise SimulationError(
                f"request {state.request_id} has no logits to sample")
        sampler = state.request.sampler
        if sampler is None:
            return int(np.argmax(state.logits))
        return sampler.sample(state.logits)

    def decode_batch(self, states) -> float:
        contexts = [s.context for s in states]
        cycles = self.step_cycles(contexts, self._fetch_plan(states,
                                                             contexts))
        for state in states:
            if state.slot is None:
                raise SimulationError(
                    f"request {state.request_id} not admitted")
        view_rows = [[w.kv.view(s.slot) for w in self.workers]
                     for s in states]
        hidden = self._forward_rows([s.pending_token for s in states],
                                    view_rows,
                                    [s.position for s in states])
        normed = batched_two_pass_rmsnorm(hidden, self.final_norm,
                                          self.model_config.norm_eps)
        # All-gather of the vocabulary-sharded logits, whole batch.
        logits = np.concatenate([w.head_partial_batch(normed)
                                 for w in self.workers], axis=1)
        for i, state in enumerate(states):
            state.logits = logits[i]
            if self.paged_kv is not None:
                self.paged_kv.advance(state.slot)
            state.position += 1
        return cycles
