"""repro.cluster — multi-accelerator serving.

The fourth architectural layer (device -> engine -> cluster): shard one
model across N boards with tensor parallelism, charge the interconnect
for the partial-sum collectives, and replicate whole engines behind a
data-parallel router.

* :mod:`repro.cluster.sharding`     — TP weight/KV partitioning and the
  tiling validation back to the unsharded image.
* :mod:`repro.cluster.interconnect` — link model (bandwidth, latency,
  ring vs all-to-all) and per-step collective costs.
* :mod:`repro.cluster.tp`           — sharded engine backends (cycle,
  analytical, and the bit-exact functional group).
* :mod:`repro.cluster.router`       — replica routing and merged
  cluster serving reports.
* :mod:`repro.cluster.sweep`        — TP x DP scaling sweeps.

Quickstart::

    from repro import LLAMA2_7B, W4A16_KV8
    from repro.cluster import ShardedCycleBackend, TEN_GIG_ETHERNET
    from repro.engine import ContinuousBatchScheduler, synthetic_trace

    backend = ShardedCycleBackend(LLAMA2_7B, W4A16_KV8, tp=2,
                                  interconnect=TEN_GIG_ETHERNET)
    engine = ContinuousBatchScheduler(backend, max_batch=8)
    report = engine.run(synthetic_trace(LLAMA2_7B, n_requests=16))
    print(report.aggregate_tokens_per_s)   # ~2x one board, minus comm
"""

from .interconnect import (
    AURORA_MESH,
    GIG_ETHERNET,
    INTERCONNECT_PRESETS,
    TEN_GIG_ETHERNET,
    CollectiveCost,
    LinkSpec,
    TPCommModel,
    all_gather_cost,
    all_reduce_cost,
)
from .faults import (
    ACTION_KINDS,
    FAULT_KINDS,
    DegradedModeConfig,
    FailureDomain,
    FaultAction,
    FaultEvent,
    FaultSchedule,
    HealthTracker,
    KilledRequest,
    MigratedRequest,
    ReplicaFaultPlan,
    RetryPolicy,
)
from .migration import HedgePolicy, MigrationPolicy
from .router import (
    POLICIES,
    ClusterServeReport,
    ReplicaRouter,
    StreamedClusterReport,
    merge_reports,
)
from .sharding import (
    PROJECTION_AXES,
    FunctionalShard,
    functional_reduction_is_exact,
    projection_shapes,
    shard_functional_weights,
    shard_kv_bytes_per_token,
    shard_model_config,
    shard_quant_params,
    shard_stream_params,
    unshard_quant_params,
    validate_kv_tiling,
    validate_shard_tiling,
    validate_tp,
)
from .sweep import ScalingPoint, scaling_sweep, tp_scaling_is_sane
from .tp import (
    ShardedAnalyticalBackend,
    ShardedCycleBackend,
    ShardedFunctionalBackend,
    derive_tp_kv_token_budget,
)

__all__ = [
    "ACTION_KINDS",
    "AURORA_MESH",
    "ClusterServeReport",
    "CollectiveCost",
    "DegradedModeConfig",
    "FAULT_KINDS",
    "FailureDomain",
    "FaultAction",
    "FaultEvent",
    "FaultSchedule",
    "FunctionalShard",
    "GIG_ETHERNET",
    "HealthTracker",
    "HedgePolicy",
    "INTERCONNECT_PRESETS",
    "KilledRequest",
    "LinkSpec",
    "MigratedRequest",
    "MigrationPolicy",
    "POLICIES",
    "PROJECTION_AXES",
    "ReplicaFaultPlan",
    "ReplicaRouter",
    "RetryPolicy",
    "ScalingPoint",
    "ShardedAnalyticalBackend",
    "ShardedCycleBackend",
    "ShardedFunctionalBackend",
    "StreamedClusterReport",
    "TEN_GIG_ETHERNET",
    "TPCommModel",
    "all_gather_cost",
    "all_reduce_cost",
    "derive_tp_kv_token_budget",
    "functional_reduction_is_exact",
    "merge_reports",
    "projection_shapes",
    "scaling_sweep",
    "shard_functional_weights",
    "shard_kv_bytes_per_token",
    "shard_model_config",
    "shard_quant_params",
    "shard_stream_params",
    "tp_scaling_is_sane",
    "unshard_quant_params",
    "validate_kv_tiling",
    "validate_shard_tiling",
    "validate_tp",
]
