"""Data-parallel replica routing over independent serving engines.

A replica is one :class:`repro.engine.ContinuousBatchScheduler` (whose
backend may itself be a tensor-parallel group, giving a TP x DP grid).
The router assigns every incoming request to exactly one replica before
the replay starts — the moment a real front-end would make the same
decision — then runs each replica's engine over its share of the trace
and merges the per-replica :class:`ServeReport` objects into one
cluster view.

Policies:

* ``round_robin``   — strict rotation; uniform and stateless.
* ``least_loaded``  — join the replica with the least outstanding work
  (queued prompt + decode-budget tokens), the classic join-shortest-
  queue approximation.
* ``prefix_affinity`` — hash the leading prompt window so requests
  sharing a system prompt land on the replica whose
  :class:`repro.kv.PrefixCache` already holds those blocks; requests
  with no shareable prefix fall back to least-loaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.request import Request
from ..engine.scheduler import ContinuousBatchScheduler, ServeReport
from ..errors import SimulationError

POLICIES = ("round_robin", "least_loaded", "prefix_affinity")


def _affinity_key(prompt: tuple, window: int) -> int:
    """Stable hash of the leading ``window`` prompt tokens.

    Never covers the final prompt token, mirroring the prefix cache's
    sharing rule — a 2-token prompt has no shareable prefix at all.
    """
    head = prompt[:min(window, len(prompt) - 1)]
    h = 0
    for token in head:
        h = (h * 1000003 + 1 + token) & 0xFFFFFFFFFFFF
    return h


@dataclass
class ClusterServeReport(ServeReport):
    """Merged serving metrics of a replicated engine run.

    Inherits every :class:`ServeReport` metric over the union of the
    replicas' results; ``total_time_s`` is the cluster makespan (the
    slowest replica), so ``aggregate_tokens_per_s`` is genuine cluster
    throughput.
    """

    replica_reports: list[ServeReport] = field(default_factory=list)
    #: request_id -> replica index, as routed.
    assignments: dict[int, int] = field(default_factory=dict)

    @property
    def n_replicas(self) -> int:
        return len(self.replica_reports)

    def replica_request_counts(self) -> list[int]:
        return [len(r.results) for r in self.replica_reports]


def merge_reports(reports: list[ServeReport],
                  assignments: dict[int, int]) -> ClusterServeReport:
    """Fold per-replica reports into one cluster report."""
    if not reports:
        raise SimulationError("no replica reports to merge")
    results = sorted((res for r in reports for res in r.results),
                     key=lambda res: res.request_id)
    return ClusterServeReport(
        results=results,
        total_time_s=max(r.total_time_s for r in reports),
        n_steps=sum(r.n_steps for r in reports),
        preemptions=sum(r.preemptions for r in reports),
        max_batch_observed=max(r.max_batch_observed for r in reports),
        step_batches=[b for r in reports for b in r.step_batches],
        replica_reports=list(reports),
        assignments=dict(assignments),
    )


class ReplicaRouter:
    """Routes requests across replicas and drives their engines."""

    def __init__(self, engines: list[ContinuousBatchScheduler],
                 policy: str = "round_robin",
                 affinity_window: int = 16) -> None:
        # ``affinity_window``: leading tokens hashed by prefix_affinity.
        # Keep it at or below the shared system-prompt length (the
        # default matches the default KV block size) — a wider window
        # mixes per-request tail tokens into the key and scatters
        # sharers across replicas.
        if not engines:
            raise SimulationError("router needs at least one replica")
        if policy not in POLICIES:
            raise SimulationError(
                f"unknown routing policy {policy!r}; choose from "
                f"{POLICIES}")
        if affinity_window <= 0:
            raise SimulationError(
                f"affinity window must be positive: {affinity_window}")
        self.engines = engines
        self.policy = policy
        self.affinity_window = affinity_window
        self._rr_next = 0
        self._load = [0] * len(engines)
        self.assignments: dict[int, int] = {}

    @property
    def n_replicas(self) -> int:
        return len(self.engines)

    def _least_loaded(self) -> int:
        return min(range(self.n_replicas), key=lambda i: (self._load[i], i))

    def route(self, request: Request) -> int:
        """Pick a replica for ``request`` and record the assignment."""
        if request.request_id in self.assignments:
            raise SimulationError(
                f"request {request.request_id} was already routed")
        if self.policy == "round_robin":
            replica = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.n_replicas
        elif self.policy == "least_loaded":
            replica = self._least_loaded()
        else:  # prefix_affinity
            if len(request.prompt) > 1:
                replica = _affinity_key(request.prompt,
                                        self.affinity_window) \
                    % self.n_replicas
            else:
                replica = self._least_loaded()
        self._load[replica] += len(request.prompt) + request.max_new_tokens
        self.assignments[request.request_id] = replica
        return replica

    def run(self, requests) -> ClusterServeReport:
        """Route every request, run each replica's engine, merge.

        Like :meth:`ContinuousBatchScheduler.run`, each call is a fresh
        replay: routing state from earlier calls (or manual
        :meth:`route` invocations) is discarded.
        """
        self._rr_next = 0
        self._load = [0] * self.n_replicas
        self.assignments = {}
        shares: list[list[Request]] = [[] for _ in range(self.n_replicas)]
        for request in sorted(requests, key=lambda r: r.arrival_s):
            shares[self.route(request)].append(request)
        reports = [engine.run(share)
                   for engine, share in zip(self.engines, shares)]
        return merge_reports(reports, self.assignments)
