"""Data-parallel replica routing over independent serving engines.

A replica is one :class:`repro.engine.ContinuousBatchScheduler` (whose
backend may itself be a tensor-parallel group, giving a TP x DP grid).
The router assigns every incoming request to exactly one replica before
the replay starts — the moment a real front-end would make the same
decision — then runs each replica's engine over its share of the trace
and merges the per-replica :class:`ServeReport` objects into one
cluster view.

Policies:

* ``round_robin``   — strict rotation; uniform and stateless.
* ``least_loaded``  — join the replica with the least outstanding work
  (queued prompt + decode-budget tokens), the classic join-shortest-
  queue approximation.  The load ledger is a running counter updated
  in O(1) per routed request; it always equals what re-summing every
  assignment would give (pinned in the router tests).
* ``prefix_affinity`` — hash the leading prompt window so requests
  sharing a system prompt land on the replica whose
  :class:`repro.kv.PrefixCache` already holds those blocks; requests
  with no shareable prefix fall back to least-loaded.

Streaming: :meth:`ReplicaRouter.run` also accepts a zero-argument
*trace factory* returning a fresh request iterator.  Routing is a
deterministic state machine over the arrival sequence, so each replica
replays the factory once and keeps only its own share — a
million-request cluster sweep never materializes the trace, and the
per-replica streamed reports merge without per-token lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

import numpy as np

from ..engine.request import FinishReason, Request, ResumeSpec
from ..engine.scheduler import (ContinuousBatchScheduler, KilledRequest,
                                MigratedRequest)
from ..engine.telemetry import (RequestResult, ServeReport,
                                StreamedServeReport, TenantStats,
                                merge_tenant_accumulators,
                                merge_window_stats, summarize_tenants,
                                tenant_stats_from_results)
from ..errors import SimulationError
from ..stats import merge_sorted, percentile_of_runs, percentile_of_sorted
from .faults import (DegradedModeConfig, FaultSchedule, HealthTracker,
                     RetryPolicy)
from .migration import HedgePolicy, MigrationPolicy

POLICIES = ("round_robin", "least_loaded", "prefix_affinity")

#: a materialized trace or a factory yielding a fresh iterator per call.
TraceLike = Iterable[Request] | Callable[[], Iterable[Request]]


def _affinity_key(prompt: tuple, window: int) -> int:
    """Stable hash of the leading ``window`` prompt tokens.

    Never covers the final prompt token, mirroring the prefix cache's
    sharing rule — a 2-token prompt has no shareable prefix at all.
    """
    head = prompt[:min(window, len(prompt) - 1)]
    h = 0
    for token in head:
        h = (h * 1000003 + 1 + token) & 0xFFFFFFFFFFFF
    return h


class _RoutingState:
    """The pure routing state machine: policy + O(1) load ledger.

    Deterministic over the request sequence, which is what lets a
    streamed run rebuild identical assignments on every replica's
    private pass over the trace factory.
    """

    def __init__(self, n_replicas: int, policy: str,
                 affinity_window: int,
                 health: HealthTracker | None = None) -> None:
        self.n_replicas = n_replicas
        self.policy = policy
        self.affinity_window = affinity_window
        #: router's health view (fault runs only): requests route away
        #: from replicas known-unhealthy at their arrival.  None keeps
        #: the fault-free fast path byte-identical.
        self.health = health
        self.rr_next = 0
        #: outstanding routed work per replica (prompt + decode budget
        #: tokens), maintained incrementally — never re-summed.
        self.loads = [0] * n_replicas

    def _least_loaded(self,
                      candidates: "tuple[int, ...] | None" = None) -> int:
        pool = range(self.n_replicas) if candidates is None \
            else candidates
        return min(pool, key=lambda i: (self.loads[i], i))

    def route(self, request: Request) -> int:
        healthy: tuple[int, ...] | None = None
        if self.health is not None:
            healthy = self.health.healthy_replicas(request.arrival_s)
            if not healthy or len(healthy) == self.n_replicas:
                # Nobody healthy routes like everybody healthy: the
                # request lands somewhere, dies there, and comes back
                # through the retry machinery.
                healthy = None
        if self.policy == "round_robin":
            replica = self.rr_next
            if healthy is not None:
                up = set(healthy)
                for off in range(self.n_replicas):
                    cand = (self.rr_next + off) % self.n_replicas
                    if cand in up:
                        replica = cand
                        break
            self.rr_next = (replica + 1) % self.n_replicas
        elif self.policy == "least_loaded":
            replica = self._least_loaded(healthy)
        else:  # prefix_affinity
            if len(request.prompt) > 1:
                replica = _affinity_key(request.prompt,
                                        self.affinity_window) \
                    % self.n_replicas
                if healthy is not None and replica not in healthy:
                    # The affinity target is down: land on the least
                    # loaded survivor (its prefix cache warms there),
                    # preferring one outside the target's failure
                    # domain — a rack-level fault is likely to take the
                    # target's neighbours down next.
                    pool = healthy
                    bad = self.health.domain_of(replica)
                    if bad is not None:
                        outside = tuple(
                            r for r in healthy
                            if self.health.domain_of(r) != bad)
                        if outside:
                            pool = outside
                    replica = self._least_loaded(pool)
            else:
                replica = self._least_loaded(healthy)
        self.loads[replica] += len(request.prompt) \
            + request.max_new_tokens
        return replica


@dataclass
class ClusterServeReport(ServeReport):
    """Merged serving metrics of a replicated engine run.

    Inherits every :class:`ServeReport` metric over the union of the
    replicas' results; ``total_time_s`` is the cluster makespan (the
    slowest replica), so ``aggregate_tokens_per_s`` is genuine cluster
    throughput.
    """

    replica_reports: list[ServeReport] = field(default_factory=list)
    #: request_id -> replica index, as routed.
    assignments: dict[int, int] = field(default_factory=dict)
    #: resilience metrics of a fault-injected run (kills, retries,
    #: failures, shedding, MTTR, goodput during recovery); None on a
    #: fault-free run.
    resilience: dict | None = None

    @property
    def n_replicas(self) -> int:
        return len(self.replica_reports)

    def replica_request_counts(self) -> list[int]:
        return [len(r.results) for r in self.replica_reports]

    def _sorted_decode_latencies(self) -> list[float]:
        """K-way merge of the replicas' already-sorted latency caches
        (:func:`repro.stats.merge_sorted`) — the replicas partition the
        cluster's results, so the merge IS the sorted union, without
        re-sorting it from scratch."""
        if self._decode_lat_sorted is None:
            if self.replica_reports:
                self._decode_lat_sorted = merge_sorted(
                    [r._sorted_decode_latencies()
                     for r in self.replica_reports])
            else:
                self._decode_lat_sorted = sorted(
                    s for r in self.results for s in r.decode_step_s)
        return self._decode_lat_sorted

    def _sorted_ttfts(self) -> list[float]:
        if self._ttft_sorted is None:
            if self.replica_reports:
                self._ttft_sorted = merge_sorted(
                    [r._sorted_ttfts() for r in self.replica_reports])
            else:
                self._ttft_sorted = sorted(
                    r.ttft_s for r in self.results
                    if r.ttft_s is not None)
        return self._ttft_sorted


class StreamedClusterReport:
    """Cluster merge of per-replica :class:`StreamedServeReport`\\ s.

    Aggregates fold without expanding anything: counters add, the
    decode-latency runs concatenate (still run-length), sorted TTFT
    caches k-way merge through :func:`repro.stats.merge_sorted`, and at
    ``"sketch"`` level the per-replica t-digests merge into one cluster
    digest (digests are mergeable by construction, preserving the
    documented rank-error bound).  Per-request results materialize
    lazily at ``"windows"`` and ``"full"`` levels.
    """

    def __init__(self, reports: list[StreamedServeReport],
                 assignments: dict[int, int] | None = None,
                 extra_results: list[RequestResult] | None = None,
                 resilience: dict | None = None) -> None:
        if not reports:
            raise SimulationError("no replica reports to merge")
        self.replica_reports = reports
        self.assignments = dict(assignments or {})
        #: router-synthesized results no replica ever saw: requests
        #: shed by degraded-mode admission (REJECTED) and requests that
        #: exhausted their retry budget (FAILED).  Zero tokens and no
        #: TTFT either way, so only counts and result listings change.
        self.extra_results = list(extra_results or [])
        #: resilience metrics of a fault-injected run; None otherwise.
        self.resilience = resilience
        self.telemetry = reports[0].telemetry
        self.total_time_s = max(r.total_time_s for r in reports)
        self.n_steps = sum(r.n_steps for r in reports)
        self.preemptions = sum(r.preemptions for r in reports)
        self.max_batch_observed = max(r.max_batch_observed
                                      for r in reports)
        self.window_stats = merge_window_stats(
            [r.window_stats for r in reports])
        #: per-class stats merge additively: accumulators concatenate
        #: across replicas, then summarize against the cluster makespan
        #: (so per-class goodput is genuine cluster goodput).
        accs = merge_tenant_accumulators(
            [r.tenant_accumulators() for r in reports])
        for res in self.extra_results:
            acc = accs.setdefault(res.tenant_class, TenantStats())
            acc.n_requests += 1
            if res.finish_reason is FinishReason.REJECTED:
                acc.n_rejected += 1
            else:
                acc.n_failed += 1
        self.tenant_stats = summarize_tenants(accs, self.total_time_s)
        self._lat_runs: tuple[np.ndarray, np.ndarray] | None = None
        self._lat_digest = None
        self._ttft_sorted: list[float] | None = None
        self._results: list[RequestResult] | None = None

    @property
    def n_replicas(self) -> int:
        return len(self.replica_reports)

    def replica_request_counts(self) -> list[int]:
        return [r.n_requests for r in self.replica_reports]

    @property
    def n_requests(self) -> int:
        return sum(r.n_requests for r in self.replica_reports) \
            + len(self.extra_results)

    @property
    def total_new_tokens(self) -> int:
        return sum(r.total_new_tokens for r in self.replica_reports)

    @property
    def aggregate_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            raise SimulationError("report covers no simulated time")
        return self.total_new_tokens / self.total_time_s

    @property
    def mean_batch(self) -> float:
        decode = sum(r.n_decode_steps for r in self.replica_reports)
        if not decode:
            raise SimulationError("no decode steps recorded")
        return sum(r.batch_sum for r in self.replica_reports) / decode

    @property
    def mean_ttft_s(self) -> float:
        columns = [r.ttft_columns() for r in self.replica_reports]
        ids = np.concatenate([c[0] for c in columns])
        ttfts = np.concatenate([c[1] for c in columns])
        valid = np.concatenate([c[2] for c in columns])
        n_valid = int(valid.sum())
        if not n_valid:
            raise SimulationError("no retired requests")
        # Request-id order: the accumulation order of the eager cluster
        # report's mean, so the float matches bit for bit.  Placeholder
        # entries (no first token) are masked out after ordering.
        order = np.argsort(ids, kind="stable")
        return sum(ttfts[order][valid[order]].tolist()) / n_valid

    def latency_digest(self):
        """Cluster-wide decode-latency :class:`repro.stats.TDigest`
        (``"sketch"`` level only): the per-replica digests merged."""
        if self.telemetry != "sketch":
            raise SimulationError(
                f"telemetry='{self.telemetry}' keeps the exact latency "
                "sample, not a sketch; use latency_percentile_s()")
        if self._lat_digest is None:
            from ..stats import TDigest

            merged = TDigest()
            for report in self.replica_reports:
                merged.merge(report.latency_digest())
            self._lat_digest = merged
        return self._lat_digest

    def latency_percentile_s(self, percentile: float) -> float:
        if self.telemetry == "sketch":
            return self.latency_digest().percentile(percentile)
        if self._lat_runs is None:
            parts = [r.latency_runs() for r in self.replica_reports]
            values = np.concatenate([p[0] for p in parts])
            counts = np.concatenate([p[1] for p in parts])
            if not len(values):
                raise SimulationError("no decode steps recorded")
            order = np.argsort(values, kind="stable")
            self._lat_runs = (values[order], counts[order])
        return percentile_of_runs(*self._lat_runs, percentile)

    def ttft_percentile_s(self, percentile: float) -> float:
        if self._ttft_sorted is None:
            self._ttft_sorted = merge_sorted(
                [r.sorted_ttfts() for r in self.replica_reports])
        if not self._ttft_sorted:
            raise SimulationError("no retired requests")
        return percentile_of_sorted(self._ttft_sorted, percentile)

    @property
    def step_batches(self) -> list[int]:
        return [b for r in self.replica_reports for b in r.step_batches]

    @property
    def results(self) -> list[RequestResult]:
        if self._results is None:
            self._results = sorted(
                [res for r in self.replica_reports for res in r.results]
                + self.extra_results,
                key=lambda res: res.request_id)
        return self._results


def merge_reports(reports: list[ServeReport],
                  assignments: dict[int, int],
                  extra_results: list[RequestResult] | None = None,
                  resilience: dict | None = None) -> ClusterServeReport:
    """Fold per-replica reports into one cluster report.
    ``extra_results`` carries router-synthesized verdicts (degraded-mode
    sheds, retry-budget failures) that no replica ever served."""
    if not reports:
        raise SimulationError("no replica reports to merge")
    results = sorted([res for r in reports for res in r.results]
                     + list(extra_results or []),
                     key=lambda res: res.request_id)
    total_time_s = max(r.total_time_s for r in reports)
    return ClusterServeReport(
        results=results,
        total_time_s=total_time_s,
        n_steps=sum(r.n_steps for r in reports),
        preemptions=sum(r.preemptions for r in reports),
        max_batch_observed=max(r.max_batch_observed for r in reports),
        step_batches=[b for r in reports for b in r.step_batches],
        window_stats=merge_window_stats(
            [r.window_stats for r in reports]),
        tenant_stats=tenant_stats_from_results(results, total_time_s),
        replica_reports=list(reports),
        assignments=dict(assignments),
        resilience=resilience,
    )


class ReplicaRouter:
    """Routes requests across replicas and drives their engines."""

    def __init__(self, engines: list[ContinuousBatchScheduler],
                 policy: str = "round_robin",
                 affinity_window: int = 16,
                 faults: FaultSchedule | None = None,
                 retry: RetryPolicy | None = None,
                 degraded: DegradedModeConfig | None = None,
                 detection_delay_s: float = 0.0005,
                 migration: MigrationPolicy | None = None,
                 hedge: HedgePolicy | None = None) -> None:
        # ``affinity_window``: leading tokens hashed by prefix_affinity.
        # Keep it at or below the shared system-prompt length (the
        # default matches the default KV block size) — a wider window
        # mixes per-request tail tokens into the key and scatters
        # sharers across replicas.
        if not engines:
            raise SimulationError("router needs at least one replica")
        if policy not in POLICIES:
            raise SimulationError(
                f"unknown routing policy {policy!r}; choose from "
                f"{POLICIES}")
        if affinity_window <= 0:
            raise SimulationError(
                f"affinity window must be positive: {affinity_window}")
        self.engines = engines
        self.policy = policy
        self.affinity_window = affinity_window
        #: fault injection: a schedule switches :meth:`run` onto the
        #: resilient path — health-aware routing, crash re-dispatch
        #: with capped-backoff retries, degraded-mode shedding.  None
        #: keeps the fault-free path untouched.
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.degraded = degraded
        #: prices drain-time KV handoffs; always present so a schedule
        #: containing ``"drain"`` events works out of the box.
        self.migration = migration if migration is not None \
            else MigrationPolicy()
        #: optional first-token-wins duplicate dispatch (tail
        #: tolerance); full telemetry only.
        self.hedge = hedge
        self._health = HealthTracker(faults, len(engines),
                                     detection_delay_s) \
            if faults is not None else None
        self._routing = _RoutingState(len(engines), policy,
                                      affinity_window)
        self.assignments: dict[int, int] = {}

    @property
    def n_replicas(self) -> int:
        return len(self.engines)

    @property
    def loads(self) -> list[int]:
        """Outstanding routed work per replica (running counters)."""
        return list(self._routing.loads)

    def recompute_loads(self, requests: Iterable[Request]) -> list[int]:
        """The load ledger re-derived from scratch: sum every routed
        request's cost under its recorded assignment.  Exists to pin
        the running counters in tests — never used on the hot path."""
        loads = [0] * self.n_replicas
        for request in requests:
            replica = self.assignments.get(request.request_id)
            if replica is not None:
                loads[replica] += len(request.prompt) \
                    + request.max_new_tokens
        return loads

    def route(self, request: Request) -> int:
        """Pick a replica for ``request`` and record the assignment."""
        if request.request_id in self.assignments:
            raise SimulationError(
                f"request {request.request_id} was already routed")
        replica = self._routing.route(request)
        self.assignments[request.request_id] = replica
        return replica

    def _replica_share(self, factory: Callable[[], Iterable[Request]],
                       replica: int,
                       record: bool = False) -> Iterator[Request]:
        """This replica's share of a streamed trace: replay the
        deterministic routing state machine over a fresh iterator and
        keep only the matching requests.

        ``record=True`` (first replica's pass — it sees every request)
        also writes the router's public ``assignments`` map and load
        ledger, so full-telemetry factory runs report routing exactly
        like materialized runs.
        """
        routing = self._routing if record \
            else _RoutingState(self.n_replicas, self.policy,
                               self.affinity_window)
        for request in factory():
            target = routing.route(request)
            if record:
                # Same duplicate guard route() applies on the
                # materialized path.  (The streaming levels skip the
                # O(trace) id set by design — duplicate-free traces are
                # the caller's contract there.)
                if request.request_id in self.assignments:
                    raise SimulationError(
                        f"request {request.request_id} was already "
                        "routed")
                self.assignments[request.request_id] = target
            if target == replica:
                yield request

    def run(self, requests: TraceLike, telemetry: str = "full",
            max_steps: int = 1_000_000
            ) -> ClusterServeReport | StreamedClusterReport:
        """Route every request, run each replica's engine, merge.

        Like :meth:`ContinuousBatchScheduler.run`, each call is a fresh
        replay: routing state from earlier calls (or manual
        :meth:`route` invocations) is discarded.

        A *callable* ``requests`` is treated as a trace factory: each
        replica replays a fresh iterator through the routing state
        machine and consumes only its own share, so nothing is
        materialized.  At ``telemetry="full"`` the first pass also
        records ``assignments`` and the load ledger (per-request detail
        is being kept anyway); the streaming levels skip that O(trace)
        map by design.

        With a :class:`FaultSchedule` installed the run goes through
        the resilient path instead (see :meth:`_run_with_faults`) —
        the trace is materialized there, since crash re-dispatch needs
        the whole arrival sequence to converge on a retry plan.
        """
        if self.faults is not None:
            return self._run_with_faults(requests, telemetry, max_steps)
        self._routing = _RoutingState(self.n_replicas, self.policy,
                                      self.affinity_window)
        self.assignments = {}
        if callable(requests):
            reports = [
                engine.run(self._replica_share(
                    requests, idx, record=idx == 0
                    and telemetry == "full"),
                    telemetry=telemetry, max_steps=max_steps)
                for idx, engine in enumerate(self.engines)]
        else:
            shares: list[list[Request]] = [[] for _ in
                                           range(self.n_replicas)]
            for request in sorted(requests, key=lambda r: r.arrival_s):
                shares[self.route(request)].append(request)
            reports = [engine.run(share, telemetry=telemetry,
                                  max_steps=max_steps)
                       for engine, share in zip(self.engines, shares)]
        if telemetry != "full":
            return StreamedClusterReport(reports, self.assignments)
        return merge_reports(reports, self.assignments)

    # -- fault-tolerant serving ---------------------------------------------

    def _route_retry(self, rid: int, attempt: int, arrival_s: float,
                     died_on: int) -> int:
        """Deterministic retry/handoff target: a healthy survivor
        (never the replica the attempt just died on or drained from,
        unless it is the only replica), rotated by ``rid + attempt`` so
        retry storms spread instead of piling onto one survivor.  With
        a failure-domain topology the candidate list comes domain-aware
        from :meth:`HealthTracker.retry_candidates` — never into the
        failing domain, interleaved across domains so consecutive
        retries spread over racks rather than filling one."""
        assert self._health is not None
        candidates = [r for r in
                      self._health.retry_candidates(arrival_s, died_on)
                      if r != died_on]
        if not candidates:
            candidates = [r for r in range(self.n_replicas)
                          if r != died_on] or [died_on]
        return candidates[(rid + attempt) % len(candidates)]

    def _retry_plan(
            self, kills: "list[tuple[KilledRequest, ...]]",
    ) -> tuple:
        """The re-dispatch plan implied by one round's kills: for each
        killed request, its kill chain in time order maps to retry
        dispatches (attempt ``j`` re-arrives ``delay_s(j)`` after kill
        ``j-1``) until the budget is spent, then a terminal failure.
        Pure function of the kills, so the fixed-point iteration
        converges exactly when a round's kills reproduce its inputs."""
        by_rid: dict[int, list] = {}
        for replica, replica_kills in enumerate(kills):
            for k in replica_kills:
                by_rid.setdefault(k.request.request_id, []).append(
                    (k.kill_s, replica))
        entries = []
        for rid in sorted(by_rid):
            chain = sorted(by_rid[rid])
            for j, (kill_s, died_on) in enumerate(chain):
                attempt = j + 1
                if attempt > self.retry.budget:
                    entries.append((rid, attempt, "failed", kill_s, -1))
                    break
                arrival = kill_s + self.retry.delay_s(attempt)
                entries.append((rid, attempt, "retry", arrival,
                                self._route_retry(rid, attempt, arrival,
                                                  died_on)))
        return tuple(entries)

    def _migration_plan(
            self, drains: "list[tuple[MigratedRequest, ...]]") -> tuple:
        """The handoff dispatches implied by one round's drain
        checkpoints: each checkpoint re-admits its request on a healthy
        replica after the migration cost model's transfer delay, with a
        :class:`ResumeSpec` so the target's first prefill skips the
        shipped KV positions.  Checkpoint times are pure functions of
        fault + request (like kill times), so this plan composes with
        the retry plan in the same fixed-point iteration."""
        by_rid: dict[int, list] = {}
        for replica, checkpoints in enumerate(drains):
            for ckpt in checkpoints:
                by_rid.setdefault(ckpt.request.request_id, []).append(
                    (ckpt.migrate_s, replica, ckpt))
        entries = []
        for rid in sorted(by_rid):
            chain = sorted(by_rid[rid], key=lambda e: (e[0], e[1]))
            for hop, (migrate_s, source, ckpt) in enumerate(chain, 1):
                arrival = migrate_s \
                    + self.migration.handoff_s(ckpt.kv_bytes)
                target = self._route_retry(rid, hop, arrival, source)
                entries.append((rid, hop, arrival, target, ckpt.position,
                                ckpt.n_generated, ckpt.first_token_s))
        return tuple(entries)

    def _run_with_faults(self, requests: TraceLike, telemetry: str,
                         max_steps: int
                         ) -> ClusterServeReport | StreamedClusterReport:
        """Serve a trace through the fault schedule: shed, route
        health-aware, then iterate crash re-dispatch to a fixed point.

        Each round replays every replica from scratch with the current
        retry dispatches added to its share; the kills observed imply
        the next round's dispatches.  The plan converges when a round's
        kills reproduce exactly the dispatches it ran with — the
        simulated-time analogue of a real router reacting to failures
        as they happen, kept deterministic (and tier-independent)
        because every kill time is a pure function of fault + request.
        """
        tracker = self._health
        assert tracker is not None
        trace = sorted(requests() if callable(requests) else requests,
                       key=lambda r: r.arrival_s)
        # Degraded-mode admission: while crashes reduce healthy
        # capacity, low classes are shed cluster-wide *before* routing
        # (the verdict is a pure function of arrival time and class, so
        # it consumes no routing state).
        shed_results: list[RequestResult] = []
        admitted: list[Request] = []
        for request in trace:
            if self.degraded is not None and request.tenant.priority \
                    in self.degraded.shed_classes(
                        tracker.healthy_fraction(request.arrival_s)):
                shed_results.append(RequestResult(
                    request_id=request.request_id, tokens=(),
                    prompt_len=len(request.prompt), ttft_s=None,
                    e2e_s=0.0, finish_reason=FinishReason.REJECTED,
                    preemptions=0, decode_step_s=(),
                    tenant_class=request.tenant.priority))
            else:
                admitted.append(request)
        self._routing = _RoutingState(self.n_replicas, self.policy,
                                      self.affinity_window,
                                      health=tracker)
        self.assignments = {}
        base_shares: list[list[Request]] = \
            [[] for _ in range(self.n_replicas)]
        for request in admitted:
            base_shares[self.route(request)].append(request)
        plans = [self.faults.plan_for(idx)
                 for idx in range(self.n_replicas)]
        dspans = tracker.degraded_spans()
        originals = {r.request_id: r for r in admitted}

        n_drain_events = sum(1 for e in self.faults.events
                             if e.kind == "drain")
        if self.hedge is not None and telemetry != "full":
            raise SimulationError(
                "hedged dispatch compares per-request first-token "
                "times; run with telemetry='full'")

        prev_plan: tuple = ((), ())
        retries: dict[tuple[int, int], tuple[int, Request]] = {}
        handoffs: dict[tuple[int, int], tuple[int, Request]] = {}
        failed: dict[int, float] = {}
        reports: list = []
        kills: list[tuple[KilledRequest, ...]] = []
        drains: list[tuple[MigratedRequest, ...]] = []
        rounds = 0
        max_rounds = (self.retry.budget + 6 + 2 * n_drain_events) \
            * (3 if self.hedge is not None else 1)

        def build_dispatches(plan: tuple) -> None:
            """Materialize a (retry, migration) plan into dispatch
            requests.  Retries restart from the pristine original (the
            crash destroyed the KV); migrations re-admit with a resume
            spec so the target's prefill skips the shipped positions.
            Both keep the client's ledger anchored at the *original*
            arrival — the client has been waiting since then, so
            TTFT/E2E must say so."""
            nonlocal retries, handoffs, failed
            retry_plan, migration_plan = plan
            retries, handoffs, failed = {}, {}, {}
            for rid, attempt, verdict, t_s, target in retry_plan:
                if verdict == "failed":
                    failed[rid] = t_s
                else:
                    retries[(rid, attempt)] = (target, replace(
                        originals[rid], arrival_s=t_s,
                        accounted_arrival_s=originals[rid]
                        .ledger_arrival_s))
            for rid, hop, t_s, target, position, n_gen, first_s \
                    in migration_plan:
                resume = ResumeSpec(
                    kv_position=position, n_generated=n_gen,
                    first_token_s=first_s) \
                    if position or n_gen or first_s is not None \
                    else None
                handoffs[(rid, hop)] = (target, replace(
                    originals[rid], arrival_s=t_s,
                    accounted_arrival_s=originals[rid].ledger_arrival_s,
                    resume=resume))

        def run_fixed_point() -> None:
            """Replay every replica until a round's kills and drain
            checkpoints reproduce exactly the dispatches it ran with."""
            nonlocal reports, kills, drains, rounds, prev_plan
            while True:
                rounds += 1
                if rounds > max_rounds:
                    raise SimulationError(
                        f"crash re-dispatch did not converge within "
                        f"{max_rounds} rounds — the retry/migration "
                        "plan keeps perturbing which requests later "
                        "faults hit")
                reports.clear()
                kills.clear()
                drains.clear()
                for idx, engine in enumerate(self.engines):
                    engine.fault_plan = plans[idx]
                    engine.degraded_spans = dspans
                    if engine.flight is not None:
                        # Recorders would otherwise accumulate every
                        # round's events; only the converged round's
                        # timeline is the run.
                        engine.flight.reset()
                    share = base_shares[idx] + [
                        req for (_, _), (target, req)
                        in sorted(retries.items()) if target == idx] + [
                        req for (_, _), (target, req)
                        in sorted(handoffs.items()) if target == idx]
                    reports.append(engine.run(share, telemetry=telemetry,
                                              max_steps=max_steps))
                    kills.append(tuple(engine.killed))
                    drains.append(tuple(engine.drained))
                plan = (self._retry_plan(kills),
                        self._migration_plan(drains))
                if plan == prev_plan:
                    return
                prev_plan = plan
                build_dispatches(plan)

        run_fixed_point()

        # -- hedged dispatch: first-token-wins duplicates -------------------
        hedge_copies: dict[int, tuple[int, ...]] = {}
        winner_of: dict[int, int] = {}
        copy_ids: set[int] = set()
        if self.hedge is not None:
            delay = self.hedge.delay_s
            by_id = {r.request_id: r
                     for rep in reports for r in rep.results}
            candidates = sorted(
                {rid for rid, res in by_id.items()
                 if res.finish_reason is not FinishReason.REJECTED
                 and res.ttft_s is not None and res.ttft_s > delay}
                | set(failed))
            hedge_base = max(originals, default=0) + 1
            serial = 0
            for rid in candidates:
                ids = []
                for j in range(1, self.hedge.max_hedges + 1):
                    copy_id = hedge_base + serial
                    serial += 1
                    arrival = originals[rid].arrival_s + j * delay
                    target = self._route_retry(
                        rid, j, arrival, self.assignments[rid])
                    copy = replace(
                        originals[rid], request_id=copy_id,
                        arrival_s=arrival,
                        accounted_arrival_s=originals[rid].arrival_s)
                    originals[copy_id] = copy
                    base_shares[target].append(copy)
                    self.assignments[copy_id] = target
                    ids.append(copy_id)
                hedge_copies[rid] = tuple(ids)
            copy_ids = {c for ids in hedge_copies.values() for c in ids}
        if hedge_copies:
            run_fixed_point()
            # First token wins.  Every contender's ledger TTFT measures
            # from the primary's original arrival, so the TTFTs compare
            # directly as absolute first-token order; ties keep the
            # primary (no pointless cancellation).
            by_id = {r.request_id: r
                     for rep in reports for r in rep.results}

            def first_token_rank(cid: int) -> tuple:
                res = by_id.get(cid)
                if res is None or res.ttft_s is None:
                    return (1, 0.0)
                return (0, res.ttft_s)

            clamped = False
            for rid, ids in sorted(hedge_copies.items()):
                contenders = [rid, *ids]
                winner = min(contenders,
                             key=lambda c: (*first_token_rank(c),
                                            contenders.index(c)))
                winner_of[rid] = winner
                for loser in contenders:
                    if loser == winner:
                        continue
                    old = originals[loser]
                    if old.max_new_tokens == 1:
                        continue
                    # Cancellation at the loser's own first token,
                    # modeled as a one-token generation budget (the
                    # engine frees its slot right after that token).
                    new = replace(old, max_new_tokens=1)
                    originals[loser] = new
                    share = base_shares[self.assignments[loser]]
                    share[share.index(old)] = new
                    clamped = True
            if clamped:
                build_dispatches(prev_plan)
                run_fixed_point()

        stats = [engine.fault_stats() for engine in self.engines]
        for engine in self.engines:
            engine.fault_plan = None
            engine.degraded_spans = ()
        for (rid, attempt), (target, req) in sorted(retries.items()):
            flight = self.engines[target].flight
            if flight is not None:
                flight.instant("redispatch", req.arrival_s, rid,
                               attempt=attempt)
        for (rid, hop), (target, req) in sorted(handoffs.items()):
            flight = self.engines[target].flight
            if flight is not None:
                flight.instant(
                    "migrate-in", req.arrival_s, rid, hop=hop,
                    kv_position=req.resume.kv_position
                    if req.resume is not None else 0)
        for rid, ids in sorted(hedge_copies.items()):
            for j, cid in enumerate(ids, 1):
                flight = self.engines[self.assignments[cid]].flight
                if flight is not None:
                    flight.instant("hedge", originals[cid].arrival_s,
                                   cid, primary=rid, attempt=j)

        # Collapse each hedge set to its frozen winner, keyed back to
        # the primary request id.  A winner wiped out by a post-clamp
        # fault shift falls back to the primary's own final verdict.
        hedge_result: dict[int, RequestResult] = {}
        if winner_of:
            by_id = {r.request_id: r
                     for rep in reports for r in rep.results}
            for rid, winner in sorted(winner_of.items()):
                res = by_id.get(winner)
                if res is None:
                    res = by_id.get(rid)
                if res is not None:
                    hedge_result[rid] = res if res.request_id == rid \
                        else replace(res, request_id=rid)
        recovered = {rid for rid in hedge_result if rid in failed}

        # A request past its budget surfaces as FAILED at its final
        # kill — never a silent loss.  E2E runs from the *original*
        # arrival: the client has been waiting since then.  Hedge
        # copies are router-internal (their failure is not a client
        # verdict), and a primary whose hedge won did not fail.
        failed_results = [
            RequestResult(
                request_id=rid, tokens=(),
                prompt_len=len(originals[rid].prompt), ttft_s=None,
                e2e_s=kill_s - originals[rid].arrival_s,
                finish_reason=FinishReason.FAILED, preemptions=0,
                decode_step_s=(),
                tenant_class=originals[rid].tenant.priority)
            for rid, kill_s in sorted(failed.items())
            if rid not in copy_ids and rid not in recovered]
        extras = sorted(shed_results + failed_results,
                        key=lambda r: r.request_id)

        retired_ids: set[int] = set()
        for rep in reports:
            if telemetry == "full":
                retired_ids.update(r.request_id for r in rep.results)
            else:
                retired_ids.update(rep.ttft_columns()[0].tolist())
        lost = {r.request_id for r in admitted} \
            - retired_ids - set(failed)
        degraded_time = tracker.degraded_time_s()
        degraded_tokens = sum(s["degraded_tokens"] for s in stats)
        resilience = {
            "n_crashes": sum(s["crashes"] for s in stats),
            "n_hangs": sum(s["stalls"] for s in stats),
            "n_slowdowns": sum(s["slowdowns"] for s in stats),
            "n_drains": sum(s["drains"] for s in stats),
            "n_killed": sum(len(k) for k in kills),
            "n_redispatched": len(retries),
            "n_migrated": sum(len(d) for d in drains),
            "migrated_kv_bytes": sum(m.kv_bytes
                                     for d in drains for m in d),
            "n_resumed": sum(s["n_resumed"] for s in stats),
            "resume_recompute_tokens":
                sum(s["resume_recompute_tokens"] for s in stats),
            "n_failed": len([r for r in failed if r not in copy_ids
                             and r not in recovered]),
            "n_shed": len(shed_results),
            "n_lost": len(lost),
            "lost_request_ids": tuple(sorted(lost)),
            "n_hedged": len(hedge_copies),
            "n_hedge_wins": sum(1 for rid, w in winner_of.items()
                                if w != rid),
            "retry_rounds": rounds,
            "mttr_s": tracker.mttr_s(),
            "downtime_s": sum(s["downtime_s"] for s in stats),
            "degraded_time_s": degraded_time,
            "goodput_degraded_tokens_per_s":
                degraded_tokens / degraded_time
                if degraded_time > 0 else None,
        }
        if telemetry != "full":
            return StreamedClusterReport(reports, self.assignments,
                                         extra_results=extras,
                                         resilience=resilience)
        report = merge_reports(reports, self.assignments,
                               extra_results=extras,
                               resilience=resilience)
        if hedge_copies:
            # Collapse each hedge pair to its winner under the primary
            # request id and re-derive the result-dependent caches; the
            # replica reports still show the raw duplicate work (hedging
            # is not free, and the throughput columns must say so).
            corrected = []
            seen: set[int] = set()
            for res in report.results:
                rid = res.request_id
                if rid in copy_ids:
                    continue
                if rid in hedge_result:
                    corrected.append(hedge_result[rid])
                    seen.add(rid)
                else:
                    corrected.append(res)
            corrected += [hedge_result[rid]
                          for rid in sorted(hedge_result)
                          if rid not in seen]
            corrected.sort(key=lambda r: r.request_id)
            report.results = corrected
            report.tenant_stats = tenant_stats_from_results(
                corrected, report.total_time_s)
            report._ttft_sorted = sorted(
                r.ttft_s for r in corrected if r.ttft_s is not None)
            report._decode_lat_sorted = sorted(
                s for r in corrected for s in r.decode_step_s)
        return report
