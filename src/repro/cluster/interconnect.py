"""Inter-accelerator link model: collective cost for tensor parallelism.

The analogue of :mod:`repro.memory.traffic` for the wires *between*
boards: given a link (bandwidth, per-hop latency, topology), charge the
bytes and seconds of the collectives a tensor-parallel decode step
needs — one all-reduce after attention and one after the MLP in every
layer (the two row-parallel partial sums), plus one all-gather of the
vocabulary-sharded logits per sampled token.

Two topologies, both modelling the standard algorithms:

* ``ring`` — reduce-scatter + all-gather around a ring: ``2 (n-1)``
  steps of ``payload / n`` bytes per link.  Cheap boards with two
  transceivers; latency scales with ``n``.
* ``all_to_all`` — every pair directly linked: one reduce-scatter and
  one all-gather phase, each moving ``payload / n`` per link in
  parallel.  Latency is two hops regardless of ``n``.

Costs are returned in seconds and converted to PL cycles by the caller
(:class:`TPCommModel` takes the shard's clock), so the engine can add
interconnect time to per-shard compute cycles in one unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelConfig, QuantConfig
from ..errors import SimulationError

TOPOLOGIES = ("ring", "all_to_all")


@dataclass(frozen=True)
class LinkSpec:
    """One board-to-board link class."""

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float
    topology: str = "ring"

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise SimulationError(
                f"{self.name}: link bandwidth must be positive")
        if self.latency_s < 0:
            raise SimulationError(
                f"{self.name}: link latency must be >= 0")
        if self.topology not in TOPOLOGIES:
            raise SimulationError(
                f"{self.name}: unknown topology {self.topology!r}; "
                f"choose from {TOPOLOGIES}")


#: KV260-class boards talk over their PS Ethernet or PL transceivers.
GIG_ETHERNET = LinkSpec("1GbE", 125e6, 50e-6, "ring")
TEN_GIG_ETHERNET = LinkSpec("10GbE", 1.25e9, 10e-6, "ring")
#: 4-lane GTH Aurora-style board-to-board mesh (point-to-point).
AURORA_MESH = LinkSpec("Aurora-x4", 1.6e9, 1e-6, "all_to_all")

INTERCONNECT_PRESETS = {
    link.name: link
    for link in (GIG_ETHERNET, TEN_GIG_ETHERNET, AURORA_MESH)
}


@dataclass(frozen=True)
class CollectiveCost:
    """Time and wire traffic of one collective on one device."""

    payload_bytes: float   # logical vector size being reduced/gathered
    wire_bytes: float      # bytes this device actually sends
    time_s: float
    steps: int


def _check(n_devices: int, payload_bytes: float) -> None:
    if n_devices < 1:
        raise SimulationError(
            f"collective needs at least one device: {n_devices}")
    if payload_bytes < 0:
        raise SimulationError(
            f"collective payload must be >= 0: {payload_bytes}")


def all_reduce_cost(link: LinkSpec, n_devices: int,
                    payload_bytes: float) -> CollectiveCost:
    """Sum a ``payload_bytes`` vector across ``n_devices``."""
    _check(n_devices, payload_bytes)
    if n_devices == 1 or payload_bytes == 0:
        return CollectiveCost(payload_bytes, 0.0, 0.0, 0)
    chunk = payload_bytes / n_devices
    wire = 2 * (n_devices - 1) * chunk
    if link.topology == "ring":
        steps = 2 * (n_devices - 1)
        time = steps * (chunk / link.bandwidth_bytes_per_s + link.latency_s)
    else:  # all_to_all: reduce-scatter + all-gather, links in parallel
        steps = 2
        time = steps * (chunk / link.bandwidth_bytes_per_s + link.latency_s)
    return CollectiveCost(payload_bytes, wire, time, steps)


def all_gather_cost(link: LinkSpec, n_devices: int,
                    payload_bytes: float) -> CollectiveCost:
    """Gather a vector of total ``payload_bytes`` (``1/n`` per device)."""
    _check(n_devices, payload_bytes)
    if n_devices == 1 or payload_bytes == 0:
        return CollectiveCost(payload_bytes, 0.0, 0.0, 0)
    chunk = payload_bytes / n_devices
    wire = (n_devices - 1) * chunk
    if link.topology == "ring":
        steps = n_devices - 1
        time = steps * (chunk / link.bandwidth_bytes_per_s + link.latency_s)
    else:
        steps = 1
        time = chunk / link.bandwidth_bytes_per_s + link.latency_s
    return CollectiveCost(payload_bytes, wire, time, steps)


class TPCommModel:
    """Per-step collective accounting of one tensor-parallel group.

    Every forwarded token crosses the interconnect ``2 * num_layers``
    times (the attention-output and MLP-down all-reduces over the
    FP16 hidden vector) plus one logits all-gather per sampled token.
    A batched decode step reduces all members' vectors in one
    collective per layer, so latency amortizes across the batch exactly
    like the weight stream does across DRAM.
    """

    def __init__(self, model: ModelConfig, quant: QuantConfig,
                 link: LinkSpec, tp: int, freq_hz: float) -> None:
        if tp < 1:
            raise SimulationError(
                f"tensor-parallel degree must be >= 1: {tp}")
        if freq_hz <= 0:
            raise SimulationError(f"freq_hz must be positive: {freq_hz}")
        self.model = model
        self.quant = quant
        self.link = link
        self.tp = tp
        self.freq_hz = freq_hz
        self.hidden_bytes = model.hidden_size * quant.activation_bits / 8
        self.logits_bytes = model.vocab_size * quant.activation_bits / 8

    def decode_step_cost(self, batch: int) -> CollectiveCost:
        """Interconnect cost of one batched decode step."""
        if batch < 1:
            raise SimulationError(f"batch must be positive: {batch}")
        reduce = all_reduce_cost(self.link, self.tp,
                                 batch * self.hidden_bytes)
        gather = all_gather_cost(self.link, self.tp,
                                 batch * self.logits_bytes)
        n_reduces = 2 * self.model.num_layers
        return CollectiveCost(
            payload_bytes=n_reduces * reduce.payload_bytes
            + gather.payload_bytes,
            wire_bytes=n_reduces * reduce.wire_bytes + gather.wire_bytes,
            time_s=n_reduces * reduce.time_s + gather.time_s,
            steps=n_reduces * reduce.steps + gather.steps,
        )

    def decode_step_cycles(self, batch: int) -> float:
        return self.decode_step_cost(batch).time_s * self.freq_hz

    def prefill_cost(self, n_tokens: int) -> CollectiveCost:
        """Interconnect cost of prefilling ``n_tokens`` prompt positions.

        Each position pays the per-layer all-reduces; only the final
        position's logits (the first sample's input) are gathered.
        """
        if n_tokens < 0:
            raise SimulationError(
                f"prefill token count must be >= 0: {n_tokens}")
        if n_tokens == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        reduce = all_reduce_cost(self.link, self.tp, self.hidden_bytes)
        gather = all_gather_cost(self.link, self.tp, self.logits_bytes)
        n_reduces = 2 * self.model.num_layers * n_tokens
        return CollectiveCost(
            payload_bytes=n_reduces * reduce.payload_bytes
            + gather.payload_bytes,
            wire_bytes=n_reduces * reduce.wire_bytes + gather.wire_bytes,
            time_s=n_reduces * reduce.time_s + gather.time_s,
            steps=n_reduces * reduce.steps + gather.steps,
        )

    def prefill_cycles(self, n_tokens: int) -> float:
        return self.prefill_cost(n_tokens).time_s * self.freq_hz
