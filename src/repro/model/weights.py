"""Weight containers, synthetic initialization, and model quantization.

The paper loads an AutoAWQ-quantized LLaMA2-7B checkpoint from an SD card.
We have no checkpoint, so :func:`random_weights` synthesizes weights with
transformer-typical statistics (scaled Gaussian projections, near-unit norm
weights); traffic, layout, and capacity depend only on shapes, and the
functional pipeline is validated against the float reference on the same
synthetic weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ModelConfig, QuantConfig
from ..errors import ConfigError
from ..quant.awq import AwqResult, awq_quantize_matrix
from ..quant.calibration import ActivationStats

# Names of the per-layer linear projections, in the order the accelerator
# streams them during decode (Fig. 3: Q, K, V interleaved with attention,
# then O; then gate/up/down in the MLP).
ATTN_PROJS = ("wq", "wk", "wv", "wo")
MLP_PROJS = ("w_gate", "w_up", "w_down")


@dataclass
class LayerWeights:
    """Float weights of one transformer layer; matrices are (out, in)."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray | None
    w_up: np.ndarray
    w_down: np.ndarray
    input_norm: np.ndarray
    post_norm: np.ndarray

    def projections(self) -> dict[str, np.ndarray]:
        """All linear matrices of this layer, keyed by canonical name."""
        mats = {"wq": self.wq, "wk": self.wk, "wv": self.wv, "wo": self.wo,
                "w_up": self.w_up, "w_down": self.w_down}
        if self.w_gate is not None:
            mats["w_gate"] = self.w_gate
        return mats


@dataclass
class ModelWeights:
    """Float weights of the whole model."""

    config: ModelConfig
    embedding: np.ndarray  # (vocab, hidden)
    layers: list[LayerWeights] = field(default_factory=list)
    final_norm: np.ndarray | None = None
    lm_head: np.ndarray | None = None  # (vocab, hidden); None when tied

    def head_matrix(self) -> np.ndarray:
        """LM head weights, resolving embedding tying."""
        if self.lm_head is not None:
            return self.lm_head
        return self.embedding

    def param_count(self) -> int:
        """Actual parameter count (cross-checked against ModelConfig)."""
        n = self.embedding.size
        for layer in self.layers:
            for mat in layer.projections().values():
                n += mat.size
            n += layer.input_norm.size + layer.post_norm.size
        if self.final_norm is not None:
            n += self.final_norm.size
        if self.lm_head is not None:
            n += self.lm_head.size
        return n


def random_weights(config: ModelConfig, seed: int = 0,
                   scale: float = 1.0) -> ModelWeights:
    """Synthesize weights with transformer-typical statistics.

    Projections are Gaussian with std ``scale / sqrt(in_features)`` so
    activations keep unit variance through depth; norm weights start near
    one with small jitter, as trained models do.
    """
    rng = np.random.default_rng(seed)
    h = config.hidden_size
    kv = config.kv_dim
    inter = config.intermediate_size

    def proj(out_f: int, in_f: int) -> np.ndarray:
        return rng.standard_normal((out_f, in_f)) * (scale / np.sqrt(in_f))

    def norm_w(n: int) -> np.ndarray:
        return 1.0 + 0.02 * rng.standard_normal(n)

    layers = []
    for _ in range(config.num_layers):
        layers.append(LayerWeights(
            wq=proj(h, h), wk=proj(kv, h), wv=proj(kv, h), wo=proj(h, h),
            w_gate=proj(inter, h) if config.gated_mlp else None,
            w_up=proj(inter, h), w_down=proj(h, inter),
            input_norm=norm_w(h), post_norm=norm_w(h),
        ))

    embedding = rng.standard_normal((config.vocab_size, h)) * 0.02
    lm_head = None if config.tie_embeddings else proj(config.vocab_size, h)
    return ModelWeights(config=config, embedding=embedding, layers=layers,
                        final_norm=norm_w(h), lm_head=lm_head)


# ---------------------------------------------------------------------------
# Whole-model quantization
# ---------------------------------------------------------------------------


@dataclass
class QuantizedModelWeights:
    """AWQ-quantized model: one :class:`AwqResult` per linear matrix.

    ``layers[i][name]`` maps the canonical projection names of
    :data:`ATTN_PROJS` / :data:`MLP_PROJS` to their quantized form; the
    embedding table and norm weights stay FP16 (they are not streamed per
    token / are tiny, Sec. IV-A).
    """

    config: ModelConfig
    quant: QuantConfig
    embedding: np.ndarray  # float16 (vocab, hidden)
    layers: list[dict[str, AwqResult]]
    norms: list[tuple[np.ndarray, np.ndarray]]  # (input_norm, post_norm) fp16
    final_norm: np.ndarray
    lm_head: AwqResult

    def projection(self, layer: int, name: str) -> AwqResult:
        try:
            return self.layers[layer][name]
        except (IndexError, KeyError) as exc:
            raise ConfigError(f"no projection {name!r} in layer {layer}") from exc

    def stored_weight_bytes(self) -> int:
        """Bytes of quantized weights + metadata + FP16 embedding/norms.

        This is the quantity behind the paper's 3556 MB weight figure.
        """
        q = self.quant
        total_bits = 0
        for layer in self.layers:
            for result in layer.values():
                total_bits += result.params.storage_bits(
                    q.weight_scale_bits, q.weight_zero_bits)
        total_bits += self.lm_head.params.storage_bits(
            q.weight_scale_bits, q.weight_zero_bits)
        fp16_params = self.embedding.size + self.final_norm.size
        for input_norm, post_norm in self.norms:
            fp16_params += input_norm.size + post_norm.size
        total_bits += fp16_params * 16
        return total_bits // 8


def quantize_model(weights: ModelWeights, quant: QuantConfig,
                   act_stats: dict[str, ActivationStats] | None = None,
                   ) -> QuantizedModelWeights:
    """AWQ-quantize every linear projection of the model.

    ``act_stats`` maps ``"layer{i}.{name}"`` (and ``"lm_head"``) to the
    calibration statistics of that projection's *input*; missing entries
    fall back to plain round-to-nearest group quantization.
    """
    cfg = weights.config

    def stats_for(key: str, in_features: int) -> np.ndarray | None:
        if act_stats is None or key not in act_stats:
            return None
        stats = act_stats[key]
        if stats.num_channels != in_features:
            raise ConfigError(
                f"stats for {key} have {stats.num_channels} channels, "
                f"expected {in_features}"
            )
        return stats.mean_abs()

    q_layers: list[dict[str, AwqResult]] = []
    norms: list[tuple[np.ndarray, np.ndarray]] = []
    for i, layer in enumerate(weights.layers):
        q_layer = {}
        for name, mat in layer.projections().items():
            q_layer[name] = awq_quantize_matrix(
                mat, stats_for(f"layer{i}.{name}", mat.shape[1]),
                bits=quant.weight_bits, group_size=quant.weight_group_size)
        q_layers.append(q_layer)
        norms.append((layer.input_norm.astype(np.float16),
                      layer.post_norm.astype(np.float16)))

    head = weights.head_matrix()
    q_head = awq_quantize_matrix(
        head, stats_for("lm_head", head.shape[1]),
        bits=quant.weight_bits, group_size=quant.weight_group_size)

    final_norm = weights.final_norm
    if final_norm is None:
        final_norm = np.ones(cfg.hidden_size)
    return QuantizedModelWeights(
        config=cfg, quant=quant,
        embedding=weights.embedding.astype(np.float16),
        layers=q_layers, norms=norms,
        final_norm=final_norm.astype(np.float16),
        lm_head=q_head,
    )
