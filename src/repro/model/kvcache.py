"""KV caches: float reference, the KV8 cache of the paper, and slots.

The quantized cache mirrors the hardware behaviour: each key/value head
vector is quantized with :func:`repro.quant.kv8.kv_quantize` the moment it
is generated (per head, per token), stored as 8-bit codes plus a scale-zero
pack, and dequantized to FP16 when fetched for the attention dot products.

:class:`SlottedKVCache` extends this to multiple concurrent sequences: a
fixed pool of per-sequence slots with explicit allocate/free, the storage
substrate of the batched-serving engine (:mod:`repro.engine`).  Each slot
exposes the exact :class:`QuantizedKVCache` interface, so the functional
pipeline works unchanged against a slot view.
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..errors import SimulationError
from ..quant.kv8 import kv_dequantize_batch, kv_quantize_batch


class FloatKVCache:
    """Exact float64 KV cache for the reference model."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        shape = (config.num_layers, config.max_context,
                 config.kv_heads, config.head_dim)
        self._keys = np.zeros(shape, dtype=np.float64)
        self._values = np.zeros(shape, dtype=np.float64)
        self.length = 0

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray,
               position: int) -> None:
        """Store the (kv_heads, head_dim) K and V of one token at one layer."""
        if position >= self.config.max_context:
            raise SimulationError(
                f"position {position} exceeds context {self.config.max_context}"
            )
        self._keys[layer, position] = keys
        self._values[layer, position] = values
        if layer == self.config.num_layers - 1:
            self.length = max(self.length, position + 1)

    def keys(self, layer: int, length: int) -> np.ndarray:
        """Keys of the first ``length`` positions: (length, kv_heads, head_dim)."""
        return self._keys[layer, :length]

    def values(self, layer: int, length: int) -> np.ndarray:
        return self._values[layer, :length]


class QuantizedKVCache:
    """KV8 cache: uint8 codes + per-(token, head) scale-zero packs.

    Codes, scales, and zero points live in dense arrays so whole-history
    reads (:meth:`keys_batch` / :meth:`values_batch`) dequantize every
    head and position in one vectorized pass — the gather the batched
    attention kernels ride — while the per-head :meth:`keys` /
    :meth:`values` views stay available for the scalar reference path.
    """

    def __init__(self, config: ModelConfig, kv_bits: int = 8) -> None:
        self.config = config
        self.kv_bits = kv_bits
        shape = (config.num_layers, config.max_context,
                 config.kv_heads, config.head_dim)
        params = shape[:-1]
        self._k_codes = np.zeros(shape, dtype=np.uint8)
        self._v_codes = np.zeros(shape, dtype=np.uint8)
        self._k_scales = np.zeros(params, dtype=np.float16)
        self._v_scales = np.zeros(params, dtype=np.float16)
        self._k_zeros = np.zeros(params, dtype=np.int64)
        self._v_zeros = np.zeros(params, dtype=np.int64)
        self._written = np.zeros(params, dtype=bool)
        self.length = 0
        self._released = False

    def release(self) -> None:
        """Permanently revoke this cache: every later access raises.

        :class:`SlottedKVCache` releases a slot's cache on ``free`` so a
        stale view held across the free cannot silently read (or corrupt)
        the storage of whichever sequence claims the slot next.
        """
        self._released = True

    def _guard(self) -> None:
        if self._released:
            raise SimulationError(
                "KV cache used after its slot was freed")

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray,
               position: int) -> None:
        """Quantize and store one token's K/V head vectors (on-chip quant)."""
        self._guard()
        if position >= self.config.max_context:
            raise SimulationError(
                f"position {position} exceeds context {self.config.max_context}"
            )
        k_codes, k_scales, k_zeros = kv_quantize_batch(keys, self.kv_bits)
        v_codes, v_scales, v_zeros = kv_quantize_batch(values, self.kv_bits)
        self._k_codes[layer, position] = k_codes
        self._v_codes[layer, position] = v_codes
        self._k_scales[layer, position] = k_scales
        self._v_scales[layer, position] = v_scales
        self._k_zeros[layer, position] = k_zeros
        self._v_zeros[layer, position] = v_zeros
        self._written[layer, position] = True
        if layer == self.config.num_layers - 1:
            self.length = max(self.length, position + 1)

    def _check_written(self, layer: int, length: int,
                       head: int | None = None) -> None:
        self._guard()
        written = self._written[layer, :length]
        if head is not None:
            written = written[:, head]
        if not written.all():
            pos = int(np.argmin(written.reshape(length, -1).all(axis=1)))
            raise SimulationError(
                f"KV cache read of unwritten slot layer={layer} "
                f"pos={pos} head={head if head is not None else 0}"
            )

    def keys(self, layer: int, head: int, length: int) -> np.ndarray:
        """Dequantized FP16 keys: (length, head_dim) for one head."""
        self._check_written(layer, length, head)
        return kv_dequantize_batch(self._k_codes[layer, :length, head],
                                   self._k_scales[layer, :length, head],
                                   self._k_zeros[layer, :length, head])

    def values(self, layer: int, head: int, length: int) -> np.ndarray:
        self._check_written(layer, length, head)
        return kv_dequantize_batch(self._v_codes[layer, :length, head],
                                   self._v_scales[layer, :length, head],
                                   self._v_zeros[layer, :length, head])

    def keys_reference(self, layer: int, head: int,
                       length: int) -> np.ndarray:
        """The pre-vectorization gather: one scalar dequantization per
        position — kept as the oracle the batched gathers are pinned
        against and the baseline the simperf benchmark measures."""
        from ..quant.kv8 import KVQuantParams, kv_dequantize

        self._check_written(layer, length, head)
        out = np.zeros((length, self.config.head_dim), dtype=np.float16)
        for pos in range(length):
            params = KVQuantParams(
                scale=self._k_scales[layer, pos, head],
                zero=int(self._k_zeros[layer, pos, head]))
            out[pos] = kv_dequantize(self._k_codes[layer, pos, head],
                                     params)
        return out

    def values_reference(self, layer: int, head: int,
                         length: int) -> np.ndarray:
        """Per-position scalar gather of values (see
        :meth:`keys_reference`)."""
        from ..quant.kv8 import KVQuantParams, kv_dequantize

        self._check_written(layer, length, head)
        out = np.zeros((length, self.config.head_dim), dtype=np.float16)
        for pos in range(length):
            params = KVQuantParams(
                scale=self._v_scales[layer, pos, head],
                zero=int(self._v_zeros[layer, pos, head]))
            out[pos] = kv_dequantize(self._v_codes[layer, pos, head],
                                     params)
        return out

    def keys_batch(self, layer: int, length: int,
                   dtype=np.float16) -> np.ndarray:
        """Dequantized FP16 keys of every head: (kv_heads, length, head_dim).

        Row ``h`` is bit-identical to ``keys(layer, h, length)`` — the
        dequantization is elementwise, so gathering all heads at once is
        pure layout.  ``dtype=np.float32`` keeps the FP16-grid values in
        float32 (the attention kernels' native representation).
        """
        self._check_written(layer, length)
        out = kv_dequantize_batch(self._k_codes[layer, :length],
                                  self._k_scales[layer, :length],
                                  self._k_zeros[layer, :length],
                                  dtype=dtype)
        return out.transpose(1, 0, 2)

    def values_batch(self, layer: int, length: int,
                     dtype=np.float16) -> np.ndarray:
        self._check_written(layer, length)
        out = kv_dequantize_batch(self._v_codes[layer, :length],
                                  self._v_scales[layer, :length],
                                  self._v_zeros[layer, :length],
                                  dtype=dtype)
        return out.transpose(1, 0, 2)

    def payload_bytes(self) -> int:
        """Stored code bytes for the current length (excludes packs)."""
        return (2 * self.config.num_layers * self.length
                * self.config.kv_dim * self.kv_bits // 8)

    def pack_bytes(self, pack_bits: int = 32) -> int:
        """Scale-zero pack bytes for the current length (Fig. 4B)."""
        return (2 * self.config.num_layers * self.length
                * self.config.kv_heads * pack_bits // 8)


class SlottedKVCache:
    """A pool of per-sequence KV8 caches with explicit allocate/free.

    This is the multi-sequence generalization the batched engine needs:
    ``n_slots`` independent sequences share one reservation, each slot
    holding up to ``max_context`` tokens.  :meth:`view` returns the slot's
    cache, which has the same interface as :class:`QuantizedKVCache` and
    can be handed directly to ``QuantizedModel.prefill/decode_step``.

    Freeing a slot *revokes* its cache object: any stale view held across
    the free raises :class:`SimulationError` instead of silently reading
    (or clobbering) whichever sequence claims the slot next.  The next
    allocation of the slot builds a fresh cache.
    """

    def __init__(self, config: ModelConfig, n_slots: int,
                 kv_bits: int = 8) -> None:
        if n_slots <= 0:
            raise SimulationError(
                f"slot pool needs at least one slot, got {n_slots}")
        self.config = config
        self.kv_bits = kv_bits
        self.n_slots = n_slots
        self._slots: list[QuantizedKVCache | None] = [None] * n_slots
        self._allocated: list[bool] = [False] * n_slots

    @property
    def n_allocated(self) -> int:
        return sum(self._allocated)

    @property
    def n_free(self) -> int:
        return self.n_slots - self.n_allocated

    def allocate(self) -> int:
        """Claim a free slot; raises :class:`SimulationError` when full.

        Each allocation builds a fresh cache — capacity-proportional,
        which is cheap for the tiny functional models this pool serves
        and what lets :meth:`free` revoke stale views outright.
        """
        for slot, used in enumerate(self._allocated):
            if not used:
                self._slots[slot] = QuantizedKVCache(self.config,
                                                     self.kv_bits)
                self._allocated[slot] = True
                return slot
        raise SimulationError(
            f"all {self.n_slots} KV slots are allocated")

    def free(self, slot: int) -> None:
        """Release a slot, revoking every outstanding view of it."""
        self._check(slot)
        cache = self._slots[slot]
        assert cache is not None
        cache.release()
        self._slots[slot] = None
        self._allocated[slot] = False

    def view(self, slot: int) -> QuantizedKVCache:
        """The slot's cache, usable wherever a QuantizedKVCache is."""
        self._check(slot)
        cache = self._slots[slot]
        assert cache is not None
        return cache

    def length(self, slot: int) -> int:
        return self.view(slot).length

    def total_tokens(self) -> int:
        """Cached tokens across all live slots (the capacity pressure)."""
        return sum(self._slots[s].length  # type: ignore[union-attr]
                   for s in range(self.n_slots) if self._allocated[s])

    def payload_bytes(self) -> int:
        """Stored KV code bytes across all live slots."""
        return (2 * self.config.num_layers * self.total_tokens()
                * self.config.kv_dim * self.kv_bits // 8)

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self.n_slots:
            raise SimulationError(
                f"slot {slot} outside pool of {self.n_slots}")
        if not self._allocated[slot]:
            raise SimulationError(f"slot {slot} is not allocated")
