"""LLaMA-like transformer substrate.

* :mod:`repro.model.weights` — weight containers, synthetic initialization,
  and whole-model AWQ quantization.
* :mod:`repro.model.llama` — float64 reference model (prefill + decode).
* :mod:`repro.model.quantized` — the hardware-equivalent functional model:
  W4A16 weights, FP16 datapath, LUT RoPE, three-pass softmax, KV8 cache.
* :mod:`repro.model.kvcache` — float and quantized KV caches.
* :mod:`repro.model.tokenizer` — byte-level tokenizer (the bare-metal PS
  program's tokenizer substitute).
* :mod:`repro.model.sampler` — greedy / temperature / top-k / top-p.
"""

from .kvcache import FloatKVCache, QuantizedKVCache
from .llama import ReferenceModel
from .quantized import QuantizedModel
from .sampler import Sampler
from .tokenizer import ByteTokenizer
from .weights import LayerWeights, ModelWeights, QuantizedModelWeights, quantize_model

__all__ = [
    "FloatKVCache",
    "QuantizedKVCache",
    "ReferenceModel",
    "QuantizedModel",
    "Sampler",
    "ByteTokenizer",
    "LayerWeights",
    "ModelWeights",
    "QuantizedModelWeights",
    "quantize_model",
]
