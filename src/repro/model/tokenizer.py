"""Byte-level tokenizer — the PS-side tokenizer of the bare-metal system.

The paper runs tokenization on the Zynq PS CPU (Fig. 1: "Tokenizer & Decode
Program").  Lacking the SentencePiece model, we substitute a byte-level
tokenizer: every byte of the UTF-8 input is one token, plus BOS/EOS
specials.  This exercises the identical PS->PL command path (token indices
over AXI-Lite) with a vocabulary that any synthetic model can cover.
"""

from __future__ import annotations

from ..errors import ConfigError

BYTE_VOCAB = 256


class ByteTokenizer:
    """UTF-8 byte tokenizer with BOS/EOS specials."""

    def __init__(self, vocab_size: int = BYTE_VOCAB + 2) -> None:
        if vocab_size < BYTE_VOCAB + 2:
            raise ConfigError(
                f"vocab_size must be >= {BYTE_VOCAB + 2} to fit bytes + "
                f"specials, got {vocab_size}"
            )
        self.vocab_size = vocab_size
        self.bos_id = BYTE_VOCAB
        self.eos_id = BYTE_VOCAB + 1

    def encode(self, text: str, add_bos: bool = True,
               add_eos: bool = False) -> list[int]:
        """Text -> token ids (one per UTF-8 byte)."""
        ids = list(text.encode("utf-8"))
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: list[int]) -> str:
        """Token ids -> text.

        Specials and vocabulary-padding ids (non-byte ids below
        ``vocab_size``, which a synthetic model can legitimately emit) are
        dropped; ids outside the vocabulary are rejected.
        """
        data = bytearray()
        for i in ids:
            if not 0 <= i < self.vocab_size:
                raise ConfigError(f"token id {i} outside the vocabulary")
            if i < BYTE_VOCAB:
                data.append(i)
        return data.decode("utf-8", errors="replace")
