"""Float64 reference implementation of the LLaMA-like model.

This is the ground truth against which the quantized/hardware functional
pipeline is validated.  It implements both inference phases of Fig. 2:

* :meth:`ReferenceModel.prefill` — GEMM over all prompt tokens at once;
* :meth:`ReferenceModel.decode_step` — GEMV for one token using the cache.

Attention follows the pre-norm LLaMA structure: RMSNorm -> QKV projection
-> RoPE on Q/K -> causal softmax attention over the KV cache -> output
projection -> residual; then RMSNorm -> gated SiLU MLP -> residual.
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..errors import SimulationError
from ..numerics.rmsnorm import reference_rmsnorm
from ..numerics.rope import reference_rope
from ..numerics.silu import reference_silu
from ..numerics.softmax import reference_softmax
from .kvcache import FloatKVCache
from .weights import LayerWeights, ModelWeights


class ReferenceModel:
    """Exact float64 forward passes for prefill and decode."""

    def __init__(self, weights: ModelWeights) -> None:
        self.weights = weights
        self.config: ModelConfig = weights.config

    # -- building blocks ----------------------------------------------------

    def _split_heads(self, x: np.ndarray, n_heads: int) -> np.ndarray:
        """(..., n_heads * head_dim) -> (..., n_heads, head_dim)."""
        return x.reshape(*x.shape[:-1], n_heads, self.config.head_dim)

    def _attention_one_token(self, layer: LayerWeights, x: np.ndarray,
                             cache: FloatKVCache, layer_idx: int,
                             position: int) -> np.ndarray:
        cfg = self.config
        normed = reference_rmsnorm(x, layer.input_norm, cfg.norm_eps)

        q = self._split_heads(layer.wq @ normed, cfg.num_heads)
        k = self._split_heads(layer.wk @ normed, cfg.kv_heads)
        v = self._split_heads(layer.wv @ normed, cfg.kv_heads)

        q = np.stack([reference_rope(q[h], position, cfg.rope_theta)
                      for h in range(cfg.num_heads)])
        k = np.stack([reference_rope(k[h], position, cfg.rope_theta)
                      for h in range(cfg.kv_heads)])

        cache.append(layer_idx, k, v, position)
        length = position + 1
        keys = cache.keys(layer_idx, length)      # (len, kv_heads, d)
        values = cache.values(layer_idx, length)  # (len, kv_heads, d)

        group = cfg.num_heads // cfg.kv_heads
        scale = 1.0 / np.sqrt(cfg.head_dim)
        head_outputs = []
        for h in range(cfg.num_heads):
            kv_h = h // group
            scores = keys[:, kv_h] @ q[h] * scale
            probs = reference_softmax(scores)
            head_outputs.append(probs @ values[:, kv_h])
        attn = np.concatenate(head_outputs)
        return x + layer.wo @ attn

    def _mlp_one_token(self, layer: LayerWeights, x: np.ndarray) -> np.ndarray:
        cfg = self.config
        normed = reference_rmsnorm(x, layer.post_norm, cfg.norm_eps)
        up = layer.w_up @ normed
        if cfg.gated_mlp:
            if layer.w_gate is None:
                raise SimulationError("gated model without gate weights")
            gate = layer.w_gate @ normed
            hidden = reference_silu(gate) * up
        else:
            hidden = reference_silu(up)
        return x + layer.w_down @ hidden

    # -- public API ----------------------------------------------------------

    def embed(self, token: int) -> np.ndarray:
        if not 0 <= token < self.config.vocab_size:
            raise SimulationError(f"token {token} outside vocabulary")
        return self.weights.embedding[token].astype(np.float64)

    def forward_token(self, token: int, cache: FloatKVCache,
                      position: int) -> np.ndarray:
        """Full forward pass of one token; returns the logits vector."""
        x = self.embed(token)
        for layer_idx, layer in enumerate(self.weights.layers):
            x = self._attention_one_token(layer, x, cache, layer_idx, position)
            x = self._mlp_one_token(layer, x)
        x = reference_rmsnorm(x, self.weights.final_norm, self.config.norm_eps)
        return self.weights.head_matrix() @ x

    def prefill(self, tokens: list[int],
                cache: FloatKVCache | None = None,
                ) -> tuple[np.ndarray, FloatKVCache]:
        """Process a prompt; returns (logits of last token, populated cache).

        Processed token-by-token for clarity — the GEMM batching of the
        real prefill phase is a performance detail the reference model
        does not need (its job is numerical ground truth).
        """
        if not tokens:
            raise SimulationError("prefill requires at least one token")
        if cache is None:
            cache = FloatKVCache(self.config)
        logits = None
        for position, token in enumerate(tokens):
            logits = self.forward_token(token, cache, position)
        assert logits is not None
        return logits, cache

    def decode_step(self, token: int, cache: FloatKVCache,
                    position: int) -> np.ndarray:
        """One autoregressive decode step (GEMV phase)."""
        return self.forward_token(token, cache, position)

    def generate(self, prompt: list[int], max_new_tokens: int,
                 sampler=None) -> list[int]:
        """Greedy (or sampled) generation; returns only the new tokens."""
        logits, cache = self.prefill(prompt)
        out: list[int] = []
        position = len(prompt)
        for _ in range(max_new_tokens):
            if position >= self.config.max_context:
                break
            token = (int(np.argmax(logits)) if sampler is None
                     else sampler.sample(logits))
            out.append(token)
            logits = self.decode_step(token, cache, position)
            position += 1
        return out
