"""Token samplers for the decode loop (the PS-side "Sample" box of Fig. 2).

Greedy, temperature, top-k, and top-p (nucleus) sampling over a logits
vector.  The sampler owns its RNG so generation is reproducible.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class Sampler:
    """Configurable sampler: greedy when ``temperature == 0``."""

    def __init__(self, temperature: float = 0.0, top_k: int = 0,
                 top_p: float = 1.0, seed: int = 0) -> None:
        if temperature < 0:
            raise ConfigError(f"temperature must be >= 0, got {temperature}")
        if top_k < 0:
            raise ConfigError(f"top_k must be >= 0, got {top_k}")
        if not 0.0 < top_p <= 1.0:
            raise ConfigError(f"top_p must be in (0, 1], got {top_p}")
        self.temperature = temperature
        self.top_k = top_k
        self.top_p = top_p
        self._rng = np.random.default_rng(seed)

    def sample(self, logits: np.ndarray) -> int:
        """Pick a token id from a 1-D logits vector."""
        logits = np.asarray(logits, dtype=np.float64).reshape(-1)
        if logits.size == 0:
            raise ConfigError("cannot sample from empty logits")
        if self.temperature == 0.0:
            return int(np.argmax(logits))

        scaled = logits / self.temperature
        scaled -= scaled.max()
        probs = np.exp(scaled)
        probs /= probs.sum()

        if self.top_k > 0 and self.top_k < probs.size:
            cutoff = np.partition(probs, -self.top_k)[-self.top_k]
            probs = np.where(probs >= cutoff, probs, 0.0)
            probs /= probs.sum()

        if self.top_p < 1.0:
            order = np.argsort(probs)[::-1]
            cumulative = np.cumsum(probs[order])
            # Keep the smallest prefix whose mass reaches top_p.
            keep = cumulative - probs[order] < self.top_p
            mask = np.zeros_like(probs, dtype=bool)
            mask[order[keep]] = True
            probs = np.where(mask, probs, 0.0)
            probs /= probs.sum()

        return int(self._rng.choice(probs.size, p=probs))
