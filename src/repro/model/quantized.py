"""Hardware-equivalent functional model: W4A16 + KV8 + FP16 datapath.

This model computes exactly what the accelerator's datapath computes,
minus the clock: dequantized AWQ weights feed the 128-lane FP16 DOT
engine (:func:`repro.numerics.fp16.fp16_matvec`), RoPE comes from the
quarter-sine/inverse-frequency ROMs, softmax is the three-pass FP16
variant, RMSNorm the two-pass variant, and the KV cache is quantized to
8 bits per element on write and dequantized on read.

Note on AWQ folding: the hardware divides activations by the AWQ channel
scales (folded into the preceding operator); we fold the division into the
dequantized weight matrix instead (``AwqResult.effective_weight``), which
is algebraically identical and keeps the pipeline readable.

Batching note: every hot path here is vectorized — all attention heads
per token (:meth:`QuantizedModel._attention`), all prompt positions per
layer (:meth:`QuantizedModel.prefill`), and all concurrent sequences per
decode step (:meth:`QuantizedModel.forward_batch`).  Each added batch
axis stacks *independent* reductions of identical length, which the
tile/tree kernels of :mod:`repro.numerics.fp16` round identically, so
the vectorized model emits bit-for-bit the token streams of the scalar
reference (pinned by ``tests/test_backend_equivalence.py`` and the
kernel property tests).
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..errors import SimulationError
from ..numerics.fp16 import (as_fp16_grid, fp16, fp16_batched_scores,
                             fp16_batched_weighted_values, fp16_matmul_t,
                             fp16_matvec)
from ..numerics.rmsnorm import batched_two_pass_rmsnorm, two_pass_rmsnorm
from ..numerics.rope import HardwareRope
from ..numerics.silu import hardware_gated_silu, hardware_silu
from ..numerics.softmax import batched_three_pass_softmax
from .kvcache import QuantizedKVCache
from .weights import QuantizedModelWeights


def attend_grouped(q: np.ndarray, caches, layer_idx: int, lengths,
                   head_map: np.ndarray, inv_sqrt_d: np.float32,
                   lanes: int) -> np.ndarray:
    """Scaled-dot attention for several rows of heads in as few kernel
    calls as their context lengths allow.

    ``q`` is (n, heads, head_dim) rotated queries with one KV cache and
    context length per row; ``head_map`` maps each query head to its
    (GQA-shared) KV head.  The tile/tree schedule depends only on the
    reduction length, so rows with EQUAL context lengths stack along
    the head axis into one kernel call per stage (sequences admitted
    together decode in lockstep, so whole batches usually share one
    length); unequal rows fall into separate groups.  Returns
    (n, heads * head_dim), row-bit-identical either way.

    Shared by the single-device model and every tensor-parallel shard
    worker — one copy of the rounding-schedule-critical staging.
    """
    n, heads = q.shape[0], q.shape[1]
    groups: dict[int, list[int]] = {}
    for i, length in enumerate(lengths):
        groups.setdefault(length, []).append(i)
    out = [None] * n
    for length, idxs in groups.items():
        k_parts = [caches[i].keys_batch(layer_idx, length,
                                        dtype=np.float32)[head_map]
                   for i in idxs]
        v_parts = [caches[i].values_batch(layer_idx, length,
                                          dtype=np.float32)[head_map]
                   for i in idxs]
        if len(idxs) == 1:
            keys, values, qs = k_parts[0], v_parts[0], q[idxs[0]]
        else:
            # Concatenation of on-grid gathers stays on the grid;
            # re-certify so the kernels skip the re-rounding pass.
            keys = as_fp16_grid(np.concatenate(k_parts))
            values = as_fp16_grid(np.concatenate(v_parts))
            qs = np.concatenate([q[i] for i in idxs])
        # DOT of the rotated query against each (dequantized) cached
        # key, then the scaling multiplier (Fig. 5B).
        scores = fp16_batched_scores(keys, qs, lanes=lanes)
        scores = fp16(scores.astype(np.float32) * inv_sqrt_d)
        probs = batched_three_pass_softmax(scores)
        # Scaled-dot: values weighted by softmax probabilities.
        weighted = fp16_batched_weighted_values(values, probs,
                                                lanes=lanes)
        for j, i in enumerate(idxs):
            out[i] = weighted[j * heads : (j + 1) * heads].reshape(-1)
    return np.stack(out)


class QuantizedModel:
    """Functional decode/prefill pipeline over quantized weights."""

    def __init__(self, qweights: QuantizedModelWeights,
                 lanes: int = 128) -> None:
        self.qweights = qweights
        self.config: ModelConfig = qweights.config
        self.lanes = lanes
        self.rope = HardwareRope(self.config.head_dim, self.config.rope_theta)
        # Dequantize once up front: the hardware dequantizes on the fly,
        # but the mapping code->FP16 value is deterministic, so the
        # functional result is identical.  Stored as float32 carrying
        # FP16-grid values — the tiled kernels' native representation,
        # so no per-call half upcasts on the weight matrices.
        self._mats: list[dict[str, np.ndarray]] = []
        self._mats_t: list[dict[str, np.ndarray]] = []
        for layer in qweights.layers:
            mats = {name: as_fp16_grid(fp16(result.effective_weight()))
                    for name, result in layer.items()}
            self._mats.append(mats)
            # (in, out)-contiguous twins: the layout fp16_matmul_t feeds
            # the adder tree without a per-call axis move.
            self._mats_t.append({name: as_fp16_grid(mat.T)
                                 for name, mat in mats.items()})
        self._head = as_fp16_grid(fp16(qweights.lm_head.effective_weight()))
        self._head_t = as_fp16_grid(self._head.T)
        # Which KV head serves each query head (GQA replication map).
        group = self.config.num_heads // self.config.kv_heads
        self._head_map = np.repeat(np.arange(self.config.kv_heads), group)
        self._inv_sqrt_d = fp16(1.0 / np.sqrt(self.config.head_dim)) \
            .astype(np.float32)

    # -- building blocks ----------------------------------------------------

    def _matvec(self, mat: np.ndarray, x: np.ndarray) -> np.ndarray:
        return fp16_matvec(mat, x, lanes=self.lanes)

    def _matmul_t(self, mat_t: np.ndarray, x: np.ndarray) -> np.ndarray:
        return fp16_matmul_t(mat_t, x, lanes=self.lanes)

    def _split_heads(self, x: np.ndarray, n_heads: int) -> np.ndarray:
        return x.reshape(n_heads, self.config.head_dim)

    def _attend(self, q: np.ndarray, cache: QuantizedKVCache,
                layer_idx: int, length: int) -> np.ndarray:
        """Scaled-dot attention of every head over ``length`` cached
        tokens; ``q`` is (num_heads, head_dim) rotated queries.  One
        batched kernel per stage instead of a per-head Python loop —
        row ``h`` sees the identical tile/tree schedule either way.
        """
        return self._attend_many(q[None], [cache], layer_idx, [length])[0]

    def _attend_many(self, q: np.ndarray, caches, layer_idx: int,
                     lengths) -> np.ndarray:
        """:func:`attend_grouped` over this model's heads and GQA map."""
        return attend_grouped(q, caches, layer_idx, lengths,
                              self._head_map, self._inv_sqrt_d,
                              lanes=self.lanes)

    def _attention(self, layer_idx: int, x: np.ndarray,
                   cache: QuantizedKVCache, position: int) -> np.ndarray:
        cfg = self.config
        mats = self._mats[layer_idx]
        input_norm, _ = self.qweights.norms[layer_idx]
        normed = two_pass_rmsnorm(x, input_norm, cfg.norm_eps)

        q = self._split_heads(self._matvec(mats["wq"], normed), cfg.num_heads)
        k = self._split_heads(self._matvec(mats["wk"], normed), cfg.kv_heads)
        v = self._split_heads(self._matvec(mats["wv"], normed), cfg.kv_heads)

        q = self.rope.apply(q, position)
        k = self.rope.apply(k, position)

        # On-chip KV8 quantization happens as K/V are generated (Sec. IV-B).
        cache.append(layer_idx, k, v, position)

        attn = self._attend(q, cache, layer_idx, position + 1)
        out = self._matvec(mats["wo"], attn)
        return fp16(x.astype(np.float32) + out.astype(np.float32))

    def _mlp(self, layer_idx: int, x: np.ndarray) -> np.ndarray:
        cfg = self.config
        mats = self._mats[layer_idx]
        _, post_norm = self.qweights.norms[layer_idx]
        normed = two_pass_rmsnorm(x, post_norm, cfg.norm_eps)
        up = self._matvec(mats["w_up"], normed)
        if cfg.gated_mlp:
            gate = self._matvec(mats["w_gate"], normed)
            hidden = hardware_gated_silu(gate, up)
        else:
            hidden = hardware_silu(up)
        down = self._matvec(mats["w_down"], hidden)
        return fp16(x.astype(np.float32) + down.astype(np.float32))

    def _mlp_batch(self, layer_idx: int, x: np.ndarray) -> np.ndarray:
        """Gated MLP over a stack of hidden states: ``x`` is (n, hidden)."""
        cfg = self.config
        mats = self._mats_t[layer_idx]
        _, post_norm = self.qweights.norms[layer_idx]
        normed = batched_two_pass_rmsnorm(x, post_norm, cfg.norm_eps)
        up = self._matmul_t(mats["w_up"], normed.T)
        if cfg.gated_mlp:
            gate = self._matmul_t(mats["w_gate"], normed.T)
            hidden = hardware_gated_silu(gate, up)
        else:
            hidden = hardware_silu(up)
        down = self._matmul_t(mats["w_down"], hidden)
        return fp16(x.astype(np.float32) + down.T.astype(np.float32))

    # -- public API ----------------------------------------------------------

    def embed(self, token: int) -> np.ndarray:
        if not 0 <= token < self.config.vocab_size:
            raise SimulationError(f"token {token} outside vocabulary")
        return self.qweights.embedding[token]

    def forward_token(self, token: int, cache: QuantizedKVCache,
                      position: int) -> np.ndarray:
        """One token through all layers; returns FP16 logits."""
        x = self.embed(token)
        for layer_idx in range(self.config.num_layers):
            x = self._attention(layer_idx, x, cache, position)
            x = self._mlp(layer_idx, x)
        x = two_pass_rmsnorm(x, self.qweights.final_norm, self.config.norm_eps)
        return self._matvec(self._head, x)

    def forward_token_reference(self, token: int, cache: QuantizedKVCache,
                                position: int) -> np.ndarray:
        """Scalar-oracle forward: one head, one kernel call at a time.

        The pre-vectorization decode path, kept as the reference the
        batched kernels are pinned against (and the baseline the simperf
        benchmark measures speedups from): per-head matvec scores,
        per-head 1-D softmax, per-head weighted-value matvec, all over
        per-head, per-position KV gathers (``keys_reference`` /
        ``values_reference`` where the cache provides them).  Must stay
        bit-identical to :meth:`forward_token`.
        """
        from ..numerics.softmax import three_pass_softmax

        cfg = self.config
        x = self.embed(token)
        for layer_idx in range(cfg.num_layers):
            mats = self._mats[layer_idx]
            input_norm, _ = self.qweights.norms[layer_idx]
            normed = two_pass_rmsnorm(x, input_norm, cfg.norm_eps)
            q = self._split_heads(self._matvec(mats["wq"], normed),
                                  cfg.num_heads)
            k = self._split_heads(self._matvec(mats["wk"], normed),
                                  cfg.kv_heads)
            v = self._split_heads(self._matvec(mats["wv"], normed),
                                  cfg.kv_heads)
            q = np.stack([self.rope.apply(q[h], position)
                          for h in range(cfg.num_heads)])
            k = np.stack([self.rope.apply(k[h], position)
                          for h in range(cfg.kv_heads)])
            cache.append(layer_idx, k, v, position)
            length = position + 1
            group = cfg.num_heads // cfg.kv_heads
            inv_sqrt_d = fp16(1.0 / np.sqrt(cfg.head_dim)).astype(np.float32)
            gather_k = getattr(cache, "keys_reference", cache.keys)
            gather_v = getattr(cache, "values_reference", cache.values)
            head_outputs = []
            for h in range(cfg.num_heads):
                kv_h = h // group
                keys = gather_k(layer_idx, kv_h, length)
                values = gather_v(layer_idx, kv_h, length)
                scores = fp16_matvec(keys, q[h], lanes=self.lanes)
                scores = fp16(scores.astype(np.float32) * inv_sqrt_d)
                probs = three_pass_softmax(scores)
                head_outputs.append(fp16_matvec(values.T, probs,
                                                lanes=self.lanes))
            attn = np.concatenate(head_outputs)
            out = self._matvec(mats["wo"], attn)
            x = fp16(x.astype(np.float32) + out.astype(np.float32))
            x = self._mlp(layer_idx, x)
        x = two_pass_rmsnorm(x, self.qweights.final_norm, self.config.norm_eps)
        return self._matvec(self._head, x)

    def prefill(self, tokens: list[int],
                cache: QuantizedKVCache | None = None,
                start: int = 0,
                ) -> tuple[np.ndarray, QuantizedKVCache]:
        """Feed ``tokens`` through the model, resuming at ``start``.

        ``start > 0`` skips positions whose K/V the cache already holds
        (shared-prefix reuse): only ``tokens[start:]`` are forwarded.  The
        final prompt token is always forwarded — its logits seed the first
        sample — so ``start`` must stay below ``len(tokens)``.

        All forwarded positions run each layer as ONE projection matmul
        (the GEMM reuse the paper reserves for prefill); only the
        causally-masked attention reductions stay per position, since
        position ``p`` attends over ``p + 1`` cached tokens and the
        tile/tree schedule depends on that length.
        """
        if not tokens:
            raise SimulationError("prefill requires at least one token")
        if not 0 <= start < len(tokens):
            raise SimulationError(
                f"prefill start {start} outside prompt of {len(tokens)}")
        if cache is None:
            cache = QuantizedKVCache(self.config, self.qweights.quant.kv_bits)
        if start > cache.length:
            raise SimulationError(
                f"prefill start {start} beyond the cache's "
                f"{cache.length} stored tokens")
        cfg = self.config
        positions = list(range(start, len(tokens)))
        x = fp16(np.stack([self.embed(tokens[p]) for p in positions]))
        for layer_idx in range(cfg.num_layers):
            mats = self._mats_t[layer_idx]
            input_norm, _ = self.qweights.norms[layer_idx]
            normed = batched_two_pass_rmsnorm(x, input_norm, cfg.norm_eps)
            q = self._matmul_t(mats["wq"], normed.T).T \
                .reshape(-1, cfg.num_heads, cfg.head_dim)
            k = self._matmul_t(mats["wk"], normed.T).T \
                .reshape(-1, cfg.kv_heads, cfg.head_dim)
            v = self._matmul_t(mats["wv"], normed.T).T \
                .reshape(-1, cfg.kv_heads, cfg.head_dim)
            q = self.rope.apply_many(q, positions)
            k = self.rope.apply_many(k, positions)
            for i, position in enumerate(positions):
                cache.append(layer_idx, k[i], v[i], position)
            attn = self._attend_many(q, [cache] * len(positions),
                                     layer_idx,
                                     [p + 1 for p in positions])
            out = self._matmul_t(mats["wo"], attn.T)
            x = fp16(x.astype(np.float32) + out.T.astype(np.float32))
            x = self._mlp_batch(layer_idx, x)
        last = two_pass_rmsnorm(x[-1], self.qweights.final_norm,
                                cfg.norm_eps)
        return self._matvec(self._head, last), cache

    def decode_step(self, token: int, cache: QuantizedKVCache,
                    position: int) -> np.ndarray:
        return self.forward_token(token, cache, position)

    def forward_batch(self, tokens: list[int], caches: list,
                      positions: list[int]) -> np.ndarray:
        """One decode step for N independent sequences; (n, vocab) logits.

        Each sequence owns its cache and position; the per-layer
        projections of all sequences run as one stacked matmul per
        weight matrix (the weight stream is read once — the same
        amortization the batched cycle model charges), while the
        attention reductions stay per sequence, each over its own
        context length.  Row ``i`` is bit-identical to
        ``decode_step(tokens[i], caches[i], positions[i])``.
        """
        if not (len(tokens) == len(caches) == len(positions)):
            raise SimulationError(
                f"forward_batch arity mismatch: {len(tokens)} tokens, "
                f"{len(caches)} caches, {len(positions)} positions")
        cfg = self.config
        x = fp16(np.stack([self.embed(t) for t in tokens]))
        for layer_idx in range(cfg.num_layers):
            mats = self._mats_t[layer_idx]
            input_norm, _ = self.qweights.norms[layer_idx]
            normed = batched_two_pass_rmsnorm(x, input_norm, cfg.norm_eps)
            q = self._matmul_t(mats["wq"], normed.T).T \
                .reshape(-1, cfg.num_heads, cfg.head_dim)
            k = self._matmul_t(mats["wk"], normed.T).T \
                .reshape(-1, cfg.kv_heads, cfg.head_dim)
            v = self._matmul_t(mats["wv"], normed.T).T \
                .reshape(-1, cfg.kv_heads, cfg.head_dim)
            q = self.rope.apply_many(q, positions)
            k = self.rope.apply_many(k, positions)
            for i, (cache, position) in enumerate(zip(caches, positions)):
                cache.append(layer_idx, k[i], v[i], position)
            attn = self._attend_many(q, caches, layer_idx,
                                     [p + 1 for p in positions])
            out = self._matmul_t(mats["wo"], attn.T)
            x = fp16(x.astype(np.float32) + out.T.astype(np.float32))
            x = self._mlp_batch(layer_idx, x)
        normed = batched_two_pass_rmsnorm(x, self.qweights.final_norm,
                                          cfg.norm_eps)
        return self._matmul_t(self._head_t, normed.T).T

    def generate(self, prompt: list[int], max_new_tokens: int,
                 sampler=None) -> list[int]:
        logits, cache = self.prefill(prompt)
        out: list[int] = []
        position = len(prompt)
        for _ in range(max_new_tokens):
            if position >= self.config.max_context:
                break
            token = (int(np.argmax(logits)) if sampler is None
                     else sampler.sample(logits))
            out.append(token)
            logits = self.decode_step(token, cache, position)
            position += 1
        return out
