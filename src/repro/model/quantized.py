"""Hardware-equivalent functional model: W4A16 + KV8 + FP16 datapath.

This model computes exactly what the accelerator's datapath computes,
minus the clock: dequantized AWQ weights feed the 128-lane FP16 DOT
engine (:func:`repro.numerics.fp16.fp16_matvec`), RoPE comes from the
quarter-sine/inverse-frequency ROMs, softmax is the three-pass FP16
variant, RMSNorm the two-pass variant, and the KV cache is quantized to
8 bits per element on write and dequantized on read.

Note on AWQ folding: the hardware divides activations by the AWQ channel
scales (folded into the preceding operator); we fold the division into the
dequantized weight matrix instead (``AwqResult.effective_weight``), which
is algebraically identical and keeps the pipeline readable.
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..errors import SimulationError
from ..numerics.fp16 import fp16, fp16_matvec
from ..numerics.rmsnorm import two_pass_rmsnorm
from ..numerics.rope import HardwareRope
from ..numerics.silu import hardware_gated_silu, hardware_silu
from ..numerics.softmax import three_pass_softmax
from .kvcache import QuantizedKVCache
from .weights import QuantizedModelWeights


class QuantizedModel:
    """Functional decode/prefill pipeline over quantized weights."""

    def __init__(self, qweights: QuantizedModelWeights,
                 lanes: int = 128) -> None:
        self.qweights = qweights
        self.config: ModelConfig = qweights.config
        self.lanes = lanes
        self.rope = HardwareRope(self.config.head_dim, self.config.rope_theta)
        # Dequantize once up front: the hardware dequantizes on the fly,
        # but the mapping code->FP16 value is deterministic, so the
        # functional result is identical.
        self._mats: list[dict[str, np.ndarray]] = []
        for layer in qweights.layers:
            self._mats.append({name: fp16(result.effective_weight())
                               for name, result in layer.items()})
        self._head = fp16(qweights.lm_head.effective_weight())

    # -- building blocks ----------------------------------------------------

    def _matvec(self, mat: np.ndarray, x: np.ndarray) -> np.ndarray:
        return fp16_matvec(mat, x, lanes=self.lanes)

    def _split_heads(self, x: np.ndarray, n_heads: int) -> np.ndarray:
        return x.reshape(n_heads, self.config.head_dim)

    def _attention(self, layer_idx: int, x: np.ndarray,
                   cache: QuantizedKVCache, position: int) -> np.ndarray:
        cfg = self.config
        mats = self._mats[layer_idx]
        input_norm, _ = self.qweights.norms[layer_idx]
        normed = two_pass_rmsnorm(x, input_norm, cfg.norm_eps)

        q = self._split_heads(self._matvec(mats["wq"], normed), cfg.num_heads)
        k = self._split_heads(self._matvec(mats["wk"], normed), cfg.kv_heads)
        v = self._split_heads(self._matvec(mats["wv"], normed), cfg.kv_heads)

        q = np.stack([self.rope.apply(q[h], position)
                      for h in range(cfg.num_heads)])
        k = np.stack([self.rope.apply(k[h], position)
                      for h in range(cfg.kv_heads)])

        # On-chip KV8 quantization happens as K/V are generated (Sec. IV-B).
        cache.append(layer_idx, k, v, position)
        length = position + 1

        group = cfg.num_heads // cfg.kv_heads
        inv_sqrt_d = fp16(1.0 / np.sqrt(cfg.head_dim)).astype(np.float32)
        head_outputs = []
        for h in range(cfg.num_heads):
            kv_h = h // group
            keys = cache.keys(layer_idx, kv_h, length).astype(np.float32)
            values = cache.values(layer_idx, kv_h, length).astype(np.float32)
            # DOT of the rotated query against each (dequantized) cached key,
            # then the scaling multiplier (Fig. 5B).
            scores = fp16_matvec(keys, q[h], lanes=self.lanes)
            scores = fp16(scores.astype(np.float32) * inv_sqrt_d)
            probs = three_pass_softmax(scores)
            # Scaled-dot: values weighted by softmax probabilities.
            head_outputs.append(fp16_matvec(values.T, probs, lanes=self.lanes))
        attn = np.concatenate(head_outputs)
        out = self._matvec(mats["wo"], attn)
        return fp16(x.astype(np.float32) + out.astype(np.float32))

    def _mlp(self, layer_idx: int, x: np.ndarray) -> np.ndarray:
        cfg = self.config
        mats = self._mats[layer_idx]
        _, post_norm = self.qweights.norms[layer_idx]
        normed = two_pass_rmsnorm(x, post_norm, cfg.norm_eps)
        up = self._matvec(mats["w_up"], normed)
        if cfg.gated_mlp:
            gate = self._matvec(mats["w_gate"], normed)
            hidden = hardware_gated_silu(gate, up)
        else:
            hidden = hardware_silu(up)
        down = self._matvec(mats["w_down"], hidden)
        return fp16(x.astype(np.float32) + down.astype(np.float32))

    # -- public API ----------------------------------------------------------

    def embed(self, token: int) -> np.ndarray:
        if not 0 <= token < self.config.vocab_size:
            raise SimulationError(f"token {token} outside vocabulary")
        return self.qweights.embedding[token]

    def forward_token(self, token: int, cache: QuantizedKVCache,
                      position: int) -> np.ndarray:
        """One token through all layers; returns FP16 logits."""
        x = self.embed(token)
        for layer_idx in range(self.config.num_layers):
            x = self._attention(layer_idx, x, cache, position)
            x = self._mlp(layer_idx, x)
        x = two_pass_rmsnorm(x, self.qweights.final_norm, self.config.norm_eps)
        return self._matvec(self._head, x)

    def prefill(self, tokens: list[int],
                cache: QuantizedKVCache | None = None,
                start: int = 0,
                ) -> tuple[np.ndarray, QuantizedKVCache]:
        """Feed ``tokens`` through the model, resuming at ``start``.

        ``start > 0`` skips positions whose K/V the cache already holds
        (shared-prefix reuse): only ``tokens[start:]`` are forwarded.  The
        final prompt token is always forwarded — its logits seed the first
        sample — so ``start`` must stay below ``len(tokens)``.
        """
        if not tokens:
            raise SimulationError("prefill requires at least one token")
        if not 0 <= start < len(tokens):
            raise SimulationError(
                f"prefill start {start} outside prompt of {len(tokens)}")
        if cache is None:
            cache = QuantizedKVCache(self.config, self.qweights.quant.kv_bits)
        if start > cache.length:
            raise SimulationError(
                f"prefill start {start} beyond the cache's "
                f"{cache.length} stored tokens")
        logits = None
        for position in range(start, len(tokens)):
            logits = self.forward_token(tokens[position], cache, position)
        assert logits is not None
        return logits, cache

    def decode_step(self, token: int, cache: QuantizedKVCache,
                    position: int) -> np.ndarray:
        return self.forward_token(token, cache, position)

    def generate(self, prompt: list[int], max_new_tokens: int,
                 sampler=None) -> list[int]:
        logits, cache = self.prefill(prompt)
        out: list[int] = []
        position = len(prompt)
        for _ in range(max_new_tokens):
            if position >= self.config.max_context:
                break
            token = (int(np.argmax(logits)) if sampler is None
                     else sampler.sample(logits))
            out.append(token)
            logits = self.decode_step(token, cache, position)
            position += 1
        return out
