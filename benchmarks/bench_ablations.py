"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but the design arguments it makes in prose:

* AXI port count — 4 ports are needed to match DDR bandwidth (Sec. VI-A);
* VPU lane count — 128 lanes exactly consume the stream; fewer lanes make
  decode compute-bound, more waste area (Sec. VI-B's PPA argument);
* KV cache bit-width — KV8 vs KV4 vs FP16 capacity/speed trade
  (Sec. IV-B);
* weight bit-width — W4 vs W8 decode speed (Sec. IV-A);
* pipeline mode — fused vs coarse across contexts (Sec. V-A).
"""

import pytest

from repro.config import KV260, LLAMA2_7B, W4A16_KV8, PlatformConfig, QuantConfig
from repro.core.cyclemodel import CycleModel
from repro.core.resources import estimate_resources
from repro.core.vpu import VpuSpec
from repro.memory.axi import AxiPortGroup
from repro.runtime.baremetal import BareMetalSystem


def _platform_with_ports(n: int) -> PlatformConfig:
    return PlatformConfig(
        name=f"KV260-{n}port", dram_bytes=KV260.dram_bytes,
        bandwidth_gbps=KV260.bandwidth_gbps, kind="fpga",
        pl_freq_hz=KV260.pl_freq_hz, axi_port_bits=128, axi_ports=n,
    )


def bench_axi_port_count(benchmark, save_result):
    """Decode rate vs number of 128-bit AXI ports."""
    def sweep():
        out = {}
        for ports in (1, 2, 3, 4):
            cm = CycleModel(LLAMA2_7B, W4A16_KV8, _platform_with_ports(ports))
            out[ports] = cm.decode_step(512).tokens_per_s
        return out

    rates = benchmark(sweep)
    text = "AXI ports -> token/s @ctx512\n" + "\n".join(
        f"  {p} ports: {r:.3f}" for p, r in rates.items())
    save_result("ablation_axi_ports", text)

    # Each port adds 4.8 GB/s until DDR saturates at 4.
    assert rates[1] == pytest.approx(rates[4] / 4, rel=0.1)
    assert rates[4] > rates[3] > rates[2] > rates[1]
    assert AxiPortGroup(4, 128, 300e6).is_bandwidth_matched(19.2e9)
    assert not AxiPortGroup(3, 128, 300e6).is_bandwidth_matched(19.2e9)


def bench_vpu_lanes(benchmark, save_result):
    """Lane count: 64 lanes throttle decode; 256 only burn area."""
    def sweep():
        out = {}
        for lanes in (64, 128, 256):
            cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260,
                            vpu=VpuSpec(lanes=lanes))
            dsp = estimate_resources(lanes=lanes).total.dsp
            out[lanes] = (cm.decode_step(512).tokens_per_s, dsp)
        return out

    results = benchmark(sweep)
    text = "VPU lanes -> (token/s @ctx512, DSPs)\n" + "\n".join(
        f"  {l:3d} lanes: {r[0]:.3f} token/s, {r[1]:.0f} DSP"
        for l, r in results.items())
    save_result("ablation_vpu_lanes", text)

    # 64 lanes: compute-bound (128 weights arrive per cycle, 64 consumed).
    assert results[64][0] < 0.6 * results[128][0]
    # 256 lanes: no speedup (bandwidth-bound), ~2x the DSPs.
    assert results[256][0] == pytest.approx(results[128][0], rel=0.01)
    assert results[256][1] > 1.8 * results[128][1]


def bench_kv_bits(benchmark, save_result):
    """KV cache precision: capacity and speed at context 1024."""
    def sweep():
        out = {}
        for bits in (4, 8, 16):
            quant = QuantConfig(kv_bits=bits)
            cm = CycleModel(LLAMA2_7B, quant, KV260)
            system = BareMetalSystem(KV260)
            report = system.capacity_report(LLAMA2_7B, quant, 1024)
            out[bits] = (cm.decode_step(1023).tokens_per_s,
                         report.kv_bytes / 2**20, report.fits)
        return out

    results = benchmark(sweep)
    text = "KV bits -> (token/s @ctx1023, KV MiB, fits)\n" + "\n".join(
        f"  KV{b:<2}: {r[0]:.3f} token/s, {r[1]:7.1f} MiB, fits={r[2]}"
        for b, r in results.items())
    save_result("ablation_kv_bits", text)

    assert results[4][0] > results[8][0] > results[16][0]
    assert results[8][2]          # the paper's KV8 point fits
    assert results[8][1] == pytest.approx(264, rel=0.01)


def bench_weight_bits(benchmark, save_result):
    """W4 vs W8: the decode rate scales ~inversely with weight bytes."""
    def sweep():
        out = {}
        for bits in (4, 8):
            quant = QuantConfig(weight_bits=bits)
            cm = CycleModel(LLAMA2_7B, quant, KV260)
            out[bits] = cm.decode_step(256).tokens_per_s
        return out

    rates = benchmark(sweep)
    save_result("ablation_weight_bits",
                f"W4: {rates[4]:.3f} token/s\nW8: {rates[8]:.3f} token/s")
    assert rates[4] > 1.8 * rates[8]


def bench_pipeline_mode_sweep(benchmark, save_result):
    """Fused vs coarse across the full context range."""
    cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)

    def sweep():
        return {ctx: (cm.decode_step(ctx, "fused").tokens_per_s,
                      cm.decode_step(ctx, "coarse").tokens_per_s)
                for ctx in (64, 256, 512, 1023)}

    results = benchmark(sweep)
    text = "ctx -> (fused, coarse) token/s\n" + "\n".join(
        f"  {ctx:4d}: {f:.3f} vs {c:.3f}  (+{(f / c - 1):.1%})"
        for ctx, (f, c) in results.items())
    save_result("ablation_pipeline_mode", text)

    for ctx, (fused, coarse) in results.items():
        assert fused > coarse, ctx
    # Fusion matters more as softmax grows with context.
    gain = {ctx: f / c for ctx, (f, c) in results.items()}
    assert gain[1023] > gain[64]
