"""Benchmark harness support: artifact directory + row printer.

Every benchmark regenerates one of the paper's tables or figures.  Apart
from the pytest-benchmark timing, each writes its reproduced rows to
``benchmarks/results/<name>.txt`` so the evidence survives output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Writer: save_result("table2", text) -> results/table2.txt."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _save
