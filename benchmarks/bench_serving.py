"""Batched serving throughput: the perf trajectory for future PRs.

Four artifacts: the throughput-vs-batch curve of the batched cycle
model (weight-stream amortization on LLaMA2-7B), a full continuous-
batching trace replay on the cycle-model backend recording aggregate
tokens/s, TTFT, and tail latency, the slotted-vs-paged KV comparison
on a shared-prefix trace (the paging win: a strictly larger admitted
batch and higher throughput from the same DRAM budget), and the
TP x DP multi-accelerator scaling curve (tensor parallelism divides
the per-step weight stream sub-linearly — the interconnect model
charges the gap — while replicas split the queue near-linearly).
Records go to ``benchmarks/results/`` so every later PR can diff
against them.
"""

import pytest

from repro.cluster import TEN_GIG_ETHERNET, scaling_sweep, tp_scaling_is_sane
from repro.config import KV260, LLAMA2_7B, TINY_MODEL, W4A16_KV8, QuantConfig
from repro.core.cyclemodel import CycleModel
from repro.engine import (
    ContinuousBatchScheduler,
    CycleModelBackend,
    kv_discipline_kwargs,
    synthetic_trace,
)
from repro.report.cluster import scaling_table


def _render_curve(points) -> str:
    lines = ["Batched decode — LLaMA2-7B W4A16/KV8 on KV260 @ctx 512",
             "  batch   agg tok/s   per-seq   speedup"]
    single = points[0].aggregate_tokens_per_s
    for p in points:
        lines.append(f"  {p.batch:5d}   {p.aggregate_tokens_per_s:9.3f}"
                     f"   {p.per_sequence_tokens_per_s:7.3f}"
                     f"   {p.aggregate_tokens_per_s / single:6.2f}x")
    return "\n".join(lines)


def bench_batch_amortization_curve(benchmark, save_result):
    cm = CycleModel(LLAMA2_7B, W4A16_KV8, KV260)
    batches = [1, 2, 4, 8, 16]
    points = benchmark(cm.batch_sweep, batches, 512)
    save_result("serving_batch_curve", _render_curve(points))

    single = points[0].aggregate_tokens_per_s
    assert single == pytest.approx(5.1, abs=0.15)
    # Acceptance: aggregate rate strictly above single-batch from batch 2 on.
    for p in points[1:]:
        assert p.aggregate_tokens_per_s > single


def bench_continuous_batching_trace(benchmark, save_result):
    """Replay a 24-request synthetic trace through the engine."""
    quant = QuantConfig(weight_group_size=32)

    def serve(max_batch=8):
        backend = CycleModelBackend(TINY_MODEL, quant, KV260,
                                    n_slots=max_batch)
        engine = ContinuousBatchScheduler(backend, max_batch=max_batch)
        trace = synthetic_trace(TINY_MODEL, n_requests=24,
                                arrival_rate_rps=1e6,
                                prompt_len=(4, 12), decode_len=(8, 24),
                                seed=11)
        return engine.run(trace)

    report = benchmark.pedantic(serve, rounds=3, iterations=1)
    serial = serve(max_batch=1)
    text = "\n".join([
        "Continuous batching — 24 requests, tiny-test on KV260, batch <= 8",
        f"  aggregate  : {report.aggregate_tokens_per_s:12.1f} token/s"
        f"  (serial engine: {serial.aggregate_tokens_per_s:.1f})",
        f"  mean batch : {report.mean_batch:12.2f}",
        f"  max batch  : {report.max_batch_observed:12d}",
        f"  mean TTFT  : {report.mean_ttft_s * 1e3:12.3f} ms",
        f"  p50 lat    : {report.latency_percentile_s(50) * 1e3:12.3f} ms",
        f"  p99 lat    : {report.latency_percentile_s(99) * 1e3:12.3f} ms",
        f"  preemptions: {report.preemptions:12d}",
    ])
    save_result("serving_trace_replay", text)

    assert len(report.results) == 24
    assert report.max_batch_observed == 8
    # Batched serving must beat the same trace served one request at a time.
    assert report.aggregate_tokens_per_s > serial.aggregate_tokens_per_s


def bench_kv_paging_vs_slotted(benchmark, save_result):
    """Slotted vs paged KV on one shared-prefix trace, equal DRAM budget.

    The budget is deliberately tight (256 KV tokens) so admission — not
    ``max_batch`` — limits concurrency: slotted charges every request
    its full worst-case prompt, paged charges the shared system prompt
    once, so it must sustain a strictly larger batch *and* more
    throughput.  This is the trajectory record for the paging win.
    """
    quant = QuantConfig(weight_group_size=32)
    budget_tokens = 256
    block_size = 16
    max_batch = 16

    def trace():
        return synthetic_trace(TINY_MODEL, n_requests=24,
                               arrival_rate_rps=1e9,
                               prompt_len=(2, 6), decode_len=(8, 16),
                               seed=23, shared_prefix_len=32)

    def serve(kv_mode):
        backend_kv, scheduler_kv = kv_discipline_kwargs(
            kv_mode, budget_tokens=budget_tokens, block_size=block_size)
        backend = CycleModelBackend(TINY_MODEL, quant, KV260,
                                    n_slots=max_batch, **backend_kv)
        engine = ContinuousBatchScheduler(backend, max_batch=max_batch,
                                          **scheduler_kv)
        return engine.run(trace()), backend

    slotted, _ = serve("slotted")
    (paged, paged_backend) = benchmark.pedantic(
        serve, args=("paged",), rounds=3, iterations=1)

    lines = [
        "KV disciplines — 24 requests, 32-token shared prefix, "
        f"{budget_tokens}-token budget, tiny-test on KV260",
        "  mode      agg tok/s   mean batch  max batch  preempt",
    ]
    for name, rep in (("slotted", slotted), ("paged", paged)):
        lines.append(f"  {name:8}  {rep.aggregate_tokens_per_s:9.1f}"
                     f"   {rep.mean_batch:10.2f}"
                     f"   {rep.max_batch_observed:8d}"
                     f"   {rep.preemptions:7d}")
    lines.append(f"  prefix reuse: "
                 f"{paged_backend.paged_kv.prefix_reused_tokens} prompt "
                 f"tokens served from resident blocks")
    save_result("serving_kv_modes", "\n".join(lines))

    assert len(slotted.results) == len(paged.results) == 24
    # Acceptance: paged KV sustains a strictly larger admitted batch and
    # strictly more aggregate throughput than slotted on this trace.
    assert paged.max_batch_observed > slotted.max_batch_observed
    assert paged.aggregate_tokens_per_s > slotted.aggregate_tokens_per_s


def bench_tp_dp_scaling_curve(benchmark, save_result):
    """TP x DP grid replay on LLaMA2-7B over 10GbE: the cluster record.

    One 10-request trace hits every (tp, replicas) point in
    {1,2,4} x {1,2}; acceptance is the paper's natural follow-on shape:
    aggregate throughput strictly rises with TP but stays sub-linear
    (the interconnect's all-reduce time is the gap), and replicas
    multiply it again near-linearly.
    """
    points = benchmark.pedantic(
        scaling_sweep, args=(LLAMA2_7B, W4A16_KV8, KV260),
        kwargs=dict(tp_values=(1, 2, 4), dp_values=(1, 2),
                    interconnect=TEN_GIG_ETHERNET, n_requests=10,
                    max_batch=8, seed=0),
        rounds=1, iterations=1)
    _, table = scaling_table(points)
    header = ("TP x DP scaling — LLaMA2-7B W4A16/KV8 on KV260 boards, "
              "10GbE ring interconnect, 10-request trace")
    save_result("serving_tp_scaling", header + "\n" + table)

    by_grid = {(p.tp, p.replicas): p for p in points}
    base = by_grid[(1, 1)].aggregate_tokens_per_s
    # TP scaling: strictly increasing, sub-linear, interconnect-gapped.
    assert tp_scaling_is_sane(points)
    assert by_grid[(4, 1)].aggregate_tokens_per_s > 3 * base
    assert by_grid[(4, 1)].aggregate_tokens_per_s < 4 * base
    # DP scaling: two replicas roughly double every TP point.
    for tp in (1, 2, 4):
        ratio = by_grid[(tp, 2)].aggregate_tokens_per_s \
            / by_grid[(tp, 1)].aggregate_tokens_per_s
        assert 1.5 < ratio <= 2.1
